//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build container cannot reach crates.io, so this shim provides the
//! subset of `rand` the workspace uses: seeded `StdRng`/`SmallRng`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! All generators are deterministic functions of their `seed_from_u64` seed
//! (SplitMix64 to expand the seed, xoshiro256++-style state update). The
//! workspace never asserts on specific random values — only on invariants of
//! the consuming algorithms (PMIS independence, partition balance, solver
//! convergence) — so matching the real rand's exact streams is not required;
//! matching its statistical quality and determinism is.

/// Core source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `Rng::gen_range` bounds.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "gen_range: empty range");
                // Modulo bias is < 2^-64 * span: irrelevant for the mesh and
                // matrix sizes used here, and determinism is what matters.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++-style generator seeded via SplitMix64 (the same seeding
/// scheme the real rand uses for its small RNGs).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (cannot occur from splitmix64, but cheap).
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::*;

    /// Stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Stand-in for rand's `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Different stream from StdRng for the same seed.
            SmallRng(Xoshiro256::from_seed(seed ^ 0xA5A5_5A5A_DEAD_BEEF))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates; deterministic given the rng state.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            mean += x;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        for _ in 0..1000 {
            let k = rng.gen_range(3..9);
            assert!((3..9).contains(&k));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..257).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257).collect::<Vec<_>>());
        assert_ne!(v, (0..257).collect::<Vec<_>>());
    }
}
