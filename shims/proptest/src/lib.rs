//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of proptest's API this workspace uses: `Strategy` with
//! `prop_map`/`prop_flat_map`, `Just`, numeric-range strategies, tuple
//! strategies, `proptest::collection::vec`, the `prop_oneof!` weighted union,
//! and the `proptest! { #[test] fn name(pat in strategy) { .. } }` macro with
//! optional `#![proptest_config(..)]` header.
//!
//! Differences from the real crate, on purpose:
//!
//! - **No shrinking.** On failure the case index is printed so the exact
//!   input can be regenerated (generation is a pure function of the test name
//!   and case index), and the original assertion panic is re-raised.
//! - **Deterministic by construction.** There is no persistence file or
//!   OS-entropy seeding; every run explores the same cases, which is what a
//!   reproducibility-focused numerical test suite wants anyway.
//! - `prop_assert!`/`prop_assert_eq!` map to `assert!`/`assert_eq!`.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic per-case RNG
// ---------------------------------------------------------------------------

/// SplitMix64 generator seeded from (test name, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate's default is 256). This suite runs many
    /// property tests that each spin up simulated-MPI thread groups; 64 keeps
    /// the tier-1 wall time reasonable while still exercising the space.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// Full-range `ANY` strategies at the real crate's paths
/// (`proptest::num::u64::ANY`, etc.): every bit pattern of the type,
/// which range strategies cannot express (`Range` is half-open).
pub mod num {
    macro_rules! any_int {
        ($($m:ident),*) => {$(
            pub mod $m {
                #[derive(Clone, Copy, Debug)]
                pub struct Any;
                impl crate::Strategy for Any {
                    type Value = $m;
                    fn generate(&self, rng: &mut crate::TestRng) -> $m {
                        rng.next_u64() as $m
                    }
                }
                pub const ANY: Any = Any;
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod bool {
    #[derive(Clone, Copy, Debug)]
    pub struct Any;
    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    pub const ANY: Any = Any;
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for `vec`: an exact length or a `lo..hi` range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(err) = __result {
                    eprintln!(
                        "proptest {}: failed at case index {} (regenerate with the same index)",
                        stringify!($name),
                        __case
                    );
                    std::panic::resume_unwind(err);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        crate::collection::vec(
            prop_oneof![
                3 => Just(0.0),
                2 => (-4.0f64..4.0).prop_map(|v| (v * 8.0).round() / 8.0),
            ],
            0..10,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds((a, b, c) in (1usize..8, -10i64..10, -2.0f64..2.0)) {
            prop_assert!((1..8).contains(&a));
            prop_assert!((-10..10).contains(&b));
            prop_assert!((-2.0..2.0).contains(&c));
        }

        #[test]
        fn flat_map_chains(v in (1usize..6).prop_flat_map(|n| small_vec().prop_map(move |mut w| {
            w.truncate(n);
            w
        }))) {
            prop_assert!(v.len() < 6);
        }

        #[test]
        fn vec_exact_size(v in crate::collection::vec(0u64..5, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = small_vec();
        let a: Vec<f64> = {
            let mut rng = crate::TestRng::for_case("x", 3);
            strat.generate(&mut rng)
        };
        let b: Vec<f64> = {
            let mut rng = crate::TestRng::for_case("x", 3);
            strat.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_union_hits_all_arms() {
        let strat = prop_oneof![1 => Just(0u32), 1 => Just(1u32)];
        let mut seen = [false; 2];
        let mut rng = crate::TestRng::for_case("arms", 0);
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
