//! Offline stand-in for the `rayon` crate, covering exactly the API surface
//! this workspace uses and nothing more.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the real rayon cannot be vendored. This shim re-implements the subset of
//! the parallel-iterator API the workspace needs on top of `std::thread::scope`,
//! with one extra guarantee the real rayon does not make by default:
//!
//! **every consumer is bitwise deterministic and independent of thread count.**
//!
//! The rules that make that hold:
//!
//! - Work is split into *fixed-size* chunks (`CHUNK`, a compile-time constant),
//!   never into per-thread ranges. Threads claim chunks dynamically, but each
//!   chunk's result lands in a slot indexed by chunk id.
//! - Reductions (`sum`) compute one partial per chunk and combine the partials
//!   **in chunk-index order** on the calling thread. The serial fallback runs
//!   the identical chunked algorithm, so 1 thread and N threads produce the
//!   same floating-point rounding.
//! - `par_sort_by_key` is a *stable* parallel merge sort; a stable sort's
//!   output is unique, so it is bitwise identical to `slice::sort_by` for any
//!   split width.
//! - Element-wise consumers (`for_each`, `collect`) write each index exactly
//!   once, so scheduling order cannot affect the result.
//!
//! Thread counts come from, in priority order: the innermost
//! [`ThreadPool::install`] scope on the current thread, else the
//! `RAYON_NUM_THREADS` environment variable, else
//! `std::thread::available_parallelism()`. Worker threads run nested parallel
//! calls serially (no oversubscription from nesting).

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Mutex, OnceLock};

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    /// Thread-local override installed by `ThreadPool::install` (and set to 1
    /// on pool worker threads so nested parallelism stays serial).
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// A logical thread pool: in this shim a pool is just a thread-count setting;
/// OS threads are spawned per parallel region via `std::thread::scope`.
/// Results are bitwise identical for any `num_threads`, so the distinction
/// does not affect observable behaviour.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED.with(|c| c.replace(Some(self.threads)));
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default", matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// Sequential `join` (results are identical to a parallel one; the workspace
/// only relies on `join` for structure, not latency).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

/// Fixed work-chunk width. A compile-time constant so that chunk boundaries —
/// and therefore every chunked reduction's rounding — never depend on the
/// thread count.
const CHUNK: usize = 1024;

/// Execute `task(c)` for every `c in 0..n_chunks`, exactly once each, across
/// up to `current_num_threads()` scoped threads. Chunks are claimed
/// dynamically (atomic counter), which is safe for determinism because each
/// chunk writes only its own output slot.
fn run_chunked<F: Fn(usize) + Sync>(n_chunks: usize, task: F) {
    let threads = current_num_threads().min(n_chunks);
    if threads <= 1 {
        for c in 0..n_chunks {
            task(c);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Nested parallel calls on worker threads run serially.
                INSTALLED.with(|c| c.set(Some(1)));
                loop {
                    let c = next.fetch_add(1, AtomicOrdering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    task(c);
                }
            });
        }
    });
}

/// Shared raw pointer used to write per-index results from worker threads.
/// Soundness contract: each index is written at most once, and the owning
/// buffer outlives the scope (guaranteed by `std::thread::scope`).
struct SlotWriter<T>(*mut T);

unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// Safety: `i` in bounds and written at most once across all threads.
    unsafe fn write(&self, i: usize, v: T) {
        self.0.add(i).write(v);
    }
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

/// An index-addressable source of items. Contract: `p_get(i)` is called at
/// most once per index per drive, and distinct indices may be fetched
/// concurrently.
pub trait Producer: Sync + Sized {
    type Item: Send;
    fn p_len(&self) -> usize;
    fn p_get(&self, i: usize) -> Self::Item;
}

pub struct IterSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> Producer for IterSlice<'a, T> {
    type Item = &'a T;
    fn p_len(&self) -> usize {
        self.slice.len()
    }
    fn p_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

pub struct IterSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Sync for IterSliceMut<'_, T> {}

impl<'a, T: Send> Producer for IterSliceMut<'a, T> {
    type Item = &'a mut T;
    fn p_len(&self) -> usize {
        self.len
    }
    fn p_get(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        // Disjoint indices, each fetched once (Producer contract), so the
        // exclusive references never alias.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Disjoint fixed-width mutable chunks of a slice (`par_chunks_mut`).
/// Chunk boundaries depend only on `chunk`, never on the thread count,
/// and each chunk is fetched at most once (Producer contract), so the
/// exclusive sub-slices never alias.
pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'a, T: Send> Producer for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn p_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    fn p_get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = ((i + 1) * self.chunk).min(self.len);
        assert!(lo < hi || (lo == 0 && hi == 0));
        // Safety: [lo, hi) ranges of distinct chunk indices are disjoint
        // and in bounds; each index is fetched once.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

pub struct IterRange {
    start: usize,
    len: usize,
}

impl Producer for IterRange {
    type Item = usize;
    fn p_len(&self) -> usize {
        self.len
    }
    fn p_get(&self, i: usize) -> usize {
        self.start + i
    }
}

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P: Producer, F, R> Producer for Map<P, F>
where
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn p_get(&self, i: usize) -> R {
        (self.f)(self.base.p_get(i))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn p_len(&self) -> usize {
        self.a.p_len().min(self.b.p_len())
    }
    fn p_get(&self, i: usize) -> Self::Item {
        (self.a.p_get(i), self.b.p_get(i))
    }
}

pub struct Enumerate<P> {
    base: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn p_get(&self, i: usize) -> Self::Item {
        (i, self.base.p_get(i))
    }
}

// ---------------------------------------------------------------------------
// IntoParallelIterator for concrete types
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = IterRange;
    type Item = usize;
    fn into_par_iter(self) -> IterRange {
        IterRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a [T] {
    type Iter = IterSlice<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> IterSlice<'a, T> {
        IterSlice { slice: self }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a Vec<T> {
    type Iter = IterSlice<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> IterSlice<'a, T> {
        IterSlice { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = IterSliceMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> IterSliceMut<'a, T> {
        IterSliceMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = IterSliceMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> IterSliceMut<'a, T> {
        self.as_mut_slice().into_par_iter()
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
where
    &'a I: IntoParallelIterator,
{
    type Iter = <&'a I as IntoParallelIterator>::Iter;
    type Item = <&'a I as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, I: 'a + ?Sized> IntoParallelRefMutIterator<'a> for I
where
    &'a mut I: IntoParallelIterator,
{
    type Iter = <&'a mut I as IntoParallelIterator>::Iter;
    type Item = <&'a mut I as IntoParallelIterator>::Item;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait: adapters + deterministic consumers
// ---------------------------------------------------------------------------

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Vec<T> {
        let n = p.p_len();
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // Safety: MaybeUninit needs no initialisation; every slot is written
        // exactly once below before being read.
        unsafe { out.set_len(n) };
        let w = SlotWriter(out.as_mut_ptr() as *mut T);
        let src = &p;
        run_chunked(n.div_ceil(CHUNK), |c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            for i in lo..hi {
                unsafe { w.write(i, src.p_get(i)) };
            }
        });
        // Safety: all n slots initialised; reinterpret the buffer as Vec<T>.
        let mut out = std::mem::ManuallyDrop::new(out);
        unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, n, out.capacity()) }
    }
}

pub trait ParallelIterator: Producer {
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn zip<B: IntoParallelIterator>(self, other: B) -> Zip<Self, B::Iter> {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let n = self.p_len();
        let src = &self;
        run_chunked(n.div_ceil(CHUNK), |c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            for i in lo..hi {
                f(src.p_get(i));
            }
        });
    }

    /// Deterministic chunked sum: one partial per fixed-width chunk, partials
    /// combined in chunk order. Bitwise independent of thread count (the
    /// serial path runs the identical chunked algorithm).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let n = self.p_len();
        let n_chunks = n.div_ceil(CHUNK);
        let mut partials: Vec<MaybeUninit<S>> = Vec::with_capacity(n_chunks);
        unsafe { partials.set_len(n_chunks) };
        let w = SlotWriter(partials.as_mut_ptr() as *mut S);
        let src = &self;
        run_chunked(n_chunks, |c| {
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let part: S = (lo..hi).map(|i| src.p_get(i)).sum();
            unsafe { w.write(c, part) };
        });
        partials
            .into_iter()
            .map(|m| unsafe { m.assume_init() })
            .sum()
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

impl<P: Producer> ParallelIterator for P {}

/// Compatibility marker (all shim iterators are indexed).
pub trait IndexedParallelIterator: ParallelIterator {}

impl<P: ParallelIterator> IndexedParallelIterator for P {}

// ---------------------------------------------------------------------------
// Parallel stable sort for slices
// ---------------------------------------------------------------------------

/// Sorting needs `T: Copy` in this shim (all workspace call sites sort tuples
/// of `Copy` scalars); this keeps the merge buffers trivially panic-safe.
pub trait ParallelSliceMut<T: Copy + Send + Sync> {
    fn as_sort_slice_mut(&mut self) -> &mut [T];

    /// Stable parallel merge sort by key. A stable sort's output is unique,
    /// so the result is bitwise identical to `slice::sort_by_key` regardless
    /// of thread count or split width.
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_merge_sort(self.as_sort_slice_mut(), |a, b| f(a).cmp(&f(b)));
    }

    fn par_sort_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, cmp: F) {
        par_merge_sort(self.as_sort_slice_mut(), cmp);
    }

    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// elements (last chunk may be shorter), matching rayon's
    /// `par_chunks_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        let s = self.as_sort_slice_mut();
        ChunksMut {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        }
    }
}

impl<T: Copy + Send + Sync> ParallelSliceMut<T> for [T] {
    fn as_sort_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

/// Below this length the std stable sort runs on the calling thread.
const SORT_MIN: usize = 4096;

fn par_merge_sort<T: Copy + Send + Sync, F: Fn(&T, &T) -> Ordering + Sync>(v: &mut [T], cmp: F) {
    let n = v.len();
    let threads = current_num_threads();
    if threads <= 1 || n < SORT_MIN {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }

    // Sort ~one run per thread in parallel (std stable sorts), then merge
    // pairs of runs in parallel rounds, ping-ponging between `v` and `buf`.
    let k = threads.next_power_of_two();
    let run = n.div_ceil(k).max(1);
    {
        let work: Mutex<Vec<&mut [T]>> = Mutex::new(v.chunks_mut(run).collect());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    INSTALLED.with(|c| c.set(Some(1)));
                    while let Some(part) = work.lock().unwrap().pop() {
                        part.sort_by(|a, b| cmp(a, b));
                    }
                });
            }
        });
    }

    let mut buf: Vec<T> = v.to_vec();
    let mut src_in_v = true;
    let mut width = run;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_in_v {
                (&*v, buf.as_mut_slice())
            } else {
                (buf.as_slice(), &mut *v)
            };
            let pairs: Vec<(usize, usize, usize)> = (0..n)
                .step_by(2 * width)
                .map(|start| (start, (start + width).min(n), (start + 2 * width).min(n)))
                .collect();
            let dst_ptr = SlotWriter(dst.as_mut_ptr());
            // Borrow the whole wrapper so the closure captures `&SlotWriter`
            // (edition-2021 disjoint capture would otherwise grab the raw
            // pointer field itself, which is not Sync).
            let dst_ptr = &dst_ptr;
            run_chunked(pairs.len(), |pi| {
                let (start, mid, end) = pairs[pi];
                // Safety: pair dst regions are disjoint and cover 0..n.
                let d =
                    unsafe { std::slice::from_raw_parts_mut(dst_ptr.0.add(start), end - start) };
                merge_stable(&src[start..mid], &src[mid..end], d, &cmp);
            });
        }
        src_in_v = !src_in_v;
        width *= 2;
    }
    if !src_in_v {
        v.copy_from_slice(&buf);
    }
}

/// Stable two-way merge: takes from `left` on ties.
fn merge_stable<T: Copy, F: Fn(&T, &T) -> Ordering>(
    left: &[T],
    right: &[T],
    dst: &mut [T],
    cmp: &F,
) {
    debug_assert_eq!(left.len() + right.len(), dst.len());
    let (mut i, mut j) = (0, 0);
    for slot in dst.iter_mut() {
        let take_left = if i == left.len() {
            false
        } else if j == right.len() {
            true
        } else {
            cmp(&right[j], &left[i]) != Ordering::Less
        };
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn map_collect_matches_serial() {
        let src: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 1000).collect();
        let expect: Vec<u64> = src.iter().map(|&x| x * 3 + 1).collect();
        for t in [1, 2, 8] {
            let got: Vec<u64> = with_threads(t, || src.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn sum_is_bitwise_identical_across_thread_counts() {
        let src: Vec<f64> = (0..50_000)
            .map(|i| ((i * 37 % 1000) as f64 - 500.0) * 1.0e-3 + 1.0e-9 * i as f64)
            .collect();
        let base: f64 = with_threads(1, || src.par_iter().map(|&x| x * 1.000001).sum());
        for t in [2, 3, 8] {
            let got: f64 = with_threads(t, || src.par_iter().map(|&x| x * 1.000001).sum());
            assert_eq!(got.to_bits(), base.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn par_sort_matches_std_stable_sort() {
        let mut a: Vec<(u64, u64)> = (0..30_000)
            .map(|i| ((i * 2654435761u64) % 97, i))
            .collect();
        let mut expect = a.clone();
        expect.sort_by_key(|&(k, _)| k);
        for t in [1, 2, 8] {
            let mut got = a.clone();
            with_threads(t, || got.par_sort_by_key(|&(k, _)| k));
            assert_eq!(got, expect, "threads={t}");
        }
        a.par_sort_by_key(|&(k, _)| k);
        assert_eq!(a, expect);
    }

    #[test]
    fn par_iter_mut_zip_for_each() {
        let x: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        let mut y = vec![1.0f64; 20_000];
        with_threads(4, || {
            y.par_iter_mut().zip(&x[..]).for_each(|(yi, &xi)| *yi += 2.0 * xi)
        });
        for i in [0usize, 1, 999, 19_999] {
            assert_eq!(y[i], 1.0 + 2.0 * i as f64);
        }
    }

    #[test]
    fn range_into_par_iter_enumerate() {
        let got: Vec<(usize, usize)> =
            with_threads(2, || (5..5005).into_par_iter().enumerate().collect());
        assert_eq!(got.len(), 5000);
        assert_eq!(got[0], (0, 5));
        assert_eq!(got[4999], (4999, 5004));
    }

    #[test]
    fn install_restores_previous_count() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_chunks_mut_covers_slice_exactly_once() {
        let mut v = vec![0u64; 10_123];
        for t in [1, 2, 8] {
            v.iter_mut().for_each(|x| *x = 0);
            with_threads(t, || {
                v.par_chunks_mut(97).enumerate().for_each(|(c, chunk)| {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x += (c * 97 + i) as u64 + 1;
                    }
                });
            });
            assert!(
                v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1),
                "threads={t}"
            );
        }
        // Empty slice: no chunks, no panic.
        let mut e: Vec<u64> = vec![];
        e.par_chunks_mut(8).for_each(|_| unreachable!());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<f64> = vec![];
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
        let c: Vec<f64> = v.par_iter().map(|&x| x).collect();
        assert!(c.is_empty());
        let mut e: Vec<(u64, u64)> = vec![];
        e.par_sort_by_key(|&(k, _)| k);
    }
}
