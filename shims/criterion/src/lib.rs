//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! subset of criterion's API used by `crates/bench`: `Criterion`,
//! `benchmark_group` + `sample_size` + `bench_with_input`/`bench_function` +
//! `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each `Bencher::iter` call runs the closure once as
//! warmup, then `sample_size` timed invocations. Mean / median / min are
//! printed to stdout. If the `CRITERION_JSON` environment variable is set,
//! one JSON line per benchmark is appended to that file so harness scripts
//! can collect machine-readable results (this is how the repo's
//! `BENCH_*.json` baselines are produced).

use std::fmt;
use std::io::Write;
use std::time::Instant;

pub use std::hint::black_box;

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one("", name, 20, &mut f);
        self
    }

    /// Accepted for compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_one(&self.name, &id.0, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(&f()); // warmup (also forces lazy setup)
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = f();
            black_box(&out);
            self.samples_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples_ns.is_empty() {
        println!("{full:<56} (no samples: Bencher::iter never called)");
        return;
    }
    let mut sorted = b.samples_ns.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
    println!(
        "{full:<56} mean {:>12}  median {:>12}  min {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(median),
        fmt_ns(min),
        sorted.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            // `type`/`threads`/`git_commit` make the record a valid
            // `telemetry::Event::Bench` line (BENCH_*.json shares the
            // telemetry JSONL schema); readers still accept old lines
            // without them.
            let mut line = format!(
                "{{\"type\":\"bench\",\"bench\":\"{full}\",\"mean_ns\":{mean},\"median_ns\":{median},\"min_ns\":{min},\"samples\":{},\"threads\":{}",
                sorted.len(),
                configured_threads()
            );
            if let Some(commit) = git_commit() {
                line.push_str(&format!(",\"git_commit\":\"{commit}\""));
            }
            line.push_str("}\n");
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut fh| fh.write_all(line.as_bytes()));
        }
    }
}

/// Rayon pool size the benches will run with: `RAYON_NUM_THREADS` if set,
/// else the machine's available parallelism.
fn configured_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Current git commit, resolved offline (no `git` subprocess): the
/// `GIT_COMMIT` env var, else `.git/HEAD` walking one symbolic ref.
fn git_commit() -> Option<String> {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return Some(c);
        }
    }
    // Bench executables run with cwd = the package dir, so walk up to
    // whatever ancestor holds the `.git` directory.
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let cand = dir.join(".git");
        if cand.is_dir() {
            break cand;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(direct) = std::fs::read_to_string(git.join(refname)) {
            return Some(direct.trim().to_string());
        }
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return Some(hash.trim().to_string());
            }
        }
        None
    } else if head.len() >= 7 {
        Some(head.to_string())
    } else {
        None
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let n = 1000u64;
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn bench_function_on_criterion() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn json_lines_carry_type_threads_and_commit_fields() {
        let path = std::env::temp_dir().join(format!("criterion_shim_{}.jsonl", std::process::id()));
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default();
        c.bench_function("jsonfields", |b| b.iter(|| black_box(1 + 1)));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.contains("\"bench\":\"jsonfields\""))
            .expect("bench line written");
        assert!(line.starts_with("{\"type\":\"bench\""), "{line}");
        assert!(line.contains("\"threads\":"), "{line}");
        assert!(line.contains("\"samples\":20"), "{line}");
    }
}
