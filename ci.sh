#!/usr/bin/env bash
# Offline CI gate: everything runs against the in-repo shim crates, so no
# network access is needed. Run from the repository root.
set -euxo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --no-run

# Telemetry end-to-end: a quickstart run must emit a JSONL event stream
# that the offline validator accepts (exit 0 ⇔ schema-valid, non-empty).
tel_out=$(mktemp /tmp/exawind_telemetry.XXXXXX.jsonl)
fault_out=$(mktemp /tmp/exawind_faulted.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out"' EXIT
EXAWIND_TELEMETRY="$tel_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$tel_out"
grep -q '"type": *"kernel_perf"' "$tel_out" \
  || { echo "telemetry smoke: no kernel_perf event in $tel_out" >&2; exit 1; }

# Fault-injection smoke: a NaN injected into the first continuity
# assembly must be caught by the recovery ladder (exit 0, not a panic),
# logged as a schema-valid `recovery` event, and still converge.
EXAWIND_FAULTS="assembly-nan@continuity/global:1" \
  EXAWIND_TELEMETRY="$fault_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$fault_out"
grep -q '"type": *"recovery"' "$fault_out" \
  || { echo "fault-injection smoke: no recovery event in $fault_out" >&2; exit 1; }

# Multi-process transport smoke: exawind-launch spawns two real worker
# processes that rendezvous over TCP sockets; rank 0's telemetry stream
# must validate and carry the completed-run event tagged with the socket
# transport, plus per-peer comm_edge traffic. The launcher's monitor
# channel must have received heartbeats, and the merged per-rank streams
# must validate (edge symmetry, collective participation) and render the
# comm-matrix report. (Cross-transport bitwise identity is pinned by
# tests/transport.rs; this proves the launcher path works end to end.)
mp_dir=$(mktemp -d /tmp/exawind_mp.XXXXXX)
trap 'rm -f "$tel_out" "$fault_out"; rm -rf "$mp_dir"' EXIT
cargo build --release --bin exawind-launch --bin exawind-worker
./target/release/exawind-launch -n 2 -- \
  ./target/release/exawind-worker --out "$mp_dir/fields" --telemetry "$mp_dir/tel" \
  | tee "$mp_dir/launch.log"
grep -q 'monitor received [1-9][0-9]* heartbeat' "$mp_dir/launch.log" \
  || { echo "transport smoke: launcher monitor received no heartbeats" >&2; exit 1; }
cargo run --release -p telemetry --bin validate_telemetry -- "$mp_dir/tel.rank0.jsonl"
grep -q '"type":"run"' "$mp_dir/tel.rank0.jsonl" \
  || { echo "transport smoke: no run event in $mp_dir/tel.rank0.jsonl" >&2; exit 1; }
grep -q '"transport":"socket"' "$mp_dir/tel.rank0.jsonl" \
  || { echo "transport smoke: run event not tagged with socket transport" >&2; exit 1; }
grep -q '"type":"comm_edge"' "$mp_dir/tel.rank0.jsonl" \
  || { echo "transport smoke: no comm_edge event in $mp_dir/tel.rank0.jsonl" >&2; exit 1; }
test -s "$mp_dir/fields.rank0.bits" && test -s "$mp_dir/fields.rank1.bits" \
  || { echo "transport smoke: missing per-rank field artifacts" >&2; exit 1; }
cat "$mp_dir/tel.rank0.jsonl" "$mp_dir/tel.rank1.jsonl" > "$mp_dir/merged.jsonl"
cargo run --release -p telemetry --bin validate_telemetry -- "$mp_dir/merged.jsonl" --report \
  | tee "$mp_dir/report.txt"
grep -q 'communication matrix' "$mp_dir/report.txt" \
  || { echo "transport smoke: comm-matrix report section missing" >&2; exit 1; }

# Timeline-trace smoke: the per-rank streams of the socket run merge
# into a structurally valid Chrome trace-event / Perfetto JSON
# (exawind-perf trace exits non-zero when the structural validator
# finds unbalanced events or non-monotone tracks), and every step wrote
# a solver-health row that a clean run must NOT escalate to a verdict.
cargo run --release -p exawind-bench --bin exawind-perf -- \
  trace --out "$mp_dir/trace.json" "$mp_dir/tel.rank0.jsonl" "$mp_dir/tel.rank1.jsonl"
grep -q '"traceEvents"' "$mp_dir/trace.json" \
  || { echo "trace smoke: no traceEvents array in $mp_dir/trace.json" >&2; exit 1; }
grep -q '"type":"step_health"' "$mp_dir/tel.rank0.jsonl" \
  || { echo "trace smoke: no step_health event in $mp_dir/tel.rank0.jsonl" >&2; exit 1; }
if grep -q '"type":"health_verdict"' "$mp_dir/tel.rank0.jsonl"; then
  echo "trace smoke: clean run produced a degradation verdict" >&2
  exit 1
fi

# Health-detector smoke: seed a persistent coarsening stall from the
# first AMG setup of step 4 (occurrence 7 = 2 pressure setups/step × 3
# clean warmup steps + 1 on the big box) — fatal at this grid size, so
# the recovery ladder fires every later step and the detector must
# emit a recovery-storm degradation verdict after its clean baseline.
EXAWIND_FAULTS="coarsen-stall@continuity:7x999" \
  ./target/release/exawind-launch -n 2 -- \
  ./target/release/exawind-worker --mesh big --steps 5 \
  --telemetry "$mp_dir/health-tel"
cargo run --release -p telemetry --bin validate_telemetry -- "$mp_dir/health-tel.rank0.jsonl"
grep '"type":"health_verdict"' "$mp_dir/health-tel.rank0.jsonl" \
  | grep -q '"kind":"recovery-storm"' \
  || { echo "health smoke: no recovery-storm verdict in seeded degradation run" >&2; exit 1; }

# Stall-detection smoke: hang rank 1 after its first heartbeat; the
# launcher must notice the missed heartbeats well before the hang ends,
# name the stalled rank, and exit 3 — long before the 90 s backstop.
if EXAWIND_STALL_RANK=1 EXAWIND_STALL_SECS=60 timeout 90 \
  ./target/release/exawind-launch -n 2 --stall-timeout 3 -- \
  ./target/release/exawind-worker --out "$mp_dir/stall" --telemetry "$mp_dir/stall-tel" \
  2> "$mp_dir/stall.log"; then
  echo "stall smoke: launcher did not fail on a hung rank" >&2
  exit 1
fi
grep -q 'stalled at step' "$mp_dir/stall.log" \
  || { echo "stall smoke: no stalled-rank diagnosis in launcher output" >&2; exit 1; }

# Checkpoint/restart smoke: rank 1 is killed at the top of step 3 of a
# supervised 5-step run checkpointing every 2 steps. The launcher must
# fence the survivor, relaunch the cohort from generation 2 (the newest
# complete one), and the resumed run must finish with field bits
# identical to a never-killed run. The resumed rank-0 telemetry stream
# must validate and carry both restore and checkpoint events.
./target/release/exawind-launch -n 2 -- \
  ./target/release/exawind-worker --steps 5 --out "$mp_dir/clean"
EXAWIND_FAULTS="kill-rank@rank1:3" EXAWIND_CRASH_DIR="$mp_dir" \
  ./target/release/exawind-launch -n 2 --checkpoint-every 2 \
  --checkpoint-dir "$mp_dir/ckpt" --max-restarts 2 -- \
  ./target/release/exawind-worker --steps 5 --out "$mp_dir/killed" \
  --telemetry "$mp_dir/ckpt-tel" 2> "$mp_dir/ckpt.log"
grep -q 'relaunching cohort from checkpoint generation 2' "$mp_dir/ckpt.log" \
  || { echo "checkpoint smoke: launcher did not relaunch from generation 2" >&2; exit 1; }
cmp "$mp_dir/killed.rank0.bits" "$mp_dir/clean.rank0.bits" \
  || { echo "checkpoint smoke: rank 0 fields differ after restart" >&2; exit 1; }
cmp "$mp_dir/killed.rank1.bits" "$mp_dir/clean.rank1.bits" \
  || { echo "checkpoint smoke: rank 1 fields differ after restart" >&2; exit 1; }
cargo run --release -p telemetry --bin validate_telemetry -- "$mp_dir/ckpt-tel.rank0.jsonl"
grep -q '"type":"restore"' "$mp_dir/ckpt-tel.rank0.jsonl" \
  || { echo "checkpoint smoke: no restore event in resumed rank-0 stream" >&2; exit 1; }
grep -q '"type":"checkpoint"' "$mp_dir/ckpt-tel.rank0.jsonl" \
  || { echo "checkpoint smoke: no checkpoint event in resumed rank-0 stream" >&2; exit 1; }

# Perf-smoke: two back-to-back recordings onto a scratch copy of the
# committed trajectory must pass the regression gate. The tolerance is
# generous — shared single-core CI containers jitter by integer factors;
# this gate exists to catch order-of-magnitude regressions, the unit
# tests in crates/bench/src/perf.rs pin the exact gating semantics.
# EXAWIND_STREAM_GBS pins the roofline baseline so no STREAM measurement
# runs (or gets cached) inside CI.
perf_traj=$(mktemp /tmp/exawind_trajectory.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out" "$perf_traj"; rm -rf "$mp_dir"' EXIT
cp results/trajectory.jsonl "$perf_traj"
export EXAWIND_STREAM_GBS=10
cargo run --release -p exawind-bench --bin exawind-perf -- record --out "$perf_traj"
cargo run --release -p exawind-bench --bin exawind-perf -- record --out "$perf_traj"
cargo run --release -p telemetry --bin validate_telemetry -- "$perf_traj"
cargo run --release -p exawind-bench --bin exawind-perf -- \
  diff --against "$perf_traj" --tol 25.0

# Kernel-backend leg: the whole suite must stay green with the SELL-C-σ
# backend forced on (bitwise identity with CSR is pinned by
# tests/determinism.rs), a quickstart run event must carry the policy
# label, and two sellcs perf recordings must pass the same regression
# gate — perf baselines are policy-keyed, so csr/auto and sellcs runs
# never gate each other.
kern_out=$(mktemp /tmp/exawind_sellcs.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out" "$perf_traj" "$kern_out"; rm -rf "$mp_dir"' EXIT
EXAWIND_KERNELS=sellcs cargo test -q --workspace
EXAWIND_KERNELS=sellcs EXAWIND_TELEMETRY="$kern_out" \
  cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$kern_out"
grep -q '"kernel_policy": *"sellcs"' "$kern_out" \
  || { echo "kernel smoke: run event not tagged with sellcs policy" >&2; exit 1; }
EXAWIND_KERNELS=sellcs cargo run --release -p exawind-bench --bin exawind-perf -- \
  record --out "$perf_traj"
EXAWIND_KERNELS=sellcs cargo run --release -p exawind-bench --bin exawind-perf -- \
  record --out "$perf_traj"
cargo run --release -p exawind-bench --bin exawind-perf -- \
  diff --against "$perf_traj" --tol 25.0
