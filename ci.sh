#!/usr/bin/env bash
# Offline CI gate: everything runs against the in-repo shim crates, so no
# network access is needed. Run from the repository root.
set -euxo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --no-run
