#!/usr/bin/env bash
# Offline CI gate: everything runs against the in-repo shim crates, so no
# network access is needed. Run from the repository root.
set -euxo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --no-run

# Telemetry end-to-end: a quickstart run must emit a JSONL event stream
# that the offline validator accepts (exit 0 ⇔ schema-valid, non-empty).
tel_out=$(mktemp /tmp/exawind_telemetry.XXXXXX.jsonl)
fault_out=$(mktemp /tmp/exawind_faulted.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out"' EXIT
EXAWIND_TELEMETRY="$tel_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$tel_out"

# Fault-injection smoke: a NaN injected into the first continuity
# assembly must be caught by the recovery ladder (exit 0, not a panic),
# logged as a schema-valid `recovery` event, and still converge.
EXAWIND_FAULTS="assembly-nan@continuity/global:1" \
  EXAWIND_TELEMETRY="$fault_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$fault_out"
grep -q '"type": *"recovery"' "$fault_out" \
  || { echo "fault-injection smoke: no recovery event in $fault_out" >&2; exit 1; }
