#!/usr/bin/env bash
# Offline CI gate: everything runs against the in-repo shim crates, so no
# network access is needed. Run from the repository root.
set -euxo pipefail

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --no-run

# Telemetry end-to-end: a quickstart run must emit a JSONL event stream
# that the offline validator accepts (exit 0 ⇔ schema-valid, non-empty).
tel_out=$(mktemp /tmp/exawind_telemetry.XXXXXX.jsonl)
fault_out=$(mktemp /tmp/exawind_faulted.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out"' EXIT
EXAWIND_TELEMETRY="$tel_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$tel_out"
grep -q '"type": *"kernel_perf"' "$tel_out" \
  || { echo "telemetry smoke: no kernel_perf event in $tel_out" >&2; exit 1; }

# Fault-injection smoke: a NaN injected into the first continuity
# assembly must be caught by the recovery ladder (exit 0, not a panic),
# logged as a schema-valid `recovery` event, and still converge.
EXAWIND_FAULTS="assembly-nan@continuity/global:1" \
  EXAWIND_TELEMETRY="$fault_out" cargo run --release --example quickstart
cargo run --release -p telemetry --bin validate_telemetry -- "$fault_out"
grep -q '"type": *"recovery"' "$fault_out" \
  || { echo "fault-injection smoke: no recovery event in $fault_out" >&2; exit 1; }

# Perf-smoke: two back-to-back recordings onto a scratch copy of the
# committed trajectory must pass the regression gate. The tolerance is
# generous — shared single-core CI containers jitter by integer factors;
# this gate exists to catch order-of-magnitude regressions, the unit
# tests in crates/bench/src/perf.rs pin the exact gating semantics.
# EXAWIND_STREAM_GBS pins the roofline baseline so no STREAM measurement
# runs (or gets cached) inside CI.
perf_traj=$(mktemp /tmp/exawind_trajectory.XXXXXX.jsonl)
trap 'rm -f "$tel_out" "$fault_out" "$perf_traj"' EXIT
cp results/trajectory.jsonl "$perf_traj"
export EXAWIND_STREAM_GBS=10
cargo run --release -p exawind-bench --bin exawind-perf -- record --out "$perf_traj"
cargo run --release -p exawind-bench --bin exawind-perf -- record --out "$perf_traj"
cargo run --release -p telemetry --bin validate_telemetry -- "$perf_traj"
cargo run --release -p exawind-bench --bin exawind-perf -- \
  diff --against "$perf_traj" --tol 25.0
