//! AMG playground: set up BoomerAMG-style hierarchies on the actual
//! pressure-Poisson operator of a turbine mesh and compare coarsening /
//! interpolation options (the §4.1 design space).
//!
//! ```sh
//! cargo run --release --example amg_playground
//! ```

use exawind::amg::{AmgConfig, AmgPrecond, InterpType};
use exawind::distmat::{ParVector, RowDist};
use exawind::krylov::{Gmres, OrthoStrategy};
use exawind::nalu_core::graph::{classify_nodes, dirichlet_pressure};
use exawind::nalu_core::{DofMap, PartitionMethod};
use exawind::parcomm::Comm;
use exawind::sparse_kit::{Coo, Csr};
use exawind::windmesh::turbine::generate;
use exawind::windmesh::NrelCase;

/// Assemble the serial pressure Laplacian of a mesh (unit dt/rho).
fn pressure_matrix(mesh: &exawind::windmesh::Mesh, dm: &DofMap) -> Csr {
    let tags = classify_nodes(mesh);
    let dir = dirichlet_pressure(&tags);
    let n = mesh.n_nodes();
    let mut coo = Coo::new();
    for e in &mesh.edges {
        let (a, b) = (e.a, e.b);
        let k = e.area_over_dist;
        if !dir[a] {
            coo.push(dm.gid[a], dm.gid[a], k);
            coo.push(dm.gid[a], dm.gid[b], -k);
        }
        if !dir[b] {
            coo.push(dm.gid[b], dm.gid[b], k);
            coo.push(dm.gid[b], dm.gid[a], -k);
        }
    }
    for (i, &di) in dir.iter().enumerate() {
        if di {
            coo.push(dm.gid[i], dm.gid[i], 1.0);
        }
    }
    Csr::from_coo(n, n, &coo)
}

fn main() {
    let tm = generate(NrelCase::SingleLow, 2e-4);
    let rotor = tm.meshes[1].clone();
    let nranks = 4;
    println!(
        "== Pressure-Poisson on the rotor mesh: {} rows, aspect ratio {:.0} ==\n",
        rotor.n_nodes(),
        rotor.max_aspect_ratio()
    );
    println!(
        "{:<28} {:>7} {:>8} {:>8} {:>9} {:>7}",
        "configuration", "levels", "grid-cx", "op-cx", "GMRES-it", "conv"
    );

    for (name, cfg) in [
        (
            "direct, no aggressive",
            AmgConfig {
                interp: InterpType::Direct,
                agg_levels: 0,
                ..AmgConfig::standard()
            },
        ),
        (
            "BAMG-direct, no aggressive",
            AmgConfig::standard(),
        ),
        (
            "MM-ext, no aggressive",
            AmgConfig {
                interp: InterpType::MmExt,
                agg_levels: 0,
                ..AmgConfig::standard()
            },
        ),
        (
            "MM-ext, aggressive x2 (paper)",
            AmgConfig::pressure_default(),
        ),
        (
            "MM-ext+i, aggressive x2",
            AmgConfig {
                interp: InterpType::MmExtI,
                ..AmgConfig::pressure_default()
            },
        ),
    ] {
        let rotor = rotor.clone();
        let out = Comm::run(nranks, move |rank| {
            let dm = DofMap::build(&rotor, rank.size(), PartitionMethod::Multilevel, 7);
            let a_serial = pressure_matrix(&rotor, &dm);
            let dist = RowDist::block(a_serial.nrows() as u64, rank.size());
            let a = exawind::distmat::ParCsr::from_serial(
                rank,
                dist.clone(),
                dist.clone(),
                &a_serial,
            );
            let amg = AmgPrecond::setup(rank, a.clone(), &cfg).expect("AMG setup");
            let h = amg.hierarchy();
            let b = ParVector::from_fn(rank, dist.clone(), |g| ((g % 13) as f64) - 6.0);
            let mut x = ParVector::zeros(rank, dist);
            let stats = Gmres {
                restart: 60,
                max_iters: 120,
                tol: 1e-8,
                ortho: OrthoStrategy::OneReduce,
            }
            .solve(rank, &a, &b, &mut x, &amg)
            .expect("solve");
            (
                h.n_levels(),
                h.grid_complexity,
                h.operator_complexity,
                stats.iters,
                stats.converged,
            )
        });
        let (levels, gc, oc, iters, conv) = out[0];
        println!(
            "{name:<28} {levels:>7} {gc:>8.2} {oc:>8.2} {iters:>9} {:>7}",
            if conv { "yes" } else { "NO" }
        );
    }
    println!(
        "\npaper: aggressive PMIS coarsening on the first two levels cuts \
         complexity; MM-ext second-stage interpolation keeps convergence."
    );
}
