//! Quickstart: simulate uniform wind through an empty tunnel on 4
//! simulated MPI ranks, then print residual behaviour and a flow probe.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with telemetry (JSONL event stream + end-of-run report):
//! cargo run --release --example quickstart -- --telemetry run.jsonl
//! # equivalently:
//! EXAWIND_TELEMETRY=run.jsonl cargo run --release --example quickstart
//! # same run with the ranks wired over TCP sockets instead of channels:
//! EXAWIND_TRANSPORT=socket cargo run --release --example quickstart
//! # same run as 4 OS processes, one rank each (see exawind-launch):
//! cargo build --release --example quickstart
//! target/release/exawind-launch -n 4 -- target/release/examples/quickstart
//! ```

use exawind::nalu_core::{Simulation, SolverConfig};
use exawind::parcomm::Comm;
use exawind::telemetry;
use exawind::windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

/// `--telemetry <path>` from argv, else the `EXAWIND_TELEMETRY` env var.
fn telemetry_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("--telemetry requires a path argument");
                    std::process::exit(2);
                })
                .clone()
        })
        .or_else(telemetry::env_path)
}

fn main() {
    // Under `exawind-launch` the rank count comes from the job
    // environment; standalone it defaults to 4.
    let nranks = Comm::env_size(4);
    let steps = 3;
    let tel_path = telemetry_path();

    // Transport selection lives in the solver config (seeded from
    // `EXAWIND_TRANSPORT`), resolved once out here: the rank closure is
    // identical however the communicator is backed.
    let cfg = SolverConfig {
        telemetry: tel_path.is_some(),
        ..SolverConfig::default()
    };
    let transport = cfg.transport;

    let outputs = Comm::run_with(transport, nranks, move |rank| {
        // A 10×4×4 rotor-diameter wind tunnel, inflow 8 m/s in +x.
        let mesh = box_mesh(
            uniform_spacing(0.0, 630.0, 17),
            uniform_spacing(-126.0, 126.0, 9),
            uniform_spacing(-126.0, 126.0, 9),
            BoxBc::wind_tunnel(),
        );
        let mut sim = Simulation::new(rank, vec![mesh], cfg.clone());

        let mut lines = Vec::new();
        for step in 0..steps {
            let report = sim.step(rank);
            if rank.rank() == 0 {
                lines.push(format!(
                    "step {step}: NLI {:.3}s, GMRES iters: momentum={} continuity={} scalar={}",
                    report.nli_seconds,
                    report.gmres_iters["momentum"],
                    report.gmres_iters["continuity"],
                    report.gmres_iters["scalar"],
                ));
            }
        }
        // Probe the centreline velocity (uniform flow must stay uniform).
        let state = sim.state(0);
        let mesh = sim.mesh(0);
        let mut probe = Vec::new();
        if rank.rank() == 0 {
            for (i, c) in mesh.coords.iter().enumerate() {
                if c[1].abs() < 1.0 && c[2].abs() < 1.0 {
                    probe.push(format!(
                        "x={:7.1}  u=({:6.3}, {:6.3}, {:6.3})  p={:9.2e}",
                        c[0],
                        state.vel[i][0],
                        state.vel[i][1],
                        state.vel[i][2],
                        state.p[i]
                    ));
                }
            }
        }
        let clock = sim.clock_tables();
        let events = sim.finish_telemetry(rank);
        (lines, probe, events, clock)
    });

    // As a launched worker process this binary holds one rank; only the
    // process holding rank 0 narrates (the others computed its halos).
    if Comm::worker_rank().unwrap_or(0) != 0 {
        return;
    }
    let (lines, probe, ..) = &outputs[0];
    println!("== ExaWind-RS quickstart: empty wind tunnel on {nranks} ranks ({transport} transport) ==");
    for l in lines {
        println!("{l}");
    }
    println!("\ncentreline probe (expect u ≈ (8, 0, 0), p ≈ 0):");
    for l in probe {
        println!("  {l}");
    }

    if let Some(path) = tel_path {
        // Rank 0's clock tables (identical on every rank after the
        // startup handshake) align the per-rank epochs in the header.
        let clock = outputs[0].3.clone();
        let mut events = vec![telemetry::run_info_with_clock(nranks, clock)];
        events.extend(telemetry::merge_ranks(
            outputs.into_iter().map(|(_, _, ev, _)| ev).collect(),
        ));
        telemetry::write_jsonl(&path, &events)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\ntelemetry: {} events written to {path}", events.len());
        let mut report = telemetry::Report::from_events(&events);
        report.bw_baseline_gbs = Some(machine::host_baseline().stream_gbs);
        print!("{}", report.render_ascii());
    }
}
