//! Blade-resolved turbine simulation: the paper's low-resolution
//! single-turbine case at laptop scale — rotating rotor mesh, overset
//! coupling, AMG-preconditioned pressure solves — with the per-equation
//! timing breakdown of Figures 6/7 printed at the end.
//!
//! ```sh
//! cargo run --release --example turbine_overset
//! # with telemetry (JSONL event stream + end-of-run report):
//! cargo run --release --example turbine_overset -- --telemetry run.jsonl
//! ```

use exawind::nalu_core::{Phase, Simulation, SolverConfig};
use exawind::parcomm::Comm;
use exawind::telemetry;
use exawind::windmesh::turbine::generate;
use exawind::windmesh::NrelCase;

/// `--telemetry <path>` from argv, else the `EXAWIND_TELEMETRY` env var.
fn telemetry_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("--telemetry requires a path argument");
                    std::process::exit(2);
                })
                .clone()
        })
        .or_else(telemetry::env_path)
}

fn main() {
    let nranks = 4;
    let steps = 2;
    let scale = 2e-4;
    let tel_path = telemetry_path();
    let telemetry_on = tel_path.is_some();

    let tm = generate(NrelCase::SingleLow, scale);
    println!(
        "== NREL 5-MW single turbine at scale {scale}: {} mesh nodes ({} background + {} rotor), {} overset receptors ==",
        tm.total_nodes(),
        tm.meshes[0].n_nodes(),
        tm.meshes[1].n_nodes(),
        tm.overset.receptors.len()
    );
    let meshes = tm.meshes;

    let outputs = Comm::run(nranks, move |rank| {
        let cfg = SolverConfig {
            telemetry: telemetry_on,
            ..SolverConfig::default()
        };
        let mut sim = Simulation::new(rank, meshes.clone(), cfg);
        let mut lines = Vec::new();
        for step in 0..steps {
            let report = sim.step(rank);
            if rank.rank() == 0 {
                lines.push(format!(
                    "step {step}: NLI {:.2}s, pressure GMRES iters {}",
                    report.nli_seconds, report.gmres_iters["continuity"]
                ));
            }
        }
        // Wake probe: axial velocity one radius downstream of the rotor.
        let state = sim.state(0);
        let mesh = sim.mesh(0);
        let mut deficit: Vec<String> = Vec::new();
        if rank.rank() == 0 {
            for (i, c) in mesh.coords.iter().enumerate() {
                if (c[0] - 126.0).abs() < 20.0 && c[2].abs() < 1.0 && c[1] >= 0.0 {
                    deficit.push(format!(
                        "  y={:6.1}  u_x={:6.3}",
                        c[1], state.vel[i][0]
                    ));
                }
            }
        }
        // Per-equation wall-clock breakdown (cumulative over the run).
        let mut breakdown = Vec::new();
        if rank.rank() == 0 {
            for eq in ["momentum", "continuity", "scalar"] {
                let row: Vec<String> = Phase::ALL
                    .iter()
                    .map(|&ph| format!("{}={:.3}s", ph.label(), sim.timings.get(eq, ph)))
                    .collect();
                breakdown.push(format!("{eq:12} {}", row.join("  ")));
            }
        }
        let clock = sim.clock_tables();
        let events = sim.finish_telemetry(rank);
        (lines, deficit, breakdown, events, clock)
    });

    let (lines, deficit, breakdown, ..) = &outputs[0];
    for l in lines {
        println!("{l}");
    }
    println!("\nwake profile 1R downstream (freestream 8 m/s):");
    for l in deficit {
        println!("{l}");
    }
    println!("\nper-equation wall-clock breakdown (cf. paper Figs. 6/7):");
    for l in breakdown {
        println!("  {l}");
    }

    if let Some(path) = tel_path {
        // Rank 0's clock tables (identical on every rank after the
        // startup handshake) align the per-rank epochs in the header.
        let clock = outputs[0].4.clone();
        let mut events = vec![telemetry::run_info_with_clock(nranks, clock)];
        events.extend(telemetry::merge_ranks(
            outputs.into_iter().map(|(_, _, _, ev, _)| ev).collect(),
        ));
        telemetry::write_jsonl(&path, &events)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\ntelemetry: {} events written to {path}", events.len());
        let mut report = telemetry::Report::from_events(&events);
        report.bw_baseline_gbs = Some(machine::host_baseline().stream_gbs);
        print!("{}", report.render_ascii());
    }
}
