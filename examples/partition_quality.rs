//! Partition-quality comparison (the paper's Figures 4/5 story): RCB vs
//! multilevel (ParMETIS-style) decomposition of a blade-resolved turbine
//! mesh — per-rank load spread, edge cut, and the disconnected-sliver
//! count visible in the paper's Fig. 4.
//!
//! ```sh
//! cargo run --release --example partition_quality
//! ```

use exawind::meshpart::{multilevel_kway, rcb, Graph, PartitionStats};
use exawind::meshpart::stats::sliver_count;
use exawind::windmesh::turbine::generate;
use exawind::windmesh::NrelCase;

fn main() {
    let tm = generate(NrelCase::SingleLow, 4e-4);
    let rotor = &tm.meshes[1];
    println!(
        "== Rotor mesh: {} nodes, {} edges, max aspect ratio {:.1} ==",
        rotor.n_nodes(),
        rotor.edges.len(),
        rotor.max_aspect_ratio()
    );
    let graph = Graph::from_edges_unit(rotor.n_nodes(), &rotor.adjacency());
    let unit_load: Vec<f64> = vec![1.0; rotor.n_nodes()];

    println!(
        "\n{:>6} | {:>28} | {:>28}",
        "ranks", "RCB (min/med/max, cut, sliv)", "ML (min/med/max, cut, sliv)"
    );
    for nparts in [4usize, 8, 16, 32] {
        let p_rcb = rcb(&rotor.coords, &unit_load, nparts);
        let p_ml = multilevel_kway(&graph, nparts, 0xE1A);
        let s_rcb = PartitionStats::new(&p_rcb, &unit_load, nparts);
        let s_ml = PartitionStats::new(&p_ml, &unit_load, nparts);
        let cut_rcb = graph.edge_cut(&p_rcb);
        let cut_ml = graph.edge_cut(&p_ml);
        let sliv_rcb = sliver_count(&graph, &p_rcb, nparts);
        let sliv_ml = sliver_count(&graph, &p_ml, nparts);
        println!(
            "{:>6} | {:>6.0}/{:>6.0}/{:>6.0} {:>6.0} {:>3} | {:>6.0}/{:>6.0}/{:>6.0} {:>6.0} {:>3}",
            nparts,
            s_rcb.min,
            s_rcb.median,
            s_rcb.max,
            cut_rcb,
            sliv_rcb,
            s_ml.min,
            s_ml.median,
            s_ml.max,
            cut_ml,
            sliv_ml,
        );
    }
    println!(
        "\npaper: RCB produces imbalanced, occasionally disconnected sliver \
         subdomains on stretched blade meshes; multilevel partitioning \
         tightens the spread (Fig. 5) at moderate rank counts."
    );
}
