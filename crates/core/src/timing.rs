//! Per-equation, per-phase timing accumulation.
//!
//! Mirrors the breakdowns of the paper's Figures 6 and 7: for each
//! equation system, the time spent in graph computation + physics, local
//! assembly, global assembly, preconditioner setup, and solve.

use std::collections::BTreeMap;
use std::time::Instant;

/// Assembly/solve phase of one equation system (the sub-bars of Figs. 6/7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Sparsity-pattern computation + physics evaluation (purple).
    GraphPhysics,
    /// Local COO fill (green).
    LocalAssembly,
    /// Algorithm 1/2 global assembly (red).
    GlobalAssembly,
    /// Preconditioner (AMG/SGS2) setup (blue).
    PrecondSetup,
    /// Preconditioned GMRES solve (orange).
    Solve,
}

impl Phase {
    /// All phases in plot order.
    pub const ALL: [Phase; 5] = [
        Phase::GraphPhysics,
        Phase::LocalAssembly,
        Phase::GlobalAssembly,
        Phase::PrecondSetup,
        Phase::Solve,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::GraphPhysics => "graph+physics",
            Phase::LocalAssembly => "local assembly",
            Phase::GlobalAssembly => "global assembly",
            Phase::PrecondSetup => "precond setup",
            Phase::Solve => "solve",
        }
    }

    /// The perf-trace phase label for an equation (used by the machine
    /// model to price each sub-bar separately).
    pub fn trace_label(self, eq: &str) -> String {
        format!("{eq}/{}", self.label())
    }

    /// Inverse of [`Phase::label`].
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.label() == label)
    }

    /// Inverse of [`Phase::trace_label`]: split an `"{eq}/{phase}"` perf
    /// label back into its equation and phase. This is the single place
    /// where trace labels are interpreted; downstream consumers (bench
    /// pricing, telemetry) must use it instead of string-matching label
    /// text themselves.
    pub fn parse_trace_label(label: &str) -> Option<(&str, Phase)> {
        let (eq, rest) = label.rsplit_once('/')?;
        Some((eq, Phase::from_label(rest)?))
    }
}

/// Accumulated wall-clock seconds per (equation, phase).
#[derive(Clone, Debug, Default)]
pub struct Timings {
    acc: BTreeMap<(String, Phase), f64>,
}

impl Timings {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f`, attributing the wall-clock to `(eq, phase)`.
    pub fn time<R>(&mut self, eq: &str, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        *self.acc.entry((eq.to_string(), phase)).or_insert(0.0) +=
            start.elapsed().as_secs_f64();
        out
    }

    /// Add seconds directly.
    pub fn add(&mut self, eq: &str, phase: Phase, seconds: f64) {
        *self.acc.entry((eq.to_string(), phase)).or_insert(0.0) += seconds;
    }

    /// Accumulated seconds for `(eq, phase)`.
    pub fn get(&self, eq: &str, phase: Phase) -> f64 {
        self.acc.get(&(eq.to_string(), phase)).copied().unwrap_or(0.0)
    }

    /// Total over all phases of one equation.
    pub fn equation_total(&self, eq: &str) -> f64 {
        Phase::ALL.iter().map(|&p| self.get(eq, p)).sum()
    }

    /// Total over everything.
    pub fn total(&self) -> f64 {
        self.acc.values().sum()
    }

    /// Equations seen, sorted.
    pub fn equations(&self) -> Vec<String> {
        let mut eqs: Vec<String> = self.acc.keys().map(|(e, _)| e.clone()).collect();
        eqs.sort();
        eqs.dedup();
        eqs
    }

    /// Iterate `((equation, phase), seconds)` in BTreeMap order:
    /// alphabetical by equation, then plot (declaration) order by phase.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Phase, f64)> {
        self.acc.iter().map(|((eq, ph), &s)| (eq.as_str(), *ph, s))
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Timings) {
        for ((eq, phase), secs) in &other.acc {
            *self.acc.entry((eq.clone(), *phase)).or_insert(0.0) += secs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates() {
        let mut t = Timings::new();
        let v = t.time("continuity", Phase::Solve, || 42);
        assert_eq!(v, 42);
        t.add("continuity", Phase::Solve, 1.0);
        t.add("continuity", Phase::PrecondSetup, 0.5);
        assert!(t.get("continuity", Phase::Solve) >= 1.0);
        assert_eq!(t.get("continuity", Phase::PrecondSetup), 0.5);
        assert_eq!(t.get("momentum", Phase::Solve), 0.0);
        assert!(t.equation_total("continuity") >= 1.5);
    }

    #[test]
    fn merge_and_listing() {
        let mut a = Timings::new();
        a.add("momentum", Phase::LocalAssembly, 1.0);
        let mut b = Timings::new();
        b.add("momentum", Phase::LocalAssembly, 2.0);
        b.add("scalar", Phase::Solve, 1.0);
        a.merge(&b);
        assert_eq!(a.get("momentum", Phase::LocalAssembly), 3.0);
        assert_eq!(a.equations(), vec!["momentum".to_string(), "scalar".to_string()]);
        assert_eq!(a.total(), 4.0);
    }

    #[test]
    fn trace_labels_are_namespaced() {
        assert_eq!(
            Phase::Solve.trace_label("continuity"),
            "continuity/solve"
        );
        assert_eq!(Phase::ALL.len(), 5);
    }

    #[test]
    fn trace_label_round_trips_for_every_phase() {
        for ph in Phase::ALL {
            assert_eq!(Phase::from_label(ph.label()), Some(ph));
            let label = ph.trace_label("momentum_x");
            assert_eq!(Phase::parse_trace_label(&label), Some(("momentum_x", ph)));
        }
        assert_eq!(Phase::parse_trace_label("no-slash"), None);
        assert_eq!(Phase::parse_trace_label("eq/unknown phase"), None);
    }

    #[test]
    fn iter_yields_plot_order_within_equation() {
        let mut t = Timings::new();
        t.add("continuity", Phase::Solve, 1.0);
        t.add("continuity", Phase::GraphPhysics, 2.0);
        t.add("continuity", Phase::PrecondSetup, 3.0);
        let phases: Vec<Phase> = t.iter().map(|(_, p, _)| p).collect();
        assert_eq!(
            phases,
            vec![Phase::GraphPhysics, Phase::PrecondSetup, Phase::Solve]
        );
    }
}
