//! The time integrator: Picard iterations over the overset mesh system.
//!
//! Each time step performs (per §5): rotor motion + overset connectivity
//! update, graph computation for every equation system, then
//! `picard_iters` nonlinear iterations, each of which re-interpolates the
//! overset fringes (additive Schwarz) and, per mesh, assembles and solves
//! momentum (3 RHS, SGS2-preconditioned one-reduce GMRES), the
//! pressure-Poisson projection (AMG-preconditioned GMRES) followed by the
//! velocity correction, and scalar transport.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use amg::{AmgConfig, AmgPrecond, AmgReuse};
use distmat::{ParCsr, ParVector};
use krylov::{Gmres, JacobiPrecond, OrthoStrategy, Preconditioner, Sgs2};
use parcomm::{Rank, TransportKind};
use sparse_kit::{policy, KernelPolicy};
use resilience::checkpoint::{self, MeshCheckpoint, SolverCheckpoint};
use resilience::faults::{self, FaultGuard, FaultKind, FaultPlan};
use resilience::{guard, RecoveryAction, RecoveryPolicy, RecoveryRecord, SolveError};
use windmesh::overset::assemble_overset;
use windmesh::{Mesh, OversetAssembly, TurbineMeshes};

use crate::assemble::{
    correct_velocity, fill_continuity, fill_momentum, fill_scalar, try_build_matrix, PhysicsParams,
};
use crate::dofmap::PartitionMethod;
use crate::eqsys::{EqKind, MeshSystem};
use crate::graph::dirichlet_momentum;
use crate::state::{overset_exchange, State};
use crate::timing::{Phase, Timings};

/// Periodic checkpoint configuration (see [`resilience::checkpoint`]).
#[derive(Clone, Debug)]
pub struct CheckpointCfg {
    /// Write a checkpoint generation every `every` completed steps.
    pub every: usize,
    /// Directory holding the per-rank files and the cohort manifest.
    pub dir: PathBuf,
}

impl CheckpointCfg {
    /// Read the `EXAWIND_CHECKPOINT_EVERY` / `EXAWIND_CHECKPOINT_DIR`
    /// environment selection. `None` unless EVERY parses to a positive
    /// interval; the directory defaults to `exawind-checkpoints`.
    pub fn from_env() -> Option<CheckpointCfg> {
        let every = std::env::var(checkpoint::ENV_EVERY)
            .ok()?
            .trim()
            .parse::<usize>()
            .ok()?;
        if every == 0 {
            return None;
        }
        let dir = std::env::var(checkpoint::ENV_DIR)
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("exawind-checkpoints"));
        Some(CheckpointCfg { every, dir })
    }
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Flow model parameters.
    pub physics: PhysicsParams,
    /// Picard (nonlinear) iterations per time step — the paper uses 4.
    pub picard_iters: usize,
    /// Domain decomposition method.
    pub partition: PartitionMethod,
    /// Seed for partitioning/AMG randomness.
    pub seed: u64,
    /// GMRES restart length.
    pub gmres_restart: usize,
    /// GMRES iteration cap per solve.
    pub gmres_max_iters: usize,
    /// Orthogonalization strategy (one-reduce by default, §4.2).
    pub ortho: OrthoStrategy,
    /// Relative tolerance for the momentum/scalar solves.
    pub momentum_tol: f64,
    /// Relative tolerance for the pressure solve.
    pub pressure_tol: f64,
    /// AMG options for the pressure preconditioner.
    pub amg: AmgConfig,
    /// SGS2 inner Jacobi-Richardson sweeps (2 in the paper).
    pub sgs_inner: usize,
    /// SGS2 outer iterations (2 in the paper).
    pub sgs_outer: usize,
    /// Overset hole-cutting margin.
    pub overset_margin: f64,
    /// Force-enable the telemetry event stream. Telemetry is also
    /// enabled when the `EXAWIND_TELEMETRY` environment variable is set
    /// (see the `telemetry` crate); with both off, recording is a no-op.
    pub telemetry: bool,
    /// Fault-injection plan for resilience testing. `None` falls back to
    /// the `EXAWIND_FAULTS` environment variable; with both unset no
    /// injector is installed and every solve is byte-for-byte the clean
    /// path.
    pub faults: Option<FaultPlan>,
    /// Escalation policy applied when a solve fails with a typed
    /// [`SolveError`].
    pub recovery: RecoveryPolicy,
    /// Transport backend the driver should run the communicator on
    /// (defaults to the `EXAWIND_TRANSPORT` environment selection).
    /// Consumed *outside* the rank closure — pass it to
    /// [`parcomm::Comm::run_with`]; the solver itself is
    /// transport-agnostic and produces bitwise-identical results on
    /// every backend.
    pub transport: TransportKind,
    /// SpMV kernel backend policy (defaults to the `EXAWIND_KERNELS`
    /// environment selection, itself defaulting to `auto`). Installed on
    /// the rank thread by [`Simulation::new`]; every backend produces
    /// bitwise-identical results, the policy only moves bytes.
    pub kernels: KernelPolicy,
    /// Periodic checkpointing (defaults to the
    /// `EXAWIND_CHECKPOINT_EVERY` / `EXAWIND_CHECKPOINT_DIR`
    /// environment selection; `None` disables). A complete generation
    /// is published every `every` steps; [`Simulation::resume`] restores
    /// the newest one bitwise-exactly.
    pub checkpoint: Option<CheckpointCfg>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            physics: PhysicsParams::default(),
            picard_iters: 4,
            partition: PartitionMethod::Multilevel,
            seed: 0xE1A,
            gmres_restart: 50,
            gmres_max_iters: 200,
            ortho: OrthoStrategy::OneReduce,
            momentum_tol: 1e-6,
            pressure_tol: 1e-5,
            amg: AmgConfig::pressure_default(),
            sgs_inner: 2,
            sgs_outer: 2,
            overset_margin: 0.18,
            telemetry: false,
            faults: None,
            recovery: RecoveryPolicy::default(),
            transport: TransportKind::from_env(),
            kernels: KernelPolicy::from_env(),
            checkpoint: CheckpointCfg::from_env(),
        }
    }
}

/// Summary of one time step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Wall-clock seconds of the nonlinear iterations (the NLI metric of
    /// Figures 3/8/9/11).
    pub nli_seconds: f64,
    /// GMRES iterations accumulated per equation system this step.
    pub gmres_iters: BTreeMap<String, usize>,
    /// Per-equation, per-phase wall-clock of this step.
    pub timings: Timings,
    /// Recovery attempts walked this step (empty on a clean step).
    pub recoveries: Vec<RecoveryRecord>,
    /// Final GMRES relative residual per equation for the most recent
    /// solve of this step (momentum: last velocity component).
    pub final_rels: BTreeMap<String, f64>,
}

impl StepReport {
    /// Worst (max) final relative residual over all equations solved
    /// this step; 0.0 when nothing was solved. Feeds the launcher's
    /// live-monitoring heartbeat.
    pub fn max_final_rel(&self) -> f64 {
        self.final_rels.values().copied().fold(0.0, f64::max)
    }
}

/// Per-attempt modifications applied while walking the recovery ladder.
/// The clean path uses `AttemptMods::default()`.
#[derive(Clone, Copy, Debug)]
struct AttemptMods {
    /// Swap the configured preconditioner for the cheaper fallback
    /// smoother (SGS2 → Jacobi-Richardson, AMG → SGS2).
    fallback_smoother: bool,
    /// Multiplier on the physics time step for this attempt.
    dt_scale: f64,
}

impl Default for AttemptMods {
    fn default() -> Self {
        AttemptMods { fallback_smoother: false, dt_scale: 1.0 }
    }
}

/// A running simulation on one rank.
pub struct Simulation {
    cfg: SolverConfig,
    meshes: Vec<Mesh>,
    states: Vec<State>,
    overset: OversetAssembly,
    systems: Vec<MeshSystem>,
    /// Cumulative per-equation, per-phase timings over all steps.
    pub timings: Timings,
    /// Final GMRES relative residual per equation, refreshed each solve.
    final_rels: BTreeMap<String, f64>,
    step_count: usize,
    /// Per-rank telemetry recorder (disabled = no-op).
    telemetry: telemetry::Telemetry,
    /// Keeps `telemetry` installed as this thread's current dispatcher
    /// so the solver layers (GMRES, AMG, smoothers, assembly) can emit
    /// events without signature changes. Dropped by
    /// [`Simulation::finish_telemetry`].
    tel_guard: Option<telemetry::InstallGuard>,
    /// Keeps the fault-injection plan installed as this rank thread's
    /// injector for the lifetime of the simulation (None = no faults).
    _fault_guard: Option<FaultGuard>,
    /// Per-mesh stores of AMG-setup SpGEMM plans: each Picard re-solve
    /// of the pressure system replays the Galerkin products numerically
    /// while the sparsity (fixed by the mesh graph) is unchanged.
    amg_reuse: BTreeMap<usize, AmgReuse>,
    /// Newest complete checkpoint this rank wrote or restored from:
    /// `(generation, step)`.
    last_ckpt: Option<(u64, u64)>,
    /// Clock-alignment table from the startup handshake, identical on
    /// every rank (`None` with telemetry off). Rank 0 records it in the
    /// stream's `run` event so trace merging can align timestamps.
    clock: Option<parcomm::ClockSync>,
    /// Solver-health degradation detector, fed once per completed step.
    /// Pure arithmetic over collectively identical solver outputs, so it
    /// runs whether or not telemetry records the results.
    health: telemetry::health::HealthDetector,
    /// Shape of the most recent successful AMG setup:
    /// `(levels, grid complexity, operator complexity)`.
    last_amg: Option<(u64, f64, f64)>,
}

impl Simulation {
    /// Build a simulation over `meshes` (mesh 0 = background). Overset
    /// connectivity is assembled here when there are component meshes.
    /// Collective (partitioning is deterministic and replicated).
    pub fn new(rank: &Rank, mut meshes: Vec<Mesh>, cfg: SolverConfig) -> Simulation {
        // Install the kernel-backend policy on this rank thread before
        // any matrix is built, so every ParCsr constructed below picks
        // its SpMV storage consistently.
        policy::install(cfg.kernels);
        let overset = if meshes.len() > 1 {
            assemble_overset(&mut meshes, cfg.overset_margin)
        } else {
            OversetAssembly::default()
        };
        let me = rank.rank();
        let systems: Vec<MeshSystem> = meshes
            .iter()
            .map(|m| MeshSystem::new(m, rank.size(), cfg.partition, cfg.seed, me))
            .collect();
        let states: Vec<State> = meshes
            .iter()
            .map(|m| {
                State::cold_start(m.n_nodes(), cfg.physics.u_inflow, cfg.physics.nut_inflow)
            })
            .collect();
        let tel = if cfg.telemetry {
            telemetry::Telemetry::enabled(me)
        } else {
            telemetry::Telemetry::from_env(me)
        };
        let tel_guard = tel.is_enabled().then(|| tel.install());
        // Startup clock alignment over the transport (collective; skips
        // itself — no clock read, no message — with telemetry off).
        let clock = rank.clock_sync();
        // Install the fault injector on this rank thread. Plans are
        // replicated per rank (config or env), so occurrence counters
        // advance identically on every rank — injected faults stay
        // collectively consistent.
        let fault_guard = cfg
            .faults
            .clone()
            .or_else(FaultPlan::from_env)
            .map(|p| p.install());
        Simulation {
            cfg,
            meshes,
            states,
            overset,
            systems,
            timings: Timings::new(),
            final_rels: BTreeMap::new(),
            step_count: 0,
            telemetry: tel,
            tel_guard,
            _fault_guard: fault_guard,
            amg_reuse: BTreeMap::new(),
            last_ckpt: None,
            clock,
            health: telemetry::health::HealthDetector::new(),
            last_amg: None,
        }
    }

    /// The startup clock-alignment table as `(offsets, rtts)`, the shape
    /// `telemetry::run_info_with_clock` takes. `None` with telemetry off.
    pub fn clock_tables(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.clock.clone().map(parcomm::ClockSync::into_tables)
    }

    /// Most recent solver-health degradation verdict, for status lines
    /// and the launcher heartbeat. `None` while the detector is quiet.
    pub fn last_health_verdict(&self) -> Option<&telemetry::health::Verdict> {
        self.health.last_verdict()
    }

    /// Whether this simulation is recording telemetry.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Finish telemetry recording: uninstall the dispatcher, convert the
    /// rank's accumulated perf trace into `phase_perf` events, and drain
    /// the event stream. Returns an empty vec when telemetry is off.
    /// Call once, after the last [`Simulation::step`].
    pub fn finish_telemetry(&mut self, rank: &Rank) -> Vec<telemetry::Event> {
        self.tel_guard.take();
        if !self.telemetry.is_enabled() {
            return Vec::new();
        }
        for ev in rank.telemetry_events() {
            self.telemetry.record(ev);
        }
        let tel = std::mem::replace(&mut self.telemetry, telemetry::Telemetry::disabled());
        tel.finish()
    }

    /// Build from a generated turbine case.
    pub fn from_turbine(rank: &Rank, tm: TurbineMeshes, cfg: SolverConfig) -> Simulation {
        // `TurbineMeshes` already carries an assembly, but statuses are
        // recomputed here so the Simulation owns a consistent trio.
        Simulation::new(rank, tm.meshes, cfg)
    }

    /// Number of meshes.
    pub fn n_meshes(&self) -> usize {
        self.meshes.len()
    }

    /// State of a mesh.
    pub fn state(&self, m: usize) -> &State {
        &self.states[m]
    }

    /// Mesh accessor.
    pub fn mesh(&self, m: usize) -> &Mesh {
        &self.meshes[m]
    }

    /// Per-mesh systems (partition statistics etc.).
    pub fn system(&self, m: usize) -> &MeshSystem {
        &self.systems[m]
    }

    fn phased<R>(
        rank: &Rank,
        t: &mut Timings,
        eq: &str,
        ph: Phase,
        f: impl FnOnce() -> R,
    ) -> R {
        let label = ph.trace_label(eq);
        // Span path e.g. "timestep/picard/continuity/solve": events
        // emitted by the solver layers (GMRES, AMG) read the equation
        // back as the second-to-last segment.
        let _eq_span = telemetry::span(eq);
        let _ph_span = telemetry::span(ph.label());
        t.time(eq, ph, || rank.with_phase(&label, f))
    }

    /// Advance one time step. Collective. Panics if a solve fails and the
    /// recovery ladder is exhausted — use [`Simulation::try_step`] to
    /// handle that case.
    pub fn step(&mut self, rank: &Rank) -> StepReport {
        self.try_step(rank)
            .unwrap_or_else(|e| panic!("time step failed beyond recovery: {e}"))
    }

    /// Advance one time step. Collective. A solve failure walks the
    /// configured recovery ladder (fresh rebuild → fallback smoother →
    /// timestep cut); only a failure that survives every rung is returned
    /// as an error. All error branches derive from collectively consistent
    /// conditions, so every rank returns the same result.
    pub fn try_step(&mut self, rank: &Rank) -> Result<StepReport, SolveError> {
        let start = Instant::now();
        let mut t = Timings::new();
        let mut iters: BTreeMap<String, usize> = BTreeMap::new();
        let mut recoveries: Vec<RecoveryRecord> = Vec::new();
        let me = rank.rank();
        let _step_span = telemetry::span("timestep");

        // Deterministic process-death fault (`kill-rank@rankN:k`): fires
        // at the top of a step, so the newest complete checkpoint
        // generation predates the killed step. The occurrence counter
        // advances in every incarnation (keeping restored counter state
        // aligned across ranks), but the abort itself is suppressed once
        // the supervisor has relaunched the cohort — the fault models a
        // transient external kill, not a deterministic crash bug that
        // would defeat any restart budget.
        if faults::fire(FaultKind::KillRank, || format!("rank{me}"))
            && checkpoint::restart_count() == 0
        {
            eprintln!(
                "exawind: kill-rank fault fired on rank {me} at step {}: aborting process",
                self.step_count
            );
            std::process::abort();
        }

        // --- Mesh motion + overset connectivity update ------------------
        if self.meshes.len() > 1 {
            let d_angle = self.cfg.physics.rotor_omega * self.cfg.physics.dt;
            Self::phased(rank, &mut t, "overset", Phase::GraphPhysics, || {
                for m in self.meshes.iter_mut().skip(1) {
                    windmesh::motion::rotate_annulus(m, d_angle);
                }
                self.overset = assemble_overset(&mut self.meshes, self.cfg.overset_margin);
            });
        }

        // --- Stage 1: graph computation for every system -----------------
        for (sys, mesh) in self.systems.iter_mut().zip(&self.meshes) {
            Self::phased(rank, &mut t, "momentum", Phase::GraphPhysics, || {
                sys.rebuild_graphs(mesh, me);
            });
        }

        // --- Picard iterations -------------------------------------------
        for _ in 0..self.cfg.picard_iters {
            let _picard_span = telemetry::span("picard");
            Self::phased(rank, &mut t, "overset", Phase::GraphPhysics, || {
                overset_exchange(&mut self.states, &self.meshes, &self.overset);
            });
            for m in 0..self.meshes.len() {
                let its = self.solve_with_recovery(
                    rank,
                    m,
                    &mut t,
                    "momentum",
                    Self::try_solve_momentum,
                    &mut recoveries,
                )?;
                *iters.entry("momentum".into()).or_insert(0) += its;
                let its = self.solve_with_recovery(
                    rank,
                    m,
                    &mut t,
                    "continuity",
                    Self::try_solve_continuity,
                    &mut recoveries,
                )?;
                *iters.entry("continuity".into()).or_insert(0) += its;
                let its = self.solve_with_recovery(
                    rank,
                    m,
                    &mut t,
                    "scalar",
                    Self::try_solve_scalar,
                    &mut recoveries,
                )?;
                *iters.entry("scalar".into()).or_insert(0) += its;
            }
        }

        for st in &mut self.states {
            st.advance_time();
        }
        if self.telemetry.is_enabled() {
            for (eq, ph, secs) in t.iter() {
                self.telemetry.record(telemetry::Event::PhaseTime {
                    rank: me,
                    step: self.step_count,
                    eq: eq.to_string(),
                    phase: ph.label().to_string(),
                    secs,
                });
            }
        }
        self.step_count += 1;
        self.maybe_checkpoint(rank)?;

        // --- Solver-health sample + degradation detector ----------------
        // Fed unconditionally: the detector is pure arithmetic over
        // collectively identical solver outputs (no clock reads), so the
        // telemetry-off path stays bitwise identical while the verdict
        // state is still available to heartbeats.
        let step = self.step_count - 1;
        let sample = telemetry::health::HealthSample {
            eqs: iters
                .iter()
                .map(|(eq, &its)| {
                    let final_rel = self.final_rels.get(eq).copied().unwrap_or(0.0);
                    telemetry::EqHealthRow {
                        eq: eq.clone(),
                        iters: its as u64,
                        final_rel,
                        rate: telemetry::health::HealthSample::rate(its as u64, final_rel),
                    }
                })
                .collect(),
            amg_levels: self.last_amg.map_or(0, |(l, _, _)| l),
            grid_complexity: self.last_amg.map_or(0.0, |(_, g, _)| g),
            operator_complexity: self.last_amg.map_or(0.0, |(_, _, o)| o),
            recoveries: recoveries.len() as u64,
            checkpoint: self
                .last_ckpt
                .filter(|&(_, s)| s == self.step_count as u64)
                .map(|(g, _)| g),
        };
        let verdicts = self.health.observe(step, &sample);
        if self.telemetry.is_enabled() {
            self.telemetry.record(sample.to_event(me, step));
            for v in &verdicts {
                self.telemetry.record(v.to_event(me));
            }
        }

        self.timings.merge(&t);
        Ok(StepReport {
            nli_seconds: start.elapsed().as_secs_f64(),
            gmres_iters: iters,
            timings: t,
            recoveries,
            final_rels: self.final_rels.clone(),
        })
    }

    /// Completed time steps (the step cursor a checkpoint captures).
    pub fn steps_completed(&self) -> usize {
        self.step_count
    }

    /// Newest complete checkpoint this rank wrote or restored from, as
    /// `(generation, step)`. Feeds the launcher heartbeat and the crash
    /// breadcrumb, so a supervisor knows where a dead rank could resume.
    pub fn last_checkpoint(&self) -> Option<(u64, u64)> {
        self.last_ckpt
    }

    /// Capture this rank's complete solver state at the current step
    /// boundary (see [`resilience::checkpoint`] for what is — and
    /// deliberately is not — serialized).
    fn capture(&self) -> SolverCheckpoint {
        SolverCheckpoint {
            step: self.step_count as u64,
            meshes: self
                .states
                .iter()
                .map(|st| MeshCheckpoint {
                    vel: st.vel.iter().flat_map(|v| v.iter().copied()).collect(),
                    vel_old: st.vel_old.iter().flat_map(|v| v.iter().copied()).collect(),
                    p: st.p.clone(),
                    dp: st.dp.clone(),
                    nut: st.nut.clone(),
                    nut_old: st.nut_old.clone(),
                })
                .collect(),
            final_rels: self
                .final_rels
                .iter()
                .map(|(k, &v)| (k.clone().into_bytes(), v))
                .collect(),
            fault_counters: faults::counters(),
            amg_plans: self
                .amg_reuse
                .iter()
                .map(|(&m, r)| (m as u64, r.n_plans() as u64))
                .collect(),
        }
    }

    /// Write one checkpoint generation if the configured interval is
    /// due. Collective: the failure branch is allreduced, so every rank
    /// returns the same result, and that allreduce doubles as the
    /// completion fence — after it, all rank files of this generation
    /// are on disk and rank 0 may publish it to the manifest.
    fn maybe_checkpoint(&mut self, rank: &Rank) -> Result<(), SolveError> {
        let Some(ck_cfg) = self.cfg.checkpoint.clone() else {
            return Ok(());
        };
        if ck_cfg.every == 0 || !self.step_count.is_multiple_of(ck_cfg.every) {
            return Ok(());
        }
        let t0 = Instant::now();
        let me = rank.rank();
        let generation = self.step_count as u64;
        let ck = self.capture();
        let (bytes, write_err) =
            match checkpoint::write_rank(&ck_cfg.dir, me, rank.size(), generation, &ck) {
                Ok(b) => (b, None),
                Err(e) => (0, Some(e)),
            };
        let failed = rank.allreduce_sum(u64::from(write_err.is_some()));
        if failed > 0 {
            return Err(SolveError::Checkpoint {
                detail: write_err.map_or_else(
                    || format!("{failed} rank(s) failed writing generation {generation}"),
                    |e| e.to_string(),
                ),
            });
        }
        // A generation exists only once the manifest names it; the
        // publish outcome is allreduced too, keeping the error branch
        // collectively consistent.
        let pub_err = if me == 0 {
            checkpoint::publish_generation(&ck_cfg.dir, rank.size(), generation).err()
        } else {
            None
        };
        let pub_failed = rank.allreduce_sum(u64::from(pub_err.is_some()));
        if pub_failed > 0 {
            return Err(SolveError::Checkpoint {
                detail: pub_err.map_or_else(
                    || format!("rank 0 failed publishing generation {generation}"),
                    |e| e.to_string(),
                ),
            });
        }
        self.last_ckpt = Some((generation, generation));
        self.telemetry.record(telemetry::Event::Checkpoint {
            rank: me,
            step: self.step_count,
            generation,
            bytes,
            secs: t0.elapsed().as_secs_f64(),
            t: telemetry::now_secs(),
        });
        Ok(())
    }

    /// Resume from the newest complete checkpoint generation, restoring
    /// this rank's state **bitwise identically** to a run that was never
    /// interrupted. `Ok(None)` when checkpointing is unconfigured or no
    /// generation has been published (cold start); `Ok(Some(gen))` after
    /// a successful restore.
    ///
    /// Mesh geometry is not stored in the checkpoint: the restore
    /// replays the per-step rotor rotations on the freshly generated
    /// mesh (bit-for-bit the sequence the uninterrupted run performed —
    /// overset assembly never mutates coordinates) and reassembles the
    /// overset connectivity once. Fault-injector occurrence counters are
    /// restored so seeded fault windows keep advancing where the
    /// interrupted run left off. AMG SpGEMM plans are re-recorded by the
    /// first post-restore setup with bitwise-identical numerics.
    ///
    /// Call right after [`Simulation::new`], before the first step.
    /// Collective (every rank reads the same manifest).
    pub fn resume(&mut self, rank: &Rank) -> Result<Option<u64>, SolveError> {
        let Some(ck_cfg) = self.cfg.checkpoint.clone() else {
            return Ok(None);
        };
        let me = rank.rank();
        let Some(manifest) = checkpoint::read_manifest(&ck_cfg.dir)? else {
            return Ok(None);
        };
        if manifest.ranks != rank.size() {
            return Err(SolveError::Checkpoint {
                detail: format!(
                    "manifest is for a {}-rank cohort, this run has {}",
                    manifest.ranks,
                    rank.size()
                ),
            });
        }
        let Some(generation) = manifest.latest() else {
            return Ok(None);
        };
        let ck = checkpoint::read_rank(&ck_cfg.dir, me, rank.size(), generation)?;
        if ck.meshes.len() != self.meshes.len() {
            return Err(SolveError::Checkpoint {
                detail: format!(
                    "checkpoint has {} mesh(es), simulation has {}",
                    ck.meshes.len(),
                    self.meshes.len()
                ),
            });
        }
        for (m, (st, mk)) in self.states.iter().zip(&ck.meshes).enumerate() {
            let n = st.vel.len();
            if mk.vel.len() != 3 * n
                || mk.vel_old.len() != 3 * n
                || mk.p.len() != n
                || mk.dp.len() != n
                || mk.nut.len() != n
                || mk.nut_old.len() != n
            {
                return Err(SolveError::Checkpoint {
                    detail: format!("mesh {m} field lengths disagree with {n} nodes"),
                });
            }
        }
        for (st, mk) in self.states.iter_mut().zip(&ck.meshes) {
            for (i, v) in st.vel.iter_mut().enumerate() {
                *v = [mk.vel[3 * i], mk.vel[3 * i + 1], mk.vel[3 * i + 2]];
            }
            for (i, v) in st.vel_old.iter_mut().enumerate() {
                *v = [mk.vel_old[3 * i], mk.vel_old[3 * i + 1], mk.vel_old[3 * i + 2]];
            }
            st.p.copy_from_slice(&mk.p);
            st.dp.copy_from_slice(&mk.dp);
            st.nut.copy_from_slice(&mk.nut);
            st.nut_old.copy_from_slice(&mk.nut_old);
        }
        self.final_rels = ck
            .final_rels
            .iter()
            .map(|(name, rel)| {
                String::from_utf8(name.clone())
                    .map(|n| (n, *rel))
                    .map_err(|_| SolveError::Checkpoint {
                        detail: "final-residual equation name is not UTF-8".into(),
                    })
            })
            .collect::<Result<_, _>>()?;
        self.step_count = ck.step as usize;
        // Replay rotor motion: one rotation per completed step, exactly
        // the calls the uninterrupted run made, then reassemble the
        // overset connectivity (a pure function of the coordinates).
        if self.meshes.len() > 1 {
            let d_angle = self.cfg.physics.rotor_omega * self.cfg.physics.dt;
            for _ in 0..ck.step {
                for m in self.meshes.iter_mut().skip(1) {
                    windmesh::motion::rotate_annulus(m, d_angle);
                }
            }
            self.overset = assemble_overset(&mut self.meshes, self.cfg.overset_margin);
        }
        faults::restore_counters(&ck.fault_counters)
            .map_err(|detail| SolveError::Checkpoint { detail })?;
        self.last_ckpt = Some((generation, ck.step));
        self.telemetry.record(telemetry::Event::Restore {
            rank: me,
            step: ck.step as usize,
            generation,
            t: telemetry::now_secs(),
        });
        Ok(Some(generation))
    }

    /// Run one equation solve, escalating through the recovery ladder on
    /// typed failures. Each attempt re-runs the full
    /// assemble → precondition → solve pipeline (a rebuild is therefore
    /// implicit in every retry); later rungs additionally swap in the
    /// fallback smoother and cut the attempt's time step. One `recovery`
    /// telemetry event is emitted per attempt.
    fn solve_with_recovery(
        &mut self,
        rank: &Rank,
        m: usize,
        t: &mut Timings,
        eq: &str,
        solve: fn(&mut Simulation, &Rank, usize, &mut Timings, &AttemptMods) -> Result<usize, SolveError>,
        recoveries: &mut Vec<RecoveryRecord>,
    ) -> Result<usize, SolveError> {
        let mut err = match solve(self, rank, m, t, &AttemptMods::default()) {
            Ok(n) => return Ok(n),
            Err(e) => e,
        };
        let policy = self.cfg.recovery;
        let ladder = policy.ladder();
        let mut mods = AttemptMods::default();
        for (i, action) in ladder.iter().enumerate() {
            let attempt = i + 1;
            match action {
                // Every retry reassembles and rebuilds the preconditioner
                // from scratch, which is exactly what this rung asks for.
                RecoveryAction::Rebuild => {}
                RecoveryAction::FallbackSmoother => mods.fallback_smoother = true,
                RecoveryAction::CutTimestep => mods.dt_scale *= policy.dt_cut,
            }
            match solve(self, rank, m, t, &mods) {
                Ok(n) => {
                    recoveries.push(self.record_recovery(rank, eq, &err, *action, attempt, "recovered"));
                    return Ok(n);
                }
                Err(e) => {
                    let outcome = if attempt == ladder.len() { "failed" } else { "retry" };
                    recoveries.push(self.record_recovery(rank, eq, &err, *action, attempt, outcome));
                    err = e;
                }
            }
        }
        Err(err)
    }

    fn record_recovery(
        &mut self,
        rank: &Rank,
        eq: &str,
        fault: &SolveError,
        action: RecoveryAction,
        attempt: usize,
        outcome: &str,
    ) -> RecoveryRecord {
        let rec = RecoveryRecord {
            eq: eq.to_string(),
            step: self.step_count,
            fault: fault.kind().to_string(),
            detail: fault.to_string(),
            action: action.label().to_string(),
            attempt,
            outcome: outcome.to_string(),
        };
        self.telemetry.record(telemetry::Event::Recovery {
            rank: rank.rank(),
            eq: rec.eq.clone(),
            step: rec.step,
            fault: rec.fault.clone(),
            action: rec.action.clone(),
            attempt: rec.attempt,
            outcome: rec.outcome.clone(),
        });
        rec
    }

    /// Allreduced finite scan of an assembled system: every rank sees the
    /// same global count of non-finite coefficients, so the error branch
    /// is collectively consistent.
    fn check_system_finite(
        rank: &Rank,
        a: &ParCsr,
        rhs: &[&ParVector],
    ) -> Result<(), SolveError> {
        let mut local = guard::count_nonfinite(a.diag.vals()) + guard::count_nonfinite(a.offd.vals());
        for b in rhs {
            local += guard::count_nonfinite(&b.local);
        }
        let bad = rank.allreduce_sum(local);
        if bad > 0 {
            return Err(SolveError::NonFiniteCoefficient {
                context: rank.phase_name(),
                count: bad,
            });
        }
        Ok(())
    }

    /// Scatter a distributed solution back into a replicated nodal field.
    fn gather_nodal(rank: &Rank, sys: &MeshSystem, x: &ParVector) -> Vec<f64> {
        let full = x.to_serial(rank);
        sys.node_of_gid
            .iter()
            .enumerate()
            .map(|(g, _)| full[g])
            .collect()
        // (full is already in gid order; mapping to nodes happens at the
        // call site through node_of_gid)
    }

    fn make_gmres(cfg: &SolverConfig, tol: f64) -> Gmres {
        Gmres {
            restart: cfg.gmres_restart,
            max_iters: cfg.gmres_max_iters,
            tol,
            ortho: cfg.ortho,
        }
    }

    fn try_solve_momentum(
        &mut self,
        rank: &Rank,
        m: usize,
        t: &mut Timings,
        mods: &AttemptMods,
    ) -> Result<usize, SolveError> {
        let cfg = self.cfg.clone();
        let eq = EqKind::Momentum.name();
        let sys = &mut self.systems[m];
        let mesh = &self.meshes[m];
        let state = &mut self.states[m];
        let mut params = cfg.physics;
        params.dt *= mods.dt_scale;

        // Stage 2: local assembly.
        let graphs = sys.graphs.as_mut().expect("graphs built");
        let rhs = Self::phased(rank, t, eq, Phase::LocalAssembly, || {
            fill_momentum(
                rank,
                mesh,
                &sys.dm,
                &graphs.momentum,
                &sys.tags,
                state,
                &params,
                &sys.owned_edges,
                &sys.owned_nodes,
                &mut graphs.mom_vals,
            )
        });
        // Stage 3: global assembly (Algorithms 1 and 2).
        let (a, bs) = Self::phased(rank, t, eq, Phase::GlobalAssembly, || {
            let a = try_build_matrix(rank, &sys.dm, &graphs.momentum, &graphs.mom_vals)?;
            let bs: Vec<ParVector> = rhs.into_iter().map(|r| r.assemble(rank)).collect();
            Ok::<_, SolveError>((a, bs))
        })?;
        Self::check_system_finite(rank, &a, &bs.iter().collect::<Vec<_>>())?;
        // Preconditioner setup: compact SGS2, or plain Jacobi-Richardson
        // when the recovery ladder has demoted the smoother.
        let precond: Box<dyn Preconditioner> =
            Self::phased(rank, t, eq, Phase::PrecondSetup, || {
                if mods.fallback_smoother {
                    Box::new(JacobiPrecond::new(&a.diag.diag(), 1.0)) as Box<dyn Preconditioner>
                } else {
                    Box::new(Sgs2::with_sweeps(&a, cfg.sgs_inner, cfg.sgs_outer))
                }
            });
        // Solve the three components with the shared matrix/preconditioner.
        let gmres = Self::make_gmres(&cfg, cfg.momentum_tol);
        let mut total_iters = 0;
        let mut rel = 0.0;
        // Buffer the component solutions and commit only after all three
        // solves succeed, so a mid-equation failure never leaves the
        // velocity field partially updated going into a retry.
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(bs.len());
        Self::phased(rank, t, eq, Phase::Solve, || {
            for (c, b) in bs.iter().enumerate() {
                let mut x = ParVector::from_local(
                    rank,
                    sys.dm.dist.clone(),
                    sys.owned_nodes.iter().map(|&n| state.vel[n][c]).collect(),
                );
                let stats = gmres.solve(rank, &a, b, &mut x, &*precond)?;
                total_iters += stats.iters;
                rel = stats.rel_residual;
                components.push(Self::gather_nodal(rank, sys, &x));
            }
            Ok::<_, SolveError>(())
        })?;
        self.final_rels.insert(eq.to_string(), rel);
        for (c, full) in components.iter().enumerate() {
            for (node, g) in sys.dm.gid.iter().enumerate() {
                state.vel[node][c] = full[*g as usize];
            }
        }
        Ok(total_iters)
    }

    fn try_solve_continuity(
        &mut self,
        rank: &Rank,
        m: usize,
        t: &mut Timings,
        mods: &AttemptMods,
    ) -> Result<usize, SolveError> {
        let cfg = self.cfg.clone();
        let eq = EqKind::Continuity.name();
        let sys = &mut self.systems[m];
        let mesh = &self.meshes[m];
        let state = &mut self.states[m];
        let mut params = cfg.physics;
        params.dt *= mods.dt_scale;

        let graphs = sys.graphs.as_mut().expect("graphs built");
        let rhs = Self::phased(rank, t, eq, Phase::LocalAssembly, || {
            fill_continuity(
                rank,
                mesh,
                &sys.dm,
                &graphs.continuity,
                &sys.tags,
                state,
                &params,
                &sys.owned_edges,
                &sys.owned_nodes,
                &mut graphs.con_vals,
            )
        });
        let (a, b): (ParCsr, ParVector) = Self::phased(rank, t, eq, Phase::GlobalAssembly, || {
            let a = try_build_matrix(rank, &sys.dm, &graphs.continuity, &graphs.con_vals)?;
            Ok::<_, SolveError>((a, rhs.assemble(rank)))
        })?;
        Self::check_system_finite(rank, &a, &[&b])?;
        // Preconditioner setup: AMG, demoted to SGS2 by the recovery
        // ladder (a stalled or corrupted hierarchy must not take the
        // whole step down). The reuse store carries last setup's Galerkin
        // SpGEMM plans; a structure change (mesh motion on this mesh)
        // re-records them collectively inside `setup_with_reuse`.
        let reuse = self.amg_reuse.entry(m).or_default();
        let mut amg_shape: Option<(u64, f64, f64)> = None;
        let precond: Box<dyn Preconditioner> =
            Self::phased(rank, t, eq, Phase::PrecondSetup, || {
                if mods.fallback_smoother {
                    Ok(Box::new(Sgs2::with_sweeps(&a, cfg.sgs_inner, cfg.sgs_outer))
                        as Box<dyn Preconditioner>)
                } else {
                    AmgPrecond::setup_with_reuse(rank, a.clone(), &cfg.amg, reuse).map(|p| {
                        let h = p.hierarchy();
                        amg_shape = Some((
                            h.level_stats.len() as u64,
                            h.grid_complexity,
                            h.operator_complexity,
                        ));
                        Box::new(p) as Box<dyn Preconditioner>
                    })
                }
            })?;
        if amg_shape.is_some() {
            self.last_amg = amg_shape;
        }
        let gmres = Self::make_gmres(&cfg, cfg.pressure_tol);
        let mut iters = 0;
        let mut rel = 0.0;
        Self::phased(rank, t, eq, Phase::Solve, || {
            let mut x = ParVector::zeros(rank, sys.dm.dist.clone());
            let stats = gmres.solve(rank, &a, &b, &mut x, &*precond)?;
            iters = stats.iters;
            rel = stats.rel_residual;
            let full = Self::gather_nodal(rank, sys, &x);
            for (node, g) in sys.dm.gid.iter().enumerate() {
                state.dp[node] = full[*g as usize];
            }
            Ok::<_, SolveError>(())
        })?;
        self.final_rels.insert(eq.to_string(), rel);
        // Projection correction (physics, replicated). Only reached once
        // the pressure solve has succeeded.
        Self::phased(rank, t, eq, Phase::GraphPhysics, || {
            let mom_dir = dirichlet_momentum(&sys.tags);
            correct_velocity(mesh, &sys.tags, state, &params, &mom_dir);
        });
        Ok(iters)
    }

    fn try_solve_scalar(
        &mut self,
        rank: &Rank,
        m: usize,
        t: &mut Timings,
        mods: &AttemptMods,
    ) -> Result<usize, SolveError> {
        let cfg = self.cfg.clone();
        let eq = EqKind::Scalar.name();
        let sys = &mut self.systems[m];
        let mesh = &self.meshes[m];
        let state = &mut self.states[m];
        let mut params = cfg.physics;
        params.dt *= mods.dt_scale;

        let graphs = sys.graphs.as_mut().expect("graphs built");
        let rhs = Self::phased(rank, t, eq, Phase::LocalAssembly, || {
            fill_scalar(
                rank,
                mesh,
                &sys.dm,
                &graphs.scalar,
                &sys.tags,
                state,
                &params,
                &sys.owned_edges,
                &sys.owned_nodes,
                &mut graphs.sca_vals,
            )
        });
        let (a, b) = Self::phased(rank, t, eq, Phase::GlobalAssembly, || {
            let a = try_build_matrix(rank, &sys.dm, &graphs.scalar, &graphs.sca_vals)?;
            Ok::<_, SolveError>((a, rhs.assemble(rank)))
        })?;
        Self::check_system_finite(rank, &a, &[&b])?;
        let precond: Box<dyn Preconditioner> =
            Self::phased(rank, t, eq, Phase::PrecondSetup, || {
                if mods.fallback_smoother {
                    Box::new(JacobiPrecond::new(&a.diag.diag(), 1.0)) as Box<dyn Preconditioner>
                } else {
                    Box::new(Sgs2::with_sweeps(&a, cfg.sgs_inner, cfg.sgs_outer))
                }
            });
        let gmres = Self::make_gmres(&cfg, cfg.momentum_tol);
        let mut iters = 0;
        let mut rel = 0.0;
        Self::phased(rank, t, eq, Phase::Solve, || {
            let mut x = ParVector::from_local(
                rank,
                sys.dm.dist.clone(),
                sys.owned_nodes.iter().map(|&n| state.nut[n]).collect(),
            );
            let stats = gmres.solve(rank, &a, &b, &mut x, &*precond)?;
            iters = stats.iters;
            rel = stats.rel_residual;
            let full = Self::gather_nodal(rank, sys, &x);
            for (node, g) in sys.dm.gid.iter().enumerate() {
                // Clip: transported viscosity must stay non-negative.
                state.nut[node] = full[*g as usize].max(0.0);
            }
            Ok::<_, SolveError>(())
        })?;
        self.final_rels.insert(eq.to_string(), rel);
        Ok(iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;
    use windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

    fn small_box() -> Mesh {
        box_mesh(
            uniform_spacing(0.0, 4.0, 6),
            uniform_spacing(0.0, 2.0, 4),
            uniform_spacing(0.0, 2.0, 4),
            BoxBc::wind_tunnel(),
        )
    }

    #[test]
    fn uniform_inflow_box_stays_uniform() {
        // The strongest physics test: uniform flow through an empty box
        // is an exact steady solution; a time step must not disturb it.
        for p in [1, 2] {
            let out = Comm::run(p, |rank| {
                let cfg = SolverConfig::default();
                let mut sim = Simulation::new(rank, vec![small_box()], cfg.clone());
                let report = sim.step(rank);
                let state = sim.state(0);
                let max_dev = state
                    .vel
                    .iter()
                    .map(|v| {
                        (v[0] - cfg.physics.u_inflow).abs() + v[1].abs() + v[2].abs()
                    })
                    .fold(0.0f64, f64::max);
                let max_p = state.p.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                (max_dev, max_p, report)
            });
            for (max_dev, max_p, report) in out {
                assert!(max_dev < 1e-4, "p={p}: velocity drifted by {max_dev}");
                assert!(max_p < 1e-3, "p={p}: spurious pressure {max_p}");
                assert!(report.nli_seconds > 0.0);
                assert!(report.gmres_iters["continuity"] < 40 * 4);
            }
        }
    }

    #[test]
    fn step_reports_all_equations_and_phases() {
        Comm::run(2, |rank| {
            let mut sim = Simulation::new(rank, vec![small_box()], SolverConfig::default());
            let report = sim.step(rank);
            for eq in ["momentum", "continuity", "scalar"] {
                assert!(report.gmres_iters.contains_key(eq), "{eq} missing");
                assert!(
                    report.timings.get(eq, Phase::LocalAssembly) > 0.0,
                    "{eq} local assembly untimed"
                );
                assert!(report.timings.get(eq, Phase::GlobalAssembly) > 0.0);
                assert!(report.timings.get(eq, Phase::PrecondSetup) > 0.0);
                assert!(report.timings.get(eq, Phase::Solve) > 0.0);
            }
        });
    }

    #[test]
    fn traces_carry_per_equation_phases() {
        let (_, traces) = Comm::run_traced(2, |rank| {
            let mut sim = Simulation::new(rank, vec![small_box()], SolverConfig::default());
            sim.step(rank);
        });
        for tr in &traces {
            let solve = tr.phase("continuity/solve");
            assert!(solve.kernel_launches > 0, "no pressure solve kernels");
            assert!(solve.collectives > 0, "no pressure solve reductions");
            let setup = tr.phase("continuity/precond setup");
            assert!(setup.kernel_launches > 0, "no AMG setup kernels");
            let global = tr.phase("momentum/global assembly");
            assert!(global.collectives > 0, "no assembly allgather");
        }
    }

    #[test]
    fn checkpoint_then_resume_is_bitwise_identical() {
        let dir = std::env::temp_dir().join(format!("exawind-sim-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ck_cfg = SolverConfig {
            picard_iters: 2,
            checkpoint: Some(CheckpointCfg { every: 2, dir: dir.clone() }),
            ..SolverConfig::default()
        };
        let field_bits = |sim: &Simulation| {
            sim.state(0)
                .vel
                .iter()
                .flat_map(|v| v.iter().map(|x| x.to_bits()))
                .collect::<Vec<u64>>()
        };
        // Uninterrupted reference: 3 steps, no checkpointing.
        let reference = Comm::run(2, |rank| {
            let cfg = SolverConfig { checkpoint: None, ..ck_cfg.clone() };
            let mut sim = Simulation::new(rank, vec![small_box()], cfg);
            for _ in 0..3 {
                sim.step(rank);
            }
            field_bits(&sim)
        });
        // Interrupted run: 2 steps publish generation 2, then the
        // process "dies" (the simulation is dropped).
        Comm::run(2, |rank| {
            let mut sim = Simulation::new(rank, vec![small_box()], ck_cfg.clone());
            for _ in 0..2 {
                sim.step(rank);
            }
            assert_eq!(sim.last_checkpoint(), Some((2, 2)));
        });
        // Restarted run: resume from generation 2, finish step 3.
        let resumed = Comm::run(2, |rank| {
            let mut sim = Simulation::new(rank, vec![small_box()], ck_cfg.clone());
            let gen = sim.resume(rank).expect("resume failed");
            assert_eq!(gen, Some(2));
            assert_eq!(sim.steps_completed(), 2);
            sim.step(rank);
            field_bits(&sim)
        });
        for (r, u) in resumed.iter().zip(&reference) {
            assert_eq!(r, u, "restart diverged from the uninterrupted run");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn solution_consistent_across_rank_counts() {
        let mut results: Vec<Vec<f64>> = Vec::new();
        for p in [1, 2, 4] {
            let out = Comm::run(p, |rank| {
                let cfg = SolverConfig {
                    momentum_tol: 1e-10,
                    pressure_tol: 1e-10,
                    picard_iters: 2,
                    ..SolverConfig::default()
                };
                let mut sim = Simulation::new(rank, vec![small_box()], cfg);
                sim.step(rank);
                // x-velocity field as the comparison signature.
                sim.state(0).vel.iter().map(|v| v[0]).collect::<Vec<f64>>()
            });
            results.push(out[0].clone());
        }
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "solution depends on rank count: {a} vs {b}"
                );
            }
        }
    }
}
