//! Degree-of-freedom maps: mesh partitioning and global renumbering.
//!
//! Each overset mesh gets its own linear systems (additive Schwarz, §2),
//! so each mesh carries its own [`DofMap`]: a partition of its nodes over
//! the ranks (RCB or the multilevel ParMETIS stand-in, §5.1) and the
//! contiguous global renumbering hypre's block-row distribution needs.

use distmat::{ops::dist_from_partition, RowDist};
use meshpart::{multilevel_kway, rcb, Graph};
use windmesh::Mesh;

/// Which decomposition to use — the paper's central comparison (Figs. 4/5/10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Recursive coordinate bisection (the original decomposition).
    Rcb,
    /// Multilevel k-way graph partitioning (the ParMETIS rebalancing).
    Multilevel,
}

/// Node → rank assignment and global numbering for one mesh.
#[derive(Clone, Debug)]
pub struct DofMap {
    /// Row distribution over ranks.
    pub dist: RowDist,
    /// Global id of each mesh node.
    pub gid: Vec<u64>,
    /// Owning rank of each mesh node.
    pub owner: Vec<usize>,
    /// The partition vector (rank per node).
    pub part: Vec<usize>,
}

impl DofMap {
    /// Partition `mesh` into `nparts` and build the global numbering.
    /// Deterministic: every rank computes the same map.
    pub fn build(mesh: &Mesh, nparts: usize, method: PartitionMethod, seed: u64) -> DofMap {
        let n = mesh.n_nodes();
        let part = if nparts == 1 {
            vec![0; n]
        } else {
            match method {
                // STK distributes *elements*: RCB balances element counts
                // over element centroids, and nodes follow their first
                // adjacent element (first-touch, like STK's shared-node
                // ownership resolution). On stretched body-fitted meshes
                // this is exactly what produces the per-rank nonzero
                // imbalance and sliver subdomains of the paper's
                // Figures 4/5.
                PartitionMethod::Rcb => {
                    let centroids: Vec<[f64; 3]> = mesh
                        .hexes
                        .iter()
                        .map(|h| {
                            let mut c = [0.0; 3];
                            for &v in h {
                                for (d, cd) in c.iter_mut().enumerate() {
                                    *cd += mesh.coords[v][d] / 8.0;
                                }
                            }
                            c
                        })
                        .collect();
                    let w = vec![1.0; centroids.len()];
                    let epart = rcb(&centroids, &w, nparts);
                    let mut node_part = vec![usize::MAX; n];
                    for (e, h) in mesh.hexes.iter().enumerate() {
                        for &v in h {
                            if node_part[v] == usize::MAX {
                                node_part[v] = epart[e];
                            }
                        }
                    }
                    // Nodes not touched by any hex (none in practice).
                    for p in node_part.iter_mut() {
                        if *p == usize::MAX {
                            *p = 0;
                        }
                    }
                    node_part
                }
                // The ParMETIS-style rebalancing targets the linear
                // system: vertex weights are the row nonzero counts.
                PartitionMethod::Multilevel => {
                    let mut degree = vec![1.0f64; n];
                    for e in &mesh.edges {
                        degree[e.a] += 1.0;
                        degree[e.b] += 1.0;
                    }
                    // Unit edge weights: the cut count is the number of
                    // off-rank matrix couplings, i.e. the halo-message
                    // volume the solvers pay for; vertex weights are row
                    // nonzero counts (the quantity ParMETIS rebalancing
                    // targets in the paper's workflow).
                    let edges: Vec<(usize, usize, f64)> = mesh
                        .edges
                        .iter()
                        .map(|e| (e.a, e.b, 1.0))
                        .collect();
                    let g = Graph::from_edges(n, &edges, degree);
                    multilevel_kway(&g, nparts, seed)
                }
            }
        };
        let (dist, gid) = dist_from_partition(&part, nparts);
        let owner = part.clone();
        DofMap {
            dist,
            gid,
            owner,
            part,
        }
    }

    /// Nodes owned by `rank`, in ascending global-id order.
    pub fn owned_nodes(&self, rank: usize) -> Vec<usize> {
        let mut nodes: Vec<usize> = (0..self.gid.len())
            .filter(|&i| self.owner[i] == rank)
            .collect();
        nodes.sort_by_key(|&i| self.gid[i]);
        nodes
    }

    /// Local index (within the rank's block) of a node owned by `rank`.
    pub fn local_of(&self, rank: usize, node: usize) -> usize {
        self.dist.to_local(rank, self.gid[node])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

    fn mesh() -> Mesh {
        box_mesh(
            uniform_spacing(0.0, 1.0, 5),
            uniform_spacing(0.0, 1.0, 5),
            uniform_spacing(0.0, 1.0, 5),
            BoxBc::wind_tunnel(),
        )
    }

    #[test]
    fn gids_are_a_permutation() {
        let m = mesh();
        for method in [PartitionMethod::Rcb, PartitionMethod::Multilevel] {
            let dm = DofMap::build(&m, 4, method, 1);
            let mut gids = dm.gid.clone();
            gids.sort();
            let expected: Vec<u64> = (0..m.n_nodes() as u64).collect();
            assert_eq!(gids, expected, "{method:?}");
            assert_eq!(dm.dist.global_n(), m.n_nodes() as u64);
        }
    }

    #[test]
    fn ownership_matches_distribution() {
        let m = mesh();
        let dm = DofMap::build(&m, 3, PartitionMethod::Multilevel, 7);
        for i in 0..m.n_nodes() {
            assert_eq!(dm.dist.owner(dm.gid[i]), dm.owner[i]);
        }
        // Owned nodes cover all nodes exactly once.
        let total: usize = (0..3).map(|r| dm.owned_nodes(r).len()).sum();
        assert_eq!(total, m.n_nodes());
    }

    #[test]
    fn owned_nodes_ascend_in_gid() {
        let m = mesh();
        let dm = DofMap::build(&m, 2, PartitionMethod::Rcb, 0);
        for r in 0..2 {
            let nodes = dm.owned_nodes(r);
            for (k, &node) in nodes.iter().enumerate() {
                assert_eq!(dm.local_of(r, node), k);
            }
        }
    }

    #[test]
    fn single_rank_trivial() {
        let m = mesh();
        let dm = DofMap::build(&m, 1, PartitionMethod::Rcb, 0);
        assert!(dm.part.iter().all(|&p| p == 0));
    }
}
