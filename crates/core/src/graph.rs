//! Stage 1: graph computation.
//!
//! "The graph-computation stage computes the exact sparsity pattern of a
//! linear system for each governing equation... Several auxiliary data
//! structures are also constructed that enable matrix element location
//! determination in the next stage." (§3.1)
//!
//! The owned and shared COO patterns are computed exactly (row-major
//! sorted, duplicate-free), and every owned edge gets four precomputed
//! *write slots* — the auxiliary structures that let the local-assembly
//! stage scatter coefficients without any searching (the paper's
//! binary-search-once optimization of §3.2).

use sparse_kit::prims;
use windmesh::{BcKind, Mesh, NodeStatus};

use crate::dofmap::DofMap;

/// Boundary-condition tag of a node (highest priority wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcTag {
    /// Interior DoF.
    Interior,
    /// Velocity/scalar Dirichlet from the freestream.
    Inflow,
    /// Pressure Dirichlet (reference), natural for momentum.
    Outflow,
    /// Slip plane: natural everywhere.
    Symmetry,
    /// No-slip rotating wall: velocity/scalar Dirichlet.
    Wall,
    /// Overset receptor: Dirichlet from the donor mesh for everything.
    Fringe,
    /// Blanked node: frozen identity row.
    Hole,
}

/// Classify every node of a mesh (overset status takes priority over
/// side-set membership; side sets are applied in declaration order).
pub fn classify_nodes(mesh: &Mesh) -> Vec<BcTag> {
    let mut tags = vec![BcTag::Interior; mesh.n_nodes()];
    for patch in &mesh.boundaries {
        let tag = match patch.kind {
            BcKind::Inflow => BcTag::Inflow,
            BcKind::Outflow => BcTag::Outflow,
            BcKind::Symmetry => BcTag::Symmetry,
            BcKind::Wall => BcTag::Wall,
            BcKind::OversetReceptor => BcTag::Fringe,
        };
        for &n in &patch.nodes {
            // Walls and inflow dominate symmetry on shared edges/corners.
            if tags[n] == BcTag::Interior || tags[n] == BcTag::Symmetry {
                tags[n] = tag;
            }
        }
    }
    for (n, s) in mesh.status.iter().enumerate() {
        match s {
            NodeStatus::Hole => tags[n] = BcTag::Hole,
            NodeStatus::Fringe => tags[n] = BcTag::Fringe,
            NodeStatus::Active => {}
        }
    }
    tags
}

/// Dirichlet mask for the momentum/scalar systems.
pub fn dirichlet_momentum(tags: &[BcTag]) -> Vec<bool> {
    tags.iter()
        .map(|t| matches!(t, BcTag::Inflow | BcTag::Wall | BcTag::Fringe | BcTag::Hole))
        .collect()
}

/// Dirichlet mask for the pressure-Poisson system.
pub fn dirichlet_pressure(tags: &[BcTag]) -> Vec<bool> {
    tags.iter()
        .map(|t| matches!(t, BcTag::Outflow | BcTag::Fringe | BcTag::Hole))
        .collect()
}

/// Slot sentinel: contribution dropped (Dirichlet row).
pub const SKIP: u32 = u32::MAX;
/// High bit marks a slot into the shared value array.
const SHARED_BIT: u32 = 1 << 31;

/// Inverse of [`EquationGraph::edge_slots`]: for every pattern slot, the
/// list of per-edge contribution indices (`4·edge + corner`) that land in
/// it, in ascending order.
///
/// This is what lets the local-assembly stage run the edge loop in
/// parallel and still produce bitwise-deterministic sums: the per-edge
/// coefficients are computed independently (a parallel map), and each
/// slot then accumulates *its* contributions in the fixed edge order —
/// the same order the sequential loop used — regardless of thread count.
#[derive(Clone, Debug)]
pub struct ScatterPlan {
    /// CSR-style offsets into `owned_src`, one segment per owned slot.
    pub owned_indptr: Vec<usize>,
    /// Contribution indices (`4k + j`) per owned slot, ascending.
    pub owned_src: Vec<u32>,
    /// Offsets into `shared_src`, one segment per shared slot.
    pub shared_indptr: Vec<usize>,
    /// Contribution indices per shared slot, ascending.
    pub shared_src: Vec<u32>,
}

impl ScatterPlan {
    /// Counting-sort the slot targets of every edge contribution.
    /// `SKIP`ped contributions (Dirichlet rows) are dropped.
    pub fn build(edge_slots: &[[u32; 4]], n_owned: usize, n_shared: usize) -> ScatterPlan {
        let mut owned_count = vec![0usize; n_owned];
        let mut shared_count = vec![0usize; n_shared];
        for slots in edge_slots {
            for &s in slots {
                if s == SKIP {
                    continue;
                }
                if s & SHARED_BIT != 0 {
                    shared_count[(s & !SHARED_BIT) as usize] += 1;
                } else {
                    owned_count[s as usize] += 1;
                }
            }
        }
        let owned_indptr = prims::exclusive_scan(&owned_count);
        let shared_indptr = prims::exclusive_scan(&shared_count);
        let mut owned_src = vec![0u32; *owned_indptr.last().unwrap()];
        let mut shared_src = vec![0u32; *shared_indptr.last().unwrap()];
        let mut owned_next = owned_indptr[..n_owned].to_vec();
        let mut shared_next = shared_indptr[..n_shared].to_vec();
        for (k, slots) in edge_slots.iter().enumerate() {
            for (j, &s) in slots.iter().enumerate() {
                if s == SKIP {
                    continue;
                }
                let c = (4 * k + j) as u32;
                if s & SHARED_BIT != 0 {
                    let i = (s & !SHARED_BIT) as usize;
                    shared_src[shared_next[i]] = c;
                    shared_next[i] += 1;
                } else {
                    let i = s as usize;
                    owned_src[owned_next[i]] = c;
                    owned_next[i] += 1;
                }
            }
        }
        ScatterPlan {
            owned_indptr,
            owned_src,
            shared_indptr,
            shared_src,
        }
    }
}

/// The exact sparsity pattern of one equation system on one rank, with
/// precomputed write slots.
#[derive(Clone, Debug)]
pub struct EquationGraph {
    /// Row-major sorted (row, col) pairs for rows owned by this rank.
    pub owned: Vec<(u64, u64)>,
    /// Row-major sorted pairs for rows owned by other ranks.
    pub shared: Vec<(u64, u64)>,
    /// Per owned edge: slots for (aa, ab, bb, ba).
    pub edge_slots: Vec<[u32; 4]>,
    /// Per owned node (in owned-node order): slot of the diagonal.
    pub diag_slots: Vec<u32>,
    /// Dirichlet mask used to build the pattern.
    pub dirichlet: Vec<bool>,
    /// Slot-wise inverse of `edge_slots` for the parallel edge scatter.
    pub scatter: ScatterPlan,
}

impl EquationGraph {
    /// Compute the pattern and slots for one equation.
    ///
    /// `owned_edges` are mesh-edge indices whose first endpoint this rank
    /// owns; `owned_nodes` the rank's nodes in ascending global order.
    pub fn build(
        mesh: &Mesh,
        dm: &DofMap,
        me: usize,
        dirichlet: Vec<bool>,
        owned_edges: &[usize],
        owned_nodes: &[usize],
    ) -> EquationGraph {
        let mut owned: Vec<(u64, u64)> = Vec::new();
        let mut shared: Vec<(u64, u64)> = Vec::new();
        let push = |row_owner: usize, pair: (u64, u64), owned: &mut Vec<(u64, u64)>, shared: &mut Vec<(u64, u64)>| {
            if row_owner == me {
                owned.push(pair);
            } else {
                shared.push(pair);
            }
        };
        for &e in owned_edges {
            let edge = &mesh.edges[e];
            let (a, b) = (edge.a, edge.b);
            let (ga, gb) = (dm.gid[a], dm.gid[b]);
            if !dirichlet[a] {
                // Edge ownership follows node a, so these rows are owned.
                push(dm.owner[a], (ga, ga), &mut owned, &mut shared);
                push(dm.owner[a], (ga, gb), &mut owned, &mut shared);
            }
            if !dirichlet[b] {
                push(dm.owner[b], (gb, gb), &mut owned, &mut shared);
                push(dm.owner[b], (gb, ga), &mut owned, &mut shared);
            }
        }
        for &n in owned_nodes {
            owned.push((dm.gid[n], dm.gid[n]));
        }
        owned.sort_unstable();
        owned.dedup();
        shared.sort_unstable();
        shared.dedup();

        let find = |owned_v: &Vec<(u64, u64)>, shared_v: &Vec<(u64, u64)>, row_owner: usize, pair: (u64, u64)| -> u32 {
            if row_owner == me {
                owned_v.binary_search(&pair).expect("pattern miss (owned)") as u32
            } else {
                SHARED_BIT
                    | shared_v.binary_search(&pair).expect("pattern miss (shared)") as u32
            }
        };
        let mut edge_slots = Vec::with_capacity(owned_edges.len());
        for &e in owned_edges {
            let edge = &mesh.edges[e];
            let (a, b) = (edge.a, edge.b);
            let (ga, gb) = (dm.gid[a], dm.gid[b]);
            let mut slots = [SKIP; 4];
            if !dirichlet[a] {
                slots[0] = find(&owned, &shared, dm.owner[a], (ga, ga));
                slots[1] = find(&owned, &shared, dm.owner[a], (ga, gb));
            }
            if !dirichlet[b] {
                slots[2] = find(&owned, &shared, dm.owner[b], (gb, gb));
                slots[3] = find(&owned, &shared, dm.owner[b], (gb, ga));
            }
            edge_slots.push(slots);
        }
        let diag_slots = owned_nodes
            .iter()
            .map(|&n| {
                let g = dm.gid[n];
                owned.binary_search(&(g, g)).expect("diag missing") as u32
            })
            .collect();
        let scatter = ScatterPlan::build(&edge_slots, owned.len(), shared.len());
        EquationGraph {
            owned,
            shared,
            edge_slots,
            diag_slots,
            dirichlet,
            scatter,
        }
    }

    /// Total pattern entries (`nnz_own + nnz_send`).
    pub fn nnz(&self) -> (usize, usize) {
        (self.owned.len(), self.shared.len())
    }
}

/// Value buffers matching an [`EquationGraph`] pattern.
///
/// The scatter-add is the stand-in for the GPU atomic adds of §3.2. The
/// paper notes that atomics forgo bitwise run-to-run reproducibility and
/// that "one could perform compensated summation [27] to minimize the
/// effect of the potential discrepancies, but this has not yet been
/// implemented" — [`LocalValues::with_compensation`] implements exactly
/// that option: Kahan-compensated scatter-adds, which make the assembled
/// values (nearly) independent of the contribution order.
#[derive(Clone, Debug)]
pub struct LocalValues {
    /// Values of the owned pattern entries.
    pub owned: Vec<f64>,
    /// Values of the shared pattern entries.
    pub shared: Vec<f64>,
    /// Kahan compensation terms (empty when compensation is off).
    comp_owned: Vec<f64>,
    comp_shared: Vec<f64>,
}

impl LocalValues {
    /// Zeroed buffers for `graph` with plain (uncompensated) summation.
    pub fn zeros(graph: &EquationGraph) -> Self {
        LocalValues {
            owned: vec![0.0; graph.owned.len()],
            shared: vec![0.0; graph.shared.len()],
            comp_owned: Vec::new(),
            comp_shared: Vec::new(),
        }
    }

    /// Zeroed buffers with Kahan-compensated scatter-adds (§3.2's
    /// "compensated summation [27]" option).
    pub fn with_compensation(graph: &EquationGraph) -> Self {
        LocalValues {
            owned: vec![0.0; graph.owned.len()],
            shared: vec![0.0; graph.shared.len()],
            comp_owned: vec![0.0; graph.owned.len()],
            comp_shared: vec![0.0; graph.shared.len()],
        }
    }

    /// Whether compensated summation is active.
    pub fn compensated(&self) -> bool {
        !self.comp_owned.is_empty() || self.owned.is_empty()
    }

    /// Reset to zero (pattern reuse across Picard iterations).
    pub fn reset(&mut self) {
        self.owned.iter_mut().for_each(|v| *v = 0.0);
        self.shared.iter_mut().for_each(|v| *v = 0.0);
        self.comp_owned.iter_mut().for_each(|v| *v = 0.0);
        self.comp_shared.iter_mut().for_each(|v| *v = 0.0);
    }

    #[inline]
    fn kahan_add(sum: &mut f64, comp: &mut f64, v: f64) {
        let y = v - *comp;
        let t = *sum + y;
        *comp = (t - *sum) - y;
        *sum = t;
    }

    /// Scatter-add into a slot (the GPU atomic-add of §3.2; sequential
    /// and hence deterministic here — see DESIGN.md).
    #[inline]
    pub fn add(&mut self, slot: u32, v: f64) {
        if slot == SKIP {
            return;
        }
        if slot & SHARED_BIT != 0 {
            let i = (slot & !SHARED_BIT) as usize;
            if self.comp_shared.is_empty() {
                self.shared[i] += v;
            } else {
                Self::kahan_add(&mut self.shared[i], &mut self.comp_shared[i], v);
            }
        } else {
            let i = slot as usize;
            if self.comp_owned.is_empty() {
                self.owned[i] += v;
            } else {
                Self::kahan_add(&mut self.owned[i], &mut self.comp_owned[i], v);
            }
        }
    }

    /// Apply the whole edge stage at once: `src` is the flattened per-edge
    /// coefficient array (`src[4k + j]` = corner `j` of edge `k`) and
    /// `plan` routes every contribution to its slot. Each slot sums its
    /// contributions in ascending edge order, so the result is bitwise
    /// identical to calling [`LocalValues::add`] edge by edge — but the
    /// underlying segmented reduction is free to run slots in parallel.
    pub fn scatter_edges(&mut self, plan: &ScatterPlan, src: &[f64]) {
        if self.comp_owned.is_empty() {
            prims::segmented_gather_sum(&plan.owned_indptr, &plan.owned_src, src, &mut self.owned);
            prims::segmented_gather_sum(
                &plan.shared_indptr,
                &plan.shared_src,
                src,
                &mut self.shared,
            );
        } else {
            prims::segmented_gather_sum_kahan(
                &plan.owned_indptr,
                &plan.owned_src,
                src,
                &mut self.owned,
                &mut self.comp_owned,
            );
            prims::segmented_gather_sum_kahan(
                &plan.shared_indptr,
                &plan.shared_src,
                src,
                &mut self.shared,
                &mut self.comp_shared,
            );
        }
    }

    /// Overwrite a slot (Dirichlet diagonals).
    #[inline]
    pub fn set(&mut self, slot: u32, v: f64) {
        if slot == SKIP {
            return;
        }
        if slot & SHARED_BIT != 0 {
            let i = (slot & !SHARED_BIT) as usize;
            self.shared[i] = v;
            if let Some(c) = self.comp_shared.get_mut(i) {
                *c = 0.0;
            }
        } else {
            let i = slot as usize;
            self.owned[i] = v;
            if let Some(c) = self.comp_owned.get_mut(i) {
                *c = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dofmap::PartitionMethod;
    use windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

    fn setup(nparts: usize) -> (Mesh, DofMap) {
        let mesh = box_mesh(
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            BoxBc::wind_tunnel(),
        );
        let dm = DofMap::build(&mesh, nparts, PartitionMethod::Rcb, 0);
        (mesh, dm)
    }

    fn owned_edges(mesh: &Mesh, dm: &DofMap, me: usize) -> Vec<usize> {
        (0..mesh.edges.len())
            .filter(|&e| dm.owner[mesh.edges[e].a] == me)
            .collect()
    }

    #[test]
    fn classify_prioritises_overset_over_sides() {
        let (mut mesh, _) = setup(1);
        let tags = classify_nodes(&mesh);
        // A corner node on the inflow face is Inflow (or Symmetry beaten).
        let inflow = mesh.boundary(BcKind::Inflow).unwrap().nodes.clone();
        assert!(inflow.iter().all(|&n| tags[n] == BcTag::Inflow));
        // Mark one inflow node as a hole: Hole wins.
        mesh.status[inflow[0]] = NodeStatus::Hole;
        let tags = classify_nodes(&mesh);
        assert_eq!(tags[inflow[0]], BcTag::Hole);
    }

    #[test]
    fn dirichlet_masks_differ_by_equation() {
        let (mesh, _) = setup(1);
        let tags = classify_nodes(&mesh);
        let mom = dirichlet_momentum(&tags);
        let pre = dirichlet_pressure(&tags);
        let inflow = mesh.boundary(BcKind::Inflow).unwrap().nodes.clone();
        let outflow = mesh.boundary(BcKind::Outflow).unwrap().nodes.clone();
        assert!(inflow.iter().all(|&n| mom[n] && !pre[n]));
        assert!(outflow.iter().all(|&n| !mom[n] && pre[n]));
    }

    #[test]
    fn single_rank_pattern_has_no_shared_entries() {
        let (mesh, dm) = setup(1);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_momentum(&tags);
        let oe = owned_edges(&mesh, &dm, 0);
        let on = dm.owned_nodes(0);
        let g = EquationGraph::build(&mesh, &dm, 0, dir, &oe, &on);
        assert!(g.shared.is_empty());
        assert_eq!(g.edge_slots.len(), mesh.edges.len());
        assert_eq!(g.diag_slots.len(), mesh.n_nodes());
        // Pattern is sorted and unique.
        assert!(g.owned.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn multirank_pattern_routes_shared_rows() {
        let (mesh, dm) = setup(2);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_momentum(&tags);
        let mut total_shared = 0;
        for me in 0..2 {
            let oe = owned_edges(&mesh, &dm, me);
            let on = dm.owned_nodes(me);
            let g = EquationGraph::build(&mesh, &dm, me, dir.clone(), &oe, &on);
            // All owned rows really belong to me.
            for &(r, _) in &g.owned {
                assert_eq!(dm.dist.owner(r), me);
            }
            for &(r, _) in &g.shared {
                assert_ne!(dm.dist.owner(r), me);
            }
            total_shared += g.shared.len();
        }
        assert!(total_shared > 0, "cut edges must create shared entries");
    }

    #[test]
    fn dirichlet_rows_only_have_diagonal() {
        let (mesh, dm) = setup(1);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_momentum(&tags);
        let oe = owned_edges(&mesh, &dm, 0);
        let on = dm.owned_nodes(0);
        let g = EquationGraph::build(&mesh, &dm, 0, dir.clone(), &oe, &on);
        for (i, &d) in dir.iter().enumerate() {
            if d {
                let gi = dm.gid[i];
                let row: Vec<_> = g.owned.iter().filter(|(r, _)| *r == gi).collect();
                assert_eq!(row.len(), 1, "Dirichlet row {gi} has off-diagonals");
                assert_eq!(*row[0], (gi, gi));
            }
        }
    }

    #[test]
    fn local_values_scatter_add_and_skip() {
        let (mesh, dm) = setup(1);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_momentum(&tags);
        let oe = owned_edges(&mesh, &dm, 0);
        let on = dm.owned_nodes(0);
        let g = EquationGraph::build(&mesh, &dm, 0, dir, &oe, &on);
        let mut vals = LocalValues::zeros(&g);
        vals.add(SKIP, 5.0); // must be a no-op
        vals.add(g.diag_slots[0], 2.0);
        vals.add(g.diag_slots[0], 3.0);
        assert_eq!(vals.owned[g.diag_slots[0] as usize], 5.0);
        vals.set(g.diag_slots[0], 1.0);
        assert_eq!(vals.owned[g.diag_slots[0] as usize], 1.0);
        vals.reset();
        assert!(vals.owned.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn compensated_scatter_is_order_insensitive() {
        // §3.2: GPU atomics make the scatter order nondeterministic, and
        // the paper suggests compensated summation as the mitigation.
        // Emulate adversarial scatter orders and verify that Kahan
        // accumulation gives (bitwise) order-independent sums where plain
        // summation drifts.
        let (mesh, dm) = setup(1);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_momentum(&tags);
        let oe = owned_edges(&mesh, &dm, 0);
        let on = dm.owned_nodes(0);
        let g = EquationGraph::build(&mesh, &dm, 0, dir, &oe, &on);

        // Contributions spanning 12 orders of magnitude into one slot.
        let slot = g.diag_slots[0];
        let contributions: Vec<f64> = (0..200)
            .map(|k| {
                let mag = 10f64.powi(k % 13 - 6);
                mag * (1.0 + (k as f64) * 1e-3)
            })
            .collect();

        let run = |order: &[usize], compensated: bool| -> f64 {
            let mut vals = if compensated {
                LocalValues::with_compensation(&g)
            } else {
                LocalValues::zeros(&g)
            };
            for &k in order {
                vals.add(slot, contributions[k]);
            }
            vals.owned[slot as usize]
        };
        let forward: Vec<usize> = (0..contributions.len()).collect();
        let reverse: Vec<usize> = forward.iter().rev().copied().collect();
        let mut shuffled = forward.clone();
        // Deterministic shuffle.
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (i * 7919) % (i + 1));
        }

        let plain: Vec<f64> = [&forward, &reverse, &shuffled]
            .iter()
            .map(|o| run(o, false))
            .collect();
        let kahan: Vec<f64> = [&forward, &reverse, &shuffled]
            .iter()
            .map(|o| run(o, true))
            .collect();

        // Plain summation is order-sensitive on this contribution set.
        assert!(
            plain[0] != plain[1] || plain[0] != plain[2],
            "contribution set too benign to demonstrate order sensitivity"
        );
        // Kahan-compensated summation is bitwise order-independent here.
        assert_eq!(kahan[0], kahan[1]);
        assert_eq!(kahan[0], kahan[2]);
        // And both agree to high relative accuracy.
        assert!((plain[0] - kahan[0]).abs() <= 1e-12 * kahan[0].abs());
        assert!(LocalValues::with_compensation(&g).compensated());
    }

    #[test]
    fn scatter_plan_matches_sequential_adds_bitwise() {
        // The plan-driven edge scatter must reproduce the sequential
        // per-edge add loop bit for bit, in both summation modes, at any
        // rank count (so shared slots get exercised too).
        for nparts in [1, 2, 3] {
            let (mesh, dm) = setup(nparts);
            let tags = classify_nodes(&mesh);
            let dir = dirichlet_momentum(&tags);
            for me in 0..nparts {
                let oe = owned_edges(&mesh, &dm, me);
                let on = dm.owned_nodes(me);
                let g = EquationGraph::build(&mesh, &dm, me, dir.clone(), &oe, &on);
                // Contributions spanning many magnitudes and signs.
                let src: Vec<f64> = (0..4 * g.edge_slots.len())
                    .map(|c| {
                        let mag = 10f64.powi((c % 9) as i32 - 4);
                        mag * (((c * 2654435761) % 1000) as f64 - 499.5)
                    })
                    .collect();
                for compensated in [false, true] {
                    let mk = |g: &EquationGraph| {
                        if compensated {
                            LocalValues::with_compensation(g)
                        } else {
                            LocalValues::zeros(g)
                        }
                    };
                    let mut seq = mk(&g);
                    for (k, slots) in g.edge_slots.iter().enumerate() {
                        for (j, &s) in slots.iter().enumerate() {
                            seq.add(s, src[4 * k + j]);
                        }
                    }
                    let mut plan = mk(&g);
                    plan.scatter_edges(&g.scatter, &src);
                    assert_eq!(seq.owned, plan.owned, "owned differ (kahan={compensated})");
                    assert_eq!(seq.shared, plan.shared, "shared differ (kahan={compensated})");
                }
            }
        }
    }

    #[test]
    fn interior_nnz_per_row_is_about_seven() {
        // The edge scheme on hex meshes gives ~7 entries per interior row
        // (paper: "on average eight entries per row").
        let (mesh, dm) = setup(1);
        let tags = classify_nodes(&mesh);
        let dir = dirichlet_pressure(&tags);
        let oe = owned_edges(&mesh, &dm, 0);
        let on = dm.owned_nodes(0);
        let g = EquationGraph::build(&mesh, &dm, 0, dir.clone(), &oe, &on);
        // Count entries of a fully interior row.
        let interior = (0..mesh.n_nodes())
            .find(|&n| {
                tags[n] == BcTag::Interior
                    && mesh.edges.iter().filter(|e| e.a == n || e.b == n).count() == 6
            })
            .expect("interior node");
        let gi = dm.gid[interior];
        let nnz_row = g.owned.iter().filter(|(r, _)| *r == gi).count();
        assert_eq!(nnz_row, 7);
    }
}
