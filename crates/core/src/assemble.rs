//! Stages 2 and 3: local and global assembly of the governing equations.
//!
//! Stage 2 ([`fill_momentum`], [`fill_continuity`], [`fill_scalar`])
//! evaluates the edge-based finite-volume coefficients and scatters them
//! into the pattern slots precomputed by the graph stage (§3.2) — the
//! owned/shared COO value arrays and the owned/shared right-hand sides.
//! Stage 3 ([`build_matrix`]) injects those arrays into the IJ interface,
//! whose `assemble` runs the paper's Algorithm 1/2.

use distmat::{IjMatrix, IjVector, ParCsr};
use parcomm::{KernelKind, Rank};
use rayon::prelude::*;
use windmesh::mesh::Latent;
use windmesh::{BcKind, Mesh};

use crate::dofmap::DofMap;
use crate::graph::{BcTag, EquationGraph, LocalValues};
use crate::state::{wall_velocity, State};

/// Physical and numerical parameters of the flow model.
#[derive(Clone, Copy, Debug)]
pub struct PhysicsParams {
    /// Time-step size.
    pub dt: f64,
    /// Fluid density ρ.
    pub density: f64,
    /// Dynamic viscosity μ.
    pub viscosity: f64,
    /// Freestream axial velocity.
    pub u_inflow: f64,
    /// Freestream transported turbulent viscosity.
    pub nut_inflow: f64,
    /// Rotor angular speed (rad/s) about +x.
    pub rotor_omega: f64,
    /// Actuator-disc thrust coefficient applied over rotor (annulus)
    /// meshes: the momentum sink that produces the turbine wake
    /// (NREL 5-MW rated Cт ≈ 0.77). Zero disables the disc.
    pub disc_ct: f64,
}

impl Default for PhysicsParams {
    fn default() -> Self {
        PhysicsParams {
            dt: 0.5,
            density: 1.0,
            viscosity: 1e-2,
            u_inflow: 8.0,
            nut_inflow: 1e-4,
            rotor_omega: 1.27, // 12.1 rpm, NREL 5-MW rated
            disc_ct: 0.77,
        }
    }
}

#[inline]
fn dot3(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Axis point of a rotating (annulus) mesh, `[0,0,0]` otherwise.
pub fn axis_center(mesh: &Mesh) -> [f64; 3] {
    match &mesh.latent {
        Some(Latent::Annulus { center, .. }) => *center,
        _ => [0.0, 0.0, 0.0],
    }
}

/// Momentum Dirichlet value of a node.
fn mom_bc_value(
    mesh: &Mesh,
    state: &State,
    params: &PhysicsParams,
    center: [f64; 3],
    tag: BcTag,
    node: usize,
) -> [f64; 3] {
    match tag {
        BcTag::Inflow => [params.u_inflow, 0.0, 0.0],
        BcTag::Wall => wall_velocity(mesh.coords[node], center, params.rotor_omega),
        // Fringe values were set by the overset exchange; holes stay frozen.
        _ => state.vel[node],
    }
}

/// Stage 2 for the momentum system: one matrix, three right-hand sides.
#[allow(clippy::too_many_arguments)]
pub fn fill_momentum(
    rank: &Rank,
    mesh: &Mesh,
    dm: &DofMap,
    graph: &EquationGraph,
    tags: &[BcTag],
    state: &State,
    params: &PhysicsParams,
    owned_edges: &[usize],
    owned_nodes: &[usize],
    vals: &mut LocalValues,
) -> [IjVector; 3] {
    vals.reset();
    let dist = dm.dist.clone();
    let mut rhs = [
        IjVector::new(rank, dist.clone()),
        IjVector::new(rank, dist.clone()),
        IjVector::new(rank, dist),
    ];
    let rho = params.density;
    let center = axis_center(mesh);

    // Edge stage: advection (first-order upwind) + diffusion. Each edge's
    // coefficient quadruple is a pure function of that edge, so the fill
    // is a parallel map; the plan-driven scatter then sums every slot's
    // contributions in fixed edge order, keeping the assembled values
    // bitwise independent of the thread count (DESIGN.md, "Threading
    // model").
    let coeffs: Vec<[f64; 4]> = owned_edges
        .par_iter()
        .map(|&e| {
            let edge = &mesh.edges[e];
            let (a, b) = (edge.a, edge.b);
            let mu_e = params.viscosity + rho * 0.5 * (state.nut[a] + state.nut[b]);
            let uface = [
                0.5 * (state.vel[a][0] + state.vel[b][0]),
                0.5 * (state.vel[a][1] + state.vel[b][1]),
                0.5 * (state.vel[a][2] + state.vel[b][2]),
            ];
            let mdot = rho * dot3(edge.area_vec, uface);
            let dterm = mu_e * edge.area_over_dist;
            [
                mdot.max(0.0) + dterm,
                mdot.min(0.0) - dterm,
                -mdot.min(0.0) + dterm,
                -mdot.max(0.0) - dterm,
            ]
        })
        .collect();
    vals.scatter_edges(&graph.scatter, coeffs.as_flattened());

    // Pressure gradient (Green-Gauss face terms into the RHS): face
    // pressures in parallel, scatter in edge order.
    let pfaces: Vec<f64> = owned_edges
        .par_iter()
        .map(|&e| {
            let edge = &mesh.edges[e];
            0.5 * (state.p[edge.a] + state.p[edge.b])
        })
        .collect();
    for (k, &e) in owned_edges.iter().enumerate() {
        let edge = &mesh.edges[e];
        if !graph.dirichlet[edge.a] {
            for (c, rv) in rhs.iter_mut().enumerate() {
                rv.add_value(dm.gid[edge.a], -edge.area_vec[c] * pfaces[k]);
            }
        }
        if !graph.dirichlet[edge.b] {
            for (c, rv) in rhs.iter_mut().enumerate() {
                rv.add_value(dm.gid[edge.b], edge.area_vec[c] * pfaces[k]);
            }
        }
    }

    // Node loop: time term or Dirichlet identity rows.
    for (k, &n) in owned_nodes.iter().enumerate() {
        let slot = graph.diag_slots[k];
        if graph.dirichlet[n] {
            vals.set(slot, 1.0);
            let v = mom_bc_value(mesh, state, params, center, tags[n], n);
            for c in 0..3 {
                rhs[c].add_value(dm.gid[n], v[c]);
            }
        } else {
            let tcoef = rho * mesh.node_volume[n] / params.dt;
            vals.add(slot, tcoef);
            for (c, rv) in rhs.iter_mut().enumerate() {
                rv.add_value(dm.gid[n], tcoef * state.vel_old[n][c]);
            }
        }
    }

    // Outflow boundary: linearized advective outflux on the diagonal.
    add_outflow_diag(mesh, dm, graph, state, rho, owned_nodes, vals);

    // Actuator-disc momentum sink on rotor meshes: the drag of the
    // (rigid-blade) rotor on the flow, linearized implicitly as
    // a_ii += ½ ρ Cт |u| V/Δx over a disc window around the rotor plane.
    if params.disc_ct > 0.0 {
        if let Some(Latent::Annulus { xs, .. }) = &mesh.latent {
            let x_lo = xs[0];
            let x_hi = *xs.last().unwrap();
            let x_mid = 0.5 * (x_lo + x_hi);
            let half_thick = 0.2 * (x_hi - x_lo);
            for (k, &n) in owned_nodes.iter().enumerate() {
                if graph.dirichlet[n] || (mesh.coords[n][0] - x_mid).abs() > half_thick {
                    continue;
                }
                let speed = state.vel[n][0].abs();
                let sink = 0.5 * rho * params.disc_ct * speed * mesh.node_volume[n]
                    / (2.0 * half_thick);
                vals.add(graph.diag_slots[k], sink);
            }
        }
    }

    let work = (owned_edges.len() * 16 + owned_nodes.len() * 8) as u64;
    rank.kernel(KernelKind::Stream, work * 8, work * 4);
    rhs
}

/// Shared helper: add `max(ρ A·u, 0)` to outflow-node diagonals.
fn add_outflow_diag(
    mesh: &Mesh,
    dm: &DofMap,
    graph: &EquationGraph,
    state: &State,
    rho: f64,
    owned_nodes: &[usize],
    vals: &mut LocalValues,
) {
    let Some(patch) = mesh.boundary(BcKind::Outflow) else {
        return;
    };
    // Owned-node lookup: local slot of each owned node.
    let me_local: std::collections::HashMap<usize, usize> = owned_nodes
        .iter()
        .enumerate()
        .map(|(k, &n)| (n, k))
        .collect();
    for (&n, &an) in patch.nodes.iter().zip(&patch.normals) {
        if graph.dirichlet[n] {
            continue;
        }
        if let Some(&k) = me_local.get(&n) {
            let mdot = rho * dot3(an, state.vel[n]);
            vals.add(graph.diag_slots[k], mdot.max(0.0));
        }
    }
    let _ = dm;
}

/// Stage 2 for the pressure-Poisson system.
#[allow(clippy::too_many_arguments)]
pub fn fill_continuity(
    rank: &Rank,
    mesh: &Mesh,
    dm: &DofMap,
    graph: &EquationGraph,
    tags: &[BcTag],
    state: &State,
    params: &PhysicsParams,
    owned_edges: &[usize],
    owned_nodes: &[usize],
    vals: &mut LocalValues,
) -> IjVector {
    vals.reset();
    let mut rhs = IjVector::new(rank, dm.dist.clone());
    let kappa_coef = params.dt / params.density;

    // Edge stage (parallel map + order-fixed scatter, as in
    // `fill_momentum`).
    let coeffs: Vec<[f64; 4]> = owned_edges
        .par_iter()
        .map(|&e| {
            let kappa = kappa_coef * mesh.edges[e].area_over_dist;
            [kappa, -kappa, kappa, -kappa]
        })
        .collect();
    vals.scatter_edges(&graph.scatter, coeffs.as_flattened());

    // Divergence of the provisional velocity through each dual face.
    let fluxes: Vec<f64> = owned_edges
        .par_iter()
        .map(|&e| {
            let edge = &mesh.edges[e];
            let (a, b) = (edge.a, edge.b);
            let uface = [
                0.5 * (state.vel[a][0] + state.vel[b][0]),
                0.5 * (state.vel[a][1] + state.vel[b][1]),
                0.5 * (state.vel[a][2] + state.vel[b][2]),
            ];
            dot3(edge.area_vec, uface)
        })
        .collect();
    for (k, &e) in owned_edges.iter().enumerate() {
        let edge = &mesh.edges[e];
        if !graph.dirichlet[edge.a] {
            rhs.add_value(dm.gid[edge.a], -fluxes[k]);
        }
        if !graph.dirichlet[edge.b] {
            rhs.add_value(dm.gid[edge.b], fluxes[k]);
        }
    }

    // Node loop: Dirichlet rows (outflow reference, fringe, hole).
    for (k, &n) in owned_nodes.iter().enumerate() {
        if graph.dirichlet[n] {
            vals.set(graph.diag_slots[k], 1.0);
            let v = match tags[n] {
                BcTag::Outflow => 0.0,
                _ => state.dp[n], // fringe interpolant / frozen hole
            };
            rhs.add_value(dm.gid[n], v);
        }
    }

    // Open-boundary divergence fluxes (inflow, outflow, wall) so that a
    // divergence-free field yields a zero RHS.
    for patch in &mesh.boundaries {
        if !matches!(patch.kind, BcKind::Inflow | BcKind::Outflow | BcKind::Wall) {
            continue;
        }
        for (&n, &an) in patch.nodes.iter().zip(&patch.normals) {
            // Only the owner assembles the node's boundary flux.
            if graph.dirichlet[n] || dm.owner[n] != rank.rank() {
                continue;
            }
            rhs.add_value(dm.gid[n], -dot3(an, state.vel[n]));
        }
    }

    let work = (owned_edges.len() * 10 + owned_nodes.len() * 4) as u64;
    rank.kernel(KernelKind::Stream, work * 8, work * 3);
    rhs
}

/// Stage 2 for the scalar (turbulent viscosity) transport system.
#[allow(clippy::too_many_arguments)]
pub fn fill_scalar(
    rank: &Rank,
    mesh: &Mesh,
    dm: &DofMap,
    graph: &EquationGraph,
    tags: &[BcTag],
    state: &State,
    params: &PhysicsParams,
    owned_edges: &[usize],
    owned_nodes: &[usize],
    vals: &mut LocalValues,
) -> IjVector {
    vals.reset();
    let mut rhs = IjVector::new(rank, dm.dist.clone());
    let rho = params.density;

    // Edge stage (parallel map + order-fixed scatter, as in
    // `fill_momentum`).
    let coeffs: Vec<[f64; 4]> = owned_edges
        .par_iter()
        .map(|&e| {
            let edge = &mesh.edges[e];
            let (a, b) = (edge.a, edge.b);
            let gamma = params.viscosity + rho * 0.5 * (state.nut[a] + state.nut[b]);
            let uface = [
                0.5 * (state.vel[a][0] + state.vel[b][0]),
                0.5 * (state.vel[a][1] + state.vel[b][1]),
                0.5 * (state.vel[a][2] + state.vel[b][2]),
            ];
            let mdot = rho * dot3(edge.area_vec, uface);
            let dterm = gamma * edge.area_over_dist;
            [
                mdot.max(0.0) + dterm,
                mdot.min(0.0) - dterm,
                -mdot.min(0.0) + dterm,
                -mdot.max(0.0) - dterm,
            ]
        })
        .collect();
    vals.scatter_edges(&graph.scatter, coeffs.as_flattened());
    for (k, &n) in owned_nodes.iter().enumerate() {
        let slot = graph.diag_slots[k];
        if graph.dirichlet[n] {
            vals.set(slot, 1.0);
            let v = match tags[n] {
                BcTag::Inflow => params.nut_inflow,
                BcTag::Wall => 0.0,
                _ => state.nut[n],
            };
            rhs.add_value(dm.gid[n], v);
        } else {
            let tcoef = rho * mesh.node_volume[n] / params.dt;
            vals.add(slot, tcoef);
            rhs.add_value(dm.gid[n], tcoef * state.nut_old[n]);
        }
    }
    add_outflow_diag(mesh, dm, graph, state, rho, owned_nodes, vals);

    let work = (owned_edges.len() * 12 + owned_nodes.len() * 4) as u64;
    rank.kernel(KernelKind::Stream, work * 8, work * 3);
    rhs
}

/// Stage 3: inject the pattern + values into the IJ interface and run the
/// Algorithm-1 global assembly. Collective.
pub fn build_matrix(
    rank: &Rank,
    dm: &DofMap,
    graph: &EquationGraph,
    vals: &LocalValues,
) -> ParCsr {
    try_build_matrix(rank, dm, graph, vals).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible stage-3 assembly: exchange failures and injected coefficient
/// corruption surface as [`resilience::SolveError`] instead of panicking.
pub fn try_build_matrix(
    rank: &Rank,
    dm: &DofMap,
    graph: &EquationGraph,
    vals: &LocalValues,
) -> Result<ParCsr, resilience::SolveError> {
    telemetry::counter(
        "assembly.matrix_entries",
        (graph.owned.len() + graph.shared.len()) as u64,
    );
    telemetry::counter("assembly.shared_entries", graph.shared.len() as u64);
    let mut ij = IjMatrix::new(rank, dm.dist.clone(), dm.dist.clone());
    for (&(r, c), &v) in graph.owned.iter().zip(&vals.owned) {
        ij.add_value(r, c, v);
    }
    for (&(r, c), &v) in graph.shared.iter().zip(&vals.shared) {
        ij.add_value(r, c, v);
    }
    ij.try_assemble(rank)
}

/// Projection update after the pressure solve: `u ← u − (dt/ρ)∇(δp)` on
/// interior nodes and `p ← p + δp` (replicated state: plain loops).
pub fn correct_velocity(
    mesh: &Mesh,
    tags: &[BcTag],
    state: &mut State,
    params: &PhysicsParams,
    mom_dirichlet: &[bool],
) {
    let n = mesh.n_nodes();
    let mut grad = vec![[0.0f64; 3]; n];
    for edge in &mesh.edges {
        let pface = 0.5 * (state.dp[edge.a] + state.dp[edge.b]);
        for (c, &av) in edge.area_vec.iter().enumerate() {
            grad[edge.a][c] += av * pface;
            grad[edge.b][c] -= av * pface;
        }
    }
    // Close the dual surfaces at the domain boundary (Green-Gauss needs a
    // closed surface: a constant field must have zero gradient).
    for patch in &mesh.boundaries {
        for (&node, an) in patch.nodes.iter().zip(&patch.normals) {
            for (c, &anc) in an.iter().enumerate() {
                grad[node][c] += anc * state.dp[node];
            }
        }
    }
    let coef = params.dt / params.density;
    for i in 0..n {
        if tags[i] == BcTag::Hole {
            continue;
        }
        if !mom_dirichlet[i] {
            for (c, &gc) in grad[i].iter().enumerate() {
                state.vel[i][c] -= coef * gc / mesh.node_volume[i];
            }
        }
        state.p[i] += state.dp[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dofmap::PartitionMethod;
    use crate::graph::{classify_nodes, dirichlet_momentum, dirichlet_pressure, EquationGraph};
    use parcomm::Comm;
    use windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

    struct Setup {
        mesh: Mesh,
        dm: DofMap,
        tags: Vec<BcTag>,
        owned_edges: Vec<usize>,
        owned_nodes: Vec<usize>,
    }

    fn setup(me: usize, nparts: usize) -> Setup {
        let mesh = box_mesh(
            uniform_spacing(0.0, 4.0, 5),
            uniform_spacing(0.0, 2.0, 4),
            uniform_spacing(0.0, 2.0, 4),
            BoxBc::wind_tunnel(),
        );
        let dm = DofMap::build(&mesh, nparts, PartitionMethod::Rcb, 0);
        let tags = classify_nodes(&mesh);
        let owned_edges: Vec<usize> = (0..mesh.edges.len())
            .filter(|&e| dm.owner[mesh.edges[e].a] == me)
            .collect();
        let owned_nodes = dm.owned_nodes(me);
        Setup {
            mesh,
            dm,
            tags,
            owned_edges,
            owned_nodes,
        }
    }

    #[test]
    fn uniform_flow_is_momentum_steady_state() {
        // With u = (u_in, 0, 0) everywhere and p = 0, the assembled
        // momentum system must be satisfied by the current velocity:
        // A·u = b exactly (uniform flow is a steady solution).
        Comm::run(2, |rank| {
            let s = setup(rank.rank(), 2);
            let params = PhysicsParams::default();
            let state = State::cold_start(s.mesh.n_nodes(), params.u_inflow, params.nut_inflow);
            let dir = dirichlet_momentum(&s.tags);
            let g = EquationGraph::build(&s.mesh, &s.dm, rank.rank(), dir, &s.owned_edges, &s.owned_nodes);
            let mut vals = LocalValues::zeros(&g);
            let rhs = fill_momentum(
                rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                &s.owned_edges, &s.owned_nodes, &mut vals,
            );
            let a = build_matrix(rank, &s.dm, &g, &vals);
            let [bx, by, bz] = rhs;
            let bx = bx.assemble(rank).to_serial(rank);
            let by = by.assemble(rank).to_serial(rank);
            let bz = bz.assemble(rank).to_serial(rank);
            let a_serial = a.to_serial(rank);
            // u (in global numbering) = u_inflow everywhere.
            let n = s.mesh.n_nodes();
            let ux = vec![params.u_inflow; n];
            let res = a_serial.spmv(&ux);
            for i in 0..n {
                assert!(
                    (res[i] - bx[i]).abs() < 1e-9 * (1.0 + bx[i].abs()),
                    "x-momentum row {i}: {} vs {}",
                    res[i],
                    bx[i]
                );
            }
            // y and z momenta: A·0 == b must give b == 0.
            for i in 0..n {
                assert!(by[i].abs() < 1e-10, "y rhs {i} = {}", by[i]);
                assert!(bz[i].abs() < 1e-10, "z rhs {i} = {}", bz[i]);
            }
        });
    }

    #[test]
    fn uniform_flow_has_zero_divergence_rhs() {
        Comm::run(2, |rank| {
            let s = setup(rank.rank(), 2);
            let params = PhysicsParams::default();
            let state = State::cold_start(s.mesh.n_nodes(), params.u_inflow, params.nut_inflow);
            let dir = dirichlet_pressure(&s.tags);
            let g = EquationGraph::build(&s.mesh, &s.dm, rank.rank(), dir, &s.owned_edges, &s.owned_nodes);
            let mut vals = LocalValues::zeros(&g);
            let rhs = fill_continuity(
                rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                &s.owned_edges, &s.owned_nodes, &mut vals,
            );
            let b = rhs.assemble(rank).to_serial(rank);
            for (i, v) in b.iter().enumerate() {
                assert!(v.abs() < 1e-10, "divergence rhs {i} = {v}");
            }
        });
    }

    #[test]
    fn pressure_matrix_is_symmetric_m_matrix_inside() {
        Comm::run(1, |rank| {
            let s = setup(0, 1);
            let params = PhysicsParams::default();
            let state = State::cold_start(s.mesh.n_nodes(), params.u_inflow, 0.0);
            let dir = dirichlet_pressure(&s.tags);
            let g = EquationGraph::build(&s.mesh, &s.dm, 0, dir.clone(), &s.owned_edges, &s.owned_nodes);
            let mut vals = LocalValues::zeros(&g);
            let _ = fill_continuity(
                rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                &s.owned_edges, &s.owned_nodes, &mut vals,
            );
            let a = build_matrix(rank, &s.dm, &g, &vals).to_serial(rank);
            for i in 0..a.nrows() {
                let gi = s.dm.gid.iter().position(|&x| x == i as u64).unwrap();
                if dir[gi] {
                    continue;
                }
                let (cols, v) = a.row(i);
                for (&c, &val) in cols.iter().zip(v) {
                    if c == i {
                        assert!(val > 0.0, "diagonal must be positive");
                    } else {
                        assert!(val <= 0.0, "off-diagonal must be ≤ 0");
                        // Symmetric partner exists when both rows interior.
                        let gj = s.dm.gid.iter().position(|&x| x == c as u64).unwrap();
                        if !dir[gj] {
                            assert!((a.get(c, i) - val).abs() < 1e-12);
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn correction_zeroes_uniform_dp_gradient() {
        // A constant pressure correction has zero gradient: velocity
        // unchanged, pressure incremented.
        let s = setup(0, 1);
        let params = PhysicsParams::default();
        let mut state = State::cold_start(s.mesh.n_nodes(), 3.0, 0.0);
        for v in &mut state.dp {
            *v = 7.5;
        }
        let dir = dirichlet_momentum(&s.tags);
        let vel0 = state.vel.clone();
        correct_velocity(&s.mesh, &s.tags, &mut state, &params, &dir);
        for (i, v0) in vel0.iter().enumerate() {
            assert_eq!(state.vel[i], *v0, "constant dp moved velocity");
            assert!((state.p[i] - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn dirichlet_rows_are_identity_with_bc_values() {
        Comm::run(1, |rank| {
            let s = setup(0, 1);
            let params = PhysicsParams::default();
            let state = State::cold_start(s.mesh.n_nodes(), params.u_inflow, params.nut_inflow);
            let dir = dirichlet_momentum(&s.tags);
            let g = EquationGraph::build(&s.mesh, &s.dm, 0, dir.clone(), &s.owned_edges, &s.owned_nodes);
            let mut vals = LocalValues::zeros(&g);
            let rhs = fill_momentum(
                rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                &s.owned_edges, &s.owned_nodes, &mut vals,
            );
            let a = build_matrix(rank, &s.dm, &g, &vals).to_serial(rank);
            let [bx, _, _] = rhs;
            let bx = bx.assemble(rank).to_serial(rank);
            for (n, &dn) in dir.iter().enumerate() {
                if dn {
                    let gi = s.dm.gid[n] as usize;
                    let (cols, v) = a.row(gi);
                    assert_eq!(cols, &[gi]);
                    assert_eq!(v, &[1.0]);
                    if s.tags[n] == BcTag::Inflow {
                        assert_eq!(bx[gi], params.u_inflow);
                    }
                }
            }
        });
    }

    #[test]
    fn scalar_system_solves_to_freestream() {
        // Uniform advection of nut with uniform inflow: the assembled
        // system is satisfied by the freestream value.
        Comm::run(1, |rank| {
            let s = setup(0, 1);
            let params = PhysicsParams::default();
            let state = State::cold_start(s.mesh.n_nodes(), params.u_inflow, params.nut_inflow);
            let dir = dirichlet_momentum(&s.tags);
            let g = EquationGraph::build(&s.mesh, &s.dm, 0, dir, &s.owned_edges, &s.owned_nodes);
            let mut vals = LocalValues::zeros(&g);
            let rhs = fill_scalar(
                rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                &s.owned_edges, &s.owned_nodes, &mut vals,
            );
            let a = build_matrix(rank, &s.dm, &g, &vals).to_serial(rank);
            let b = rhs.assemble(rank).to_serial(rank);
            let n = s.mesh.n_nodes();
            let x = vec![params.nut_inflow; n];
            let res = a.spmv(&x);
            for i in 0..n {
                assert!(
                    (res[i] - b[i]).abs() < 1e-9 * (1.0 + b[i].abs()),
                    "scalar row {i}"
                );
            }
        });
    }

    #[test]
    fn assembly_identical_across_rank_counts() {
        let mut gathered: Vec<(Vec<Vec<f64>>, Vec<f64>)> = Vec::new();
        for p in [1, 2, 3] {
            let out = Comm::run(p, move |rank| {
                let s = setup(rank.rank(), rank.size());
                let params = PhysicsParams::default();
                let mut state =
                    State::cold_start(s.mesh.n_nodes(), params.u_inflow, params.nut_inflow);
                // Perturb the state deterministically so the matrix is
                // nontrivial.
                for (i, v) in state.vel.iter_mut().enumerate() {
                    v[1] = (i as f64 * 0.37).sin();
                    v[2] = (i as f64 * 0.11).cos() * 0.5;
                }
                let dir = dirichlet_momentum(&s.tags);
                let g = EquationGraph::build(
                    &s.mesh, &s.dm, rank.rank(), dir, &s.owned_edges, &s.owned_nodes,
                );
                let mut vals = LocalValues::zeros(&g);
                let rhs = fill_momentum(
                    rank, &s.mesh, &s.dm, &g, &s.tags, &state, &params,
                    &s.owned_edges, &s.owned_nodes, &mut vals,
                );
                let a = build_matrix(rank, &s.dm, &g, &vals).to_serial(rank);
                let [bx, _, _] = rhs;
                let bx = bx.assemble(rank).to_serial(rank);
                // Convert to node ordering (gid-independent comparison).
                let n = s.mesh.n_nodes();
                let mut dense = vec![vec![0.0; n]; n];
                for (i, row) in dense.iter_mut().enumerate() {
                    for (j, dij) in row.iter_mut().enumerate() {
                        *dij = a.get(s.dm.gid[i] as usize, s.dm.gid[j] as usize);
                    }
                }
                let b_nodes: Vec<f64> = (0..n).map(|i| bx[s.dm.gid[i] as usize]).collect();
                (dense, b_nodes)
            });
            gathered.push(out[0].clone());
        }
        for (dense, b) in &gathered[1..] {
            for (ra, rb) in dense.iter().zip(&gathered[0].0) {
                for (x, y) in ra.iter().zip(rb) {
                    assert!((x - y).abs() < 1e-12, "matrix differs across rank counts");
                }
            }
            for (x, y) in b.iter().zip(&gathered[0].1) {
                assert!((x - y).abs() < 1e-12, "rhs differs across rank counts");
            }
        }
    }
}
