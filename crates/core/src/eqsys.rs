//! Per-mesh equation-system bookkeeping.

use crate::dofmap::{DofMap, PartitionMethod};
use crate::graph::{
    classify_nodes, dirichlet_momentum, dirichlet_pressure, BcTag, EquationGraph, LocalValues,
};
use windmesh::Mesh;

/// The three governing-equation systems of the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EqKind {
    /// Helmholtz-type momentum transport (3 RHS).
    Momentum,
    /// Pressure-Poisson continuity projection.
    Continuity,
    /// Turbulent-viscosity scalar transport.
    Scalar,
}

impl EqKind {
    /// All systems, in solve order.
    pub const ALL: [EqKind; 3] = [EqKind::Momentum, EqKind::Continuity, EqKind::Scalar];

    /// Equation-system name used in reports (matches the paper's).
    pub fn name(self) -> &'static str {
        match self {
            EqKind::Momentum => "momentum",
            EqKind::Continuity => "continuity",
            EqKind::Scalar => "scalar",
        }
    }
}

/// Graphs and value buffers for one mesh, rebuilt whenever connectivity
/// changes (mesh motion / overset updates).
#[derive(Clone, Debug)]
pub struct Graphs {
    /// Momentum/scalar share a Dirichlet mask and hence a pattern shape,
    /// but are kept separate (hypre builds one IJ matrix per system).
    pub momentum: EquationGraph,
    /// Continuity pattern.
    pub continuity: EquationGraph,
    /// Scalar pattern.
    pub scalar: EquationGraph,
    /// Value buffers matching each pattern.
    pub mom_vals: LocalValues,
    /// Continuity values.
    pub con_vals: LocalValues,
    /// Scalar values.
    pub sca_vals: LocalValues,
}

/// Partition, numbering, and graphs of one overset mesh on one rank.
#[derive(Clone, Debug)]
pub struct MeshSystem {
    /// DoF map (partition + renumbering).
    pub dm: DofMap,
    /// Node classification for the current connectivity.
    pub tags: Vec<BcTag>,
    /// Edges assembled by this rank (first endpoint owned).
    pub owned_edges: Vec<usize>,
    /// Nodes owned by this rank, ascending global id.
    pub owned_nodes: Vec<usize>,
    /// Inverse of `dm.gid`: node index of each global id.
    pub node_of_gid: Vec<usize>,
    /// Current graphs (absent before the first rebuild).
    pub graphs: Option<Graphs>,
}

impl MeshSystem {
    /// Partition `mesh` and set up the rank-local structures.
    pub fn new(
        mesh: &Mesh,
        nparts: usize,
        method: PartitionMethod,
        seed: u64,
        me: usize,
    ) -> MeshSystem {
        let dm = DofMap::build(mesh, nparts, method, seed);
        let owned_edges: Vec<usize> = (0..mesh.edges.len())
            .filter(|&e| dm.owner[mesh.edges[e].a] == me)
            .collect();
        let owned_nodes = dm.owned_nodes(me);
        let mut node_of_gid = vec![0usize; mesh.n_nodes()];
        for (node, &g) in dm.gid.iter().enumerate() {
            node_of_gid[g as usize] = node;
        }
        MeshSystem {
            dm,
            tags: classify_nodes(mesh),
            owned_edges,
            owned_nodes,
            node_of_gid,
            graphs: None,
        }
    }

    /// Stage 1 for all three systems: reclassify nodes and recompute the
    /// exact sparsity patterns + write slots.
    pub fn rebuild_graphs(&mut self, mesh: &Mesh, me: usize) {
        self.tags = classify_nodes(mesh);
        let mom_dir = dirichlet_momentum(&self.tags);
        let pre_dir = dirichlet_pressure(&self.tags);
        let momentum = EquationGraph::build(
            mesh,
            &self.dm,
            me,
            mom_dir.clone(),
            &self.owned_edges,
            &self.owned_nodes,
        );
        let continuity = EquationGraph::build(
            mesh,
            &self.dm,
            me,
            pre_dir,
            &self.owned_edges,
            &self.owned_nodes,
        );
        let scalar = EquationGraph::build(
            mesh,
            &self.dm,
            me,
            mom_dir,
            &self.owned_edges,
            &self.owned_nodes,
        );
        let mom_vals = LocalValues::zeros(&momentum);
        let con_vals = LocalValues::zeros(&continuity);
        let sca_vals = LocalValues::zeros(&scalar);
        self.graphs = Some(Graphs {
            momentum,
            continuity,
            scalar,
            mom_vals,
            con_vals,
            sca_vals,
        });
    }

    /// Per-rank nonzero count of the continuity pattern (the statistic of
    /// the paper's Figures 5 and 10).
    pub fn pressure_nnz_local(&self) -> usize {
        self.graphs
            .as_ref()
            .map(|g| g.continuity.owned.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windmesh::generate::{box_mesh, uniform_spacing, BoxBc};

    fn mesh() -> Mesh {
        box_mesh(
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            BoxBc::wind_tunnel(),
        )
    }

    #[test]
    fn eq_names_match_paper() {
        assert_eq!(EqKind::Momentum.name(), "momentum");
        assert_eq!(EqKind::Continuity.name(), "continuity");
        assert_eq!(EqKind::Scalar.name(), "scalar");
        assert_eq!(EqKind::ALL.len(), 3);
    }

    #[test]
    fn rebuild_creates_all_graphs() {
        let m = mesh();
        let mut sys = MeshSystem::new(&m, 2, PartitionMethod::Rcb, 0, 0);
        assert!(sys.graphs.is_none());
        sys.rebuild_graphs(&m, 0);
        let g = sys.graphs.as_ref().unwrap();
        assert!(!g.momentum.owned.is_empty());
        assert!(!g.continuity.owned.is_empty());
        // Momentum and continuity differ (different Dirichlet sets —
        // compare contents, sizes can coincide on symmetric boxes).
        assert_ne!(g.momentum.owned, g.continuity.owned);
        assert!(sys.pressure_nnz_local() > 0);
    }

    #[test]
    fn node_of_gid_is_inverse() {
        let m = mesh();
        let sys = MeshSystem::new(&m, 3, PartitionMethod::Multilevel, 1, 1);
        for node in 0..m.n_nodes() {
            assert_eq!(sys.node_of_gid[sys.dm.gid[node] as usize], node);
        }
    }

    #[test]
    fn owned_sets_partition_work() {
        let m = mesh();
        let mut edge_total = 0;
        let mut node_total = 0;
        for me in 0..3 {
            let sys = MeshSystem::new(&m, 3, PartitionMethod::Rcb, 0, me);
            edge_total += sys.owned_edges.len();
            node_total += sys.owned_nodes.len();
        }
        assert_eq!(edge_total, m.edges.len());
        assert_eq!(node_total, m.n_nodes());
    }
}
