//! Flow state per mesh and overset fringe updates.
//!
//! States are replicated on every rank (the linear *solves* are
//! distributed; see DESIGN.md for this simplification), so fringe
//! interpolation and velocity correction are plain local loops.

use windmesh::{Mesh, NodeStatus, OversetAssembly};

/// Flow variables of one mesh, node-indexed.
#[derive(Clone, Debug)]
pub struct State {
    /// Velocity at the current time level / Picard iterate.
    pub vel: Vec<[f64; 3]>,
    /// Velocity at the previous time level.
    pub vel_old: Vec<[f64; 3]>,
    /// Pressure.
    pub p: Vec<f64>,
    /// Latest pressure correction (used for overset p-coupling).
    pub dp: Vec<f64>,
    /// Transported turbulent viscosity.
    pub nut: Vec<f64>,
    /// Previous time level of `nut`.
    pub nut_old: Vec<f64>,
}

impl State {
    /// Cold start: uniform axial inflow velocity and freestream `nut`.
    pub fn cold_start(n: usize, u_inflow: f64, nut_inflow: f64) -> Self {
        State {
            vel: vec![[u_inflow, 0.0, 0.0]; n],
            vel_old: vec![[u_inflow, 0.0, 0.0]; n],
            p: vec![0.0; n],
            dp: vec![0.0; n],
            nut: vec![nut_inflow; n],
            nut_old: vec![nut_inflow; n],
        }
    }

    /// Commit the current iterate as the previous time level.
    pub fn advance_time(&mut self) {
        self.vel_old.copy_from_slice(&self.vel);
        self.nut_old.copy_from_slice(&self.nut);
    }
}

/// Velocity of a rotor wall node rotating at `omega` rad/s about the +x
/// axis through `center`: Ω × r.
pub fn wall_velocity(coord: [f64; 3], center: [f64; 3], omega: f64) -> [f64; 3] {
    let dy = coord[1] - center[1];
    let dz = coord[2] - center[2];
    [0.0, -omega * dz, omega * dy]
}

/// Interpolate a donor-mesh nodal field at a receptor.
fn interp(field: &[f64], nodes: &[usize; 8], w: &[f64; 8]) -> f64 {
    nodes.iter().zip(w).map(|(&n, &wt)| field[n] * wt).sum()
}

fn interp3(field: &[[f64; 3]], nodes: &[usize; 8], w: &[f64; 8]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (&n, &wt) in nodes.iter().zip(w) {
        for d in 0..3 {
            out[d] += field[n][d] * wt;
        }
    }
    out
}

/// Additive-Schwarz outer coupling: overwrite fringe-node values of every
/// mesh with donor-mesh interpolants (velocity, pressure correction,
/// scalar). Called once per Picard iteration.
pub fn overset_exchange(states: &mut [State], meshes: &[Mesh], overset: &OversetAssembly) {
    // Two passes: interpolate everything from a consistent snapshot, then
    // write — receptor updates must not contaminate other receptors whose
    // donor cells touch fringe nodes.
    let updates: Vec<(usize, usize, [f64; 3], f64, f64, f64)> = overset
        .receptors
        .iter()
        .map(|r| {
            debug_assert_eq!(meshes[r.mesh].status[r.node], NodeStatus::Fringe);
            let vel = interp3(&states[r.donor_mesh].vel, &r.donor_nodes, &r.weights);
            let dp = interp(&states[r.donor_mesh].dp, &r.donor_nodes, &r.weights);
            let p = interp(&states[r.donor_mesh].p, &r.donor_nodes, &r.weights);
            let nut = interp(&states[r.donor_mesh].nut, &r.donor_nodes, &r.weights);
            (r.mesh, r.node, vel, dp, p, nut)
        })
        .collect();
    for (mesh, node, vel, dp, p, nut) in updates {
        let st = &mut states[mesh];
        st.vel[node] = vel;
        st.dp[node] = dp;
        st.p[node] = p;
        st.nut[node] = nut;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windmesh::generate::{annulus_mesh, box_mesh, uniform_spacing, BoxBc};
    use windmesh::overset::assemble_overset;

    #[test]
    fn cold_start_is_uniform() {
        let s = State::cold_start(4, 8.0, 1e-4);
        assert!(s.vel.iter().all(|v| *v == [8.0, 0.0, 0.0]));
        assert!(s.p.iter().all(|&p| p == 0.0));
        assert!(s.nut.iter().all(|&v| v == 1e-4));
    }

    #[test]
    fn advance_time_commits() {
        let mut s = State::cold_start(2, 1.0, 0.0);
        s.vel[0] = [2.0, 0.0, 0.0];
        s.nut[1] = 0.5;
        s.advance_time();
        assert_eq!(s.vel_old[0], [2.0, 0.0, 0.0]);
        assert_eq!(s.nut_old[1], 0.5);
    }

    #[test]
    fn wall_velocity_is_tangential() {
        let v = wall_velocity([0.0, 2.0, 0.0], [0.0, 0.0, 0.0], 3.0);
        assert_eq!(v, [0.0, 0.0, 6.0]);
        // Ω×r ⟂ r.
        let v2 = wall_velocity([0.0, 1.0, 1.0], [0.0, 0.0, 0.0], 2.0);
        assert!((v2[1] * 1.0 + v2[2] * 1.0).abs() < 1e-14);
    }

    #[test]
    fn overset_exchange_transfers_uniform_fields_exactly() {
        let background = box_mesh(
            uniform_spacing(-2.0, 2.0, 13),
            uniform_spacing(-2.0, 2.0, 13),
            uniform_spacing(-2.0, 2.0, 13),
            BoxBc::wind_tunnel(),
        );
        let rotor = annulus_mesh(
            uniform_spacing(-0.5, 0.5, 5),
            uniform_spacing(0.2, 1.0, 6),
            16,
            [0.0, 0.0, 0.0],
        );
        let mut meshes = vec![background, rotor];
        let overset = assemble_overset(&mut meshes, 0.2);
        let mut states = vec![
            State::cold_start(meshes[0].n_nodes(), 8.0, 1e-3),
            State::cold_start(meshes[1].n_nodes(), 0.0, 0.0),
        ];
        // Rotor fringe pulls the background's uniform state exactly
        // (trilinear weights are a partition of unity).
        overset_exchange(&mut states, &meshes, &overset);
        for r in overset.receptors_of(1) {
            assert!((states[1].vel[r.node][0] - 8.0).abs() < 1e-12);
            assert!((states[1].nut[r.node] - 1e-3).abs() < 1e-12);
        }
        // Background fringe pulled rotor values (zeros).
        for r in overset.receptors_of(0) {
            assert_eq!(states[0].vel[r.node], [0.0, 0.0, 0.0]);
        }
    }
}
