//! Nalu-Wind-style incompressible-flow solver — the paper's application
//! layer.
//!
//! A node-centered, edge-based finite-volume discretization of the
//! incompressible Navier-Stokes equations on the unstructured overset
//! meshes of [`windmesh`]:
//!
//! - **momentum**: Helmholtz-type advection-diffusion systems (one matrix,
//!   three right-hand sides), preconditioned with the compact two-stage
//!   symmetric Gauss-Seidel (SGS2) of §4.2;
//! - **continuity**: the pressure-Poisson projection, preconditioned with
//!   BoomerAMG-style AMG (aggressive first levels + MM-ext second-stage
//!   interpolation, §4.1);
//! - **scalar transport**: a turbulent-viscosity transport proxy with the
//!   same operator structure as momentum.
//!
//! Every linear system is built with the paper's three-stage pipeline
//! (§3): *graph computation* (exact sparsity + precomputed write slots),
//! *local assembly* (data-parallel fill of owned/shared COO values), and
//! *global assembly* (Algorithms 1 and 2 in [`distmat::ij`]). Overset
//! meshes are coupled by additive-Schwarz outer (Picard) iterations that
//! re-interpolate fringe values from donor meshes each pass, and rotor
//! meshes rotate rigidly between time steps with connectivity updates.
//!
//! Per-equation, per-phase wall-clock timings and operation traces are
//! collected for the paper's Figure 3/6/7/8/9/11 reproductions.

pub mod assemble;
pub mod dofmap;
pub mod eqsys;
pub mod graph;
pub mod sim;
pub mod state;
pub mod timing;

pub use dofmap::{DofMap, PartitionMethod};
pub use eqsys::EqKind;
pub use resilience::{FaultPlan, RecoveryAction, RecoveryPolicy, RecoveryRecord, SolveError};
pub use sim::{CheckpointCfg, Simulation, SolverConfig, StepReport};
pub use timing::{Phase, Timings};
