//! Property tests for the checkpoint file codec: arbitrary solver state
//! — including NaN payloads, signed zeros, and subnormals — must
//! round-trip bit-exactly through `write_rank`/`read_rank`, and every
//! truncation or bit flip must surface as a typed [`CheckpointError`] —
//! never a panic, never a silent partial restore.

use std::path::PathBuf;

use proptest::prelude::*;
use resilience::checkpoint::{
    read_file, read_rank, rank_file, write_rank, CheckpointError, MeshCheckpoint,
    SolverCheckpoint,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "exawind-ckpt-prop-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Arbitrary `f64` bit patterns: normals, subnormals, ±0, ±inf, NaNs
/// with arbitrary payloads. The checkpoint must preserve all exactly.
fn any_f64_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        5 => proptest::num::u64::ANY,
        1 => Just(f64::NAN.to_bits()),
        1 => Just((-0.0f64).to_bits()),
        1 => Just(f64::MIN_POSITIVE.to_bits() >> 8), // subnormal
        1 => Just(f64::INFINITY.to_bits()),
    ]
}

fn field(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        any_f64_bits().prop_map(f64::from_bits),
        n..n + 1,
    )
}

/// A structurally consistent per-mesh checkpoint over `n` nodes.
fn mesh_ckpt() -> impl Strategy<Value = MeshCheckpoint> {
    (1usize..8).prop_flat_map(|n| {
        (field(3 * n), field(3 * n), field(n), field(n), field(n), field(n)).prop_map(
            |(vel, vel_old, p, dp, nut, nut_old)| MeshCheckpoint {
                vel,
                vel_old,
                p,
                dp,
                nut,
                nut_old,
            },
        )
    })
}

fn solver_ckpt() -> impl Strategy<Value = SolverCheckpoint> {
    (
        0u64..1000,
        proptest::collection::vec(mesh_ckpt(), 1..3),
        proptest::collection::vec(
            (proptest::collection::vec(proptest::num::u8::ANY, 0..12), any_f64_bits()),
            0..4,
        ),
        proptest::collection::vec((proptest::num::u64::ANY, proptest::num::u64::ANY), 0..4),
        proptest::collection::vec((0u64..4, proptest::num::u64::ANY), 0..3),
    )
        .prop_map(|(step, meshes, rels, counters, plans)| SolverCheckpoint {
            step,
            meshes,
            final_rels: rels.into_iter().map(|(k, v)| (k, f64::from_bits(v))).collect(),
            fault_counters: counters,
            amg_plans: plans,
        })
}

/// Bit patterns of every float field, in serialization order — the
/// equality that matters (`==` on f64 conflates NaNs and signed zeros).
fn all_bits(ck: &SolverCheckpoint) -> Vec<u64> {
    let mut out = Vec::new();
    for m in &ck.meshes {
        for f in [&m.vel, &m.vel_old, &m.p, &m.dp, &m.nut, &m.nut_old] {
            out.extend(f.iter().map(|x| x.to_bits()));
        }
    }
    out.extend(ck.final_rels.iter().map(|(_, v)| v.to_bits()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpoints_round_trip_bitwise(ck in solver_ckpt()) {
        let dir = tmpdir("roundtrip");
        write_rank(&dir, 1, 3, ck.step + 1, &ck).unwrap();
        let back = read_rank(&dir, 1, 3, ck.step + 1).unwrap();
        prop_assert_eq!(back.step, ck.step);
        prop_assert_eq!(all_bits(&back), all_bits(&ck));
        prop_assert_eq!(
            back.final_rels.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            ck.final_rels.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
        prop_assert_eq!(back.fault_counters, ck.fault_counters);
        prop_assert_eq!(back.amg_plans, ck.amg_plans);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        (ck, cut_frac) in (solver_ckpt(), 0.0f64..1.0)
    ) {
        let dir = tmpdir("trunc");
        write_rank(&dir, 0, 1, ck.step + 1, &ck).unwrap();
        let path = rank_file(&dir, ck.step + 1, 0);
        let good = std::fs::read(&path).unwrap();
        // Cut strictly inside the file: every prefix must read as
        // Truncated, never a panic, never a partial decode.
        let cut = ((good.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &good[..cut]).unwrap();
        let res = read_file(&path, None);
        prop_assert!(
            matches!(res, Err(CheckpointError::Truncated { .. })),
            "cut at {} of {}: {:?}", cut, good.len(), res
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_bit_flip_is_a_typed_error(
        (ck, byte_frac, bit) in (solver_ckpt(), 0.0f64..1.0, 0u8..8)
    ) {
        let dir = tmpdir("flip");
        write_rank(&dir, 0, 1, ck.step + 1, &ck).unwrap();
        let path = rank_file(&dir, ck.step + 1, 0);
        let good = std::fs::read(&path).unwrap();
        let byte = ((good.len() - 1) as f64 * byte_frac) as usize;
        let mut bad = good.clone();
        bad[byte] ^= 1 << bit;
        std::fs::write(&path, &bad).unwrap();
        // A flip in the version word reads as VersionMismatch (checked
        // before the header checksum so a future format is named, not
        // called corrupt); everywhere else a checksum catches it.
        let res = read_file(&path, None);
        prop_assert!(
            matches!(
                res,
                Err(CheckpointError::Corrupt(_) | CheckpointError::VersionMismatch { .. })
            ),
            "flip bit {} of byte {} (len {}): {:?}", bit, byte, good.len(), res
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
