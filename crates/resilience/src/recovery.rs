//! The bounded recovery escalation ladder walked by the Picard driver.
//!
//! On a [`SolveError`](crate::SolveError) the driver retries the failed
//! equation solve, escalating one rung per attempt:
//!
//! 1. [`Rebuild`](RecoveryAction::Rebuild) — re-run assembly and (for
//!    preconditioned solves) rebuild the AMG hierarchy from scratch.
//!    Clears transient corruption: a flipped halo payload or a
//!    corrupted COO triple does not survive a fresh assembly.
//! 2. [`FallbackSmoother`](RecoveryAction::FallbackSmoother) — swap the
//!    preconditioner for the cheaper, more robust rung (AMG →
//!    SGS2-smoothed fallback, SGS2 → Jacobi-Richardson), sidestepping a
//!    degenerate hierarchy.
//! 3. [`CutTimestep`](RecoveryAction::CutTimestep) — retry with the
//!    timestep scaled by [`RecoveryPolicy::dt_cut`], shrinking the
//!    advective CFL until the system is solvable.
//!
//! The ladder is bounded (one pass, no loops), every attempt emits a
//! telemetry `recovery` event, and all decisions are taken identically
//! on every rank (the triggering errors are collectively consistent),
//! so recovery is deterministic across both ranks and thread counts.

/// One rung of the escalation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-assemble the system and rebuild the preconditioner from scratch.
    Rebuild,
    /// Retry with the fallback smoother as preconditioner.
    FallbackSmoother,
    /// Retry with the timestep scaled down by `RecoveryPolicy::dt_cut`.
    CutTimestep,
}

impl RecoveryAction {
    /// The full ladder, in escalation order.
    pub const LADDER: [RecoveryAction; 3] = [
        RecoveryAction::Rebuild,
        RecoveryAction::FallbackSmoother,
        RecoveryAction::CutTimestep,
    ];

    /// Stable machine-readable label, used in telemetry `recovery` events.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::Rebuild => "rebuild",
            RecoveryAction::FallbackSmoother => "fallback_smoother",
            RecoveryAction::CutTimestep => "cut_timestep",
        }
    }
}

/// How far the driver escalates before giving up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch; disabled means the first [`SolveError`](crate::SolveError)
    /// aborts the step.
    pub enabled: bool,
    /// Rungs of [`RecoveryAction::LADDER`] the driver may climb
    /// (clamped to the ladder length).
    pub max_attempts: usize,
    /// Timestep scale factor applied by [`RecoveryAction::CutTimestep`].
    pub dt_cut: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_attempts: RecoveryAction::LADDER.len(),
            dt_cut: 0.5,
        }
    }
}

impl RecoveryPolicy {
    /// The ladder this policy allows, in escalation order.
    pub fn ladder(&self) -> &'static [RecoveryAction] {
        if !self.enabled {
            return &[];
        }
        let n = self.max_attempts.min(RecoveryAction::LADDER.len());
        &RecoveryAction::LADDER[..n]
    }
}

/// One recovery attempt, as reported in `StepReport` and mirrored into
/// the telemetry `recovery` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Equation whose solve failed (`continuity`, `momentum`, `scalar`).
    pub eq: String,
    /// Timestep index at failure.
    pub step: usize,
    /// [`SolveError::kind`](crate::SolveError::kind) of the triggering error.
    pub fault: String,
    /// Human-readable detail (the error's `Display`).
    pub detail: String,
    /// [`RecoveryAction::label`] taken for this attempt.
    pub action: String,
    /// 1-based attempt index within the ladder.
    pub attempt: usize,
    /// `"recovered"` if this attempt converged, `"retry"` if the next
    /// rung was tried, `"failed"` if the ladder was exhausted.
    pub outcome: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_respects_policy_bounds() {
        let p = RecoveryPolicy::default();
        assert_eq!(
            p.ladder(),
            &[
                RecoveryAction::Rebuild,
                RecoveryAction::FallbackSmoother,
                RecoveryAction::CutTimestep
            ]
        );
        let p = RecoveryPolicy { max_attempts: 1, ..RecoveryPolicy::default() };
        assert_eq!(p.ladder(), &[RecoveryAction::Rebuild]);
        let p = RecoveryPolicy { max_attempts: 99, ..RecoveryPolicy::default() };
        assert_eq!(p.ladder().len(), 3);
        let p = RecoveryPolicy { enabled: false, ..RecoveryPolicy::default() };
        assert!(p.ladder().is_empty());
    }

    #[test]
    fn action_labels_are_distinct() {
        let mut labels: Vec<&str> =
            RecoveryAction::LADDER.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RecoveryAction::LADDER.len());
    }
}
