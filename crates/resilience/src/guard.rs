//! Finite-value scans used at the solver's detection points.
//!
//! The scans are plain sequential loops: they run on the rank thread
//! over local data and their result feeds a collective decision (the
//! caller allreduces the count), so they must be deterministic and
//! cheap, not parallel.

/// Number of NaN/Inf entries in `vals`.
pub fn count_nonfinite(vals: &[f64]) -> u64 {
    vals.iter().filter(|v| !v.is_finite()).count() as u64
}

/// Number of NaN/Inf entries across several slices (e.g. a CSR diag +
/// offd value pair plus the right-hand side).
pub fn count_nonfinite_all(slices: &[&[f64]]) -> u64 {
    slices.iter().map(|s| count_nonfinite(s)).sum()
}

/// True iff every entry of `vals` is finite.
pub fn all_finite(vals: &[f64]) -> bool {
    vals.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_nan_and_inf() {
        let v = [1.0, f64::NAN, 2.0, f64::INFINITY, f64::NEG_INFINITY, 0.0];
        assert_eq!(count_nonfinite(&v), 3);
        assert!(!all_finite(&v));
        assert!(all_finite(&[0.0, -1.5, 1e300]));
        assert_eq!(count_nonfinite_all(&[&v, &[f64::NAN]]), 4);
        assert_eq!(count_nonfinite(&[]), 0);
    }
}
