//! Versioned, bitwise-exact checkpoint/restart.
//!
//! A checkpoint captures the complete per-rank solver state needed to
//! resume a run **bitwise identically** to one that was never
//! interrupted: the solution fields of every mesh, the step cursor, the
//! per-equation final residuals, the fault-injector occurrence counters
//! (so seeded fault windows keep advancing where they left off), and the
//! AMG plan-store metadata. Mesh *geometry* is deliberately not
//! serialized — rotor motion is a pure function of the step count, so
//! the restart path replays the same per-step rotations on the freshly
//! generated mesh, reproducing coordinates, edge area vectors, and
//! boundary normals bit for bit.
//!
//! # File format (version 1)
//!
//! One file per rank per generation, `ckpt-g<gen>-r<rank>.bin`:
//!
//! ```text
//! [ magic "EXWCKPT1" (8) | version u32 | rank u32 | size u32
//!   | generation u64 | step u64 | payload_type_id u32
//!   | payload_len u64 | payload_fnv64 u64 | header_fnv64 u64 ]
//! [ payload: SolverCheckpoint via the parcomm wire codec ]
//! ```
//!
//! All integers little-endian; floats travel as raw IEEE-754 bit
//! patterns through [`parcomm::Message`], the same codec the socket
//! transport uses — NaN payloads, signed zeros, and subnormals
//! round-trip exactly. The header carries an FNV-1a-64 checksum over its
//! own bytes and one over the payload; a truncated or bit-flipped file
//! is a typed [`CheckpointError`], never a silent partial restore.
//! Files are written to a `.tmp` sibling, fsynced, atomically renamed,
//! and the parent directory is fsynced after the rename — so neither a
//! process crash mid-write nor a whole-machine crash right after a
//! publish leaves a plausible-looking corpse or a manifest naming rank
//! files whose directory entries never became durable.
//!
//! # Manifest / generation protocol
//!
//! A generation is *complete* only when every rank's file is on disk.
//! After each rank writes its file the cohort barriers, then rank 0
//! rewrites `MANIFEST` (tmp+rename) naming the new generation. Readers
//! trust only the manifest: a crash between "some ranks wrote gen g" and
//! "manifest names g" leaves the previous generation as the newest
//! complete one, which is exactly what a restart must use. Rank 0 prunes
//! generations older than the newest [`KEEP_GENERATIONS`] after each
//! publish.

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parcomm::{Message, WireCursor};

/// Environment variable: checkpoint every N steps (0/unset = disabled).
pub const ENV_EVERY: &str = "EXAWIND_CHECKPOINT_EVERY";
/// Environment variable: directory holding checkpoint files + manifest.
pub const ENV_DIR: &str = "EXAWIND_CHECKPOINT_DIR";
/// Environment variable: set to `1` by the supervisor to request that a
/// worker resume from the newest complete generation (if any).
pub const ENV_RESUME: &str = "EXAWIND_RESUME";
/// Environment variable: incarnation count of a supervised cohort
/// (0/unset = first launch). `kill-rank` faults only fire in the first
/// incarnation, modelling a transient external kill rather than a
/// deterministic crash bug that would defeat any restart budget.
pub const ENV_RESTART_COUNT: &str = "EXAWIND_RESTART_COUNT";

/// Newest complete generations kept on disk (older ones are pruned).
pub const KEEP_GENERATIONS: usize = 2;

const MAGIC: &[u8; 8] = b"EXWCKPT1";
const VERSION: u32 = 1;
/// Fixed header length in bytes (see module docs).
const HEADER_BYTES: usize = 8 + 4 + 4 + 4 + 8 + 8 + 4 + 8 + 8 + 8;
const MANIFEST_NAME: &str = "MANIFEST";

/// 64-bit FNV-1a, the integrity hash of the checkpoint format. Stable
/// across platforms, dependency-free, and plenty for detecting the
/// torn-write / bit-rot corruption this guards against (not an
/// adversarial MAC).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a checkpoint could not be written, read, or applied. Every
/// corruption mode is a distinct typed failure so callers (and the
/// proptest suite) can pin that nothing restores partially.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem-level failure (open/read/write/rename).
    Io(String),
    /// File ends before the advertised header or payload does.
    Truncated { wanted: usize, got: usize },
    /// Structural damage: bad magic, checksum mismatch, undecodable
    /// payload, or a payload inconsistent with the live solver shape.
    Corrupt(String),
    /// A future (or garbage) format version.
    VersionMismatch { found: u32, expected: u32 },
    /// The file belongs to a different rank/cohort shape than the
    /// restore requested.
    CohortMismatch { detail: String },
    /// The armed fault plan does not match the checkpointed counters.
    PlanMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Truncated { wanted, got } => {
                write!(f, "checkpoint truncated: wanted {wanted} bytes, file has {got}")
            }
            CheckpointError::Corrupt(d) => write!(f, "checkpoint corrupt: {d}"),
            CheckpointError::VersionMismatch { found, expected } => {
                write!(f, "checkpoint version {found} (this build reads {expected})")
            }
            CheckpointError::CohortMismatch { detail } => {
                write!(f, "checkpoint cohort mismatch: {detail}")
            }
            CheckpointError::PlanMismatch(d) => write!(f, "fault-plan mismatch: {d}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Solution fields of one mesh, flattened to plain `f64` streams
/// (velocity components interleaved x,y,z per node).
#[derive(Clone, Debug, PartialEq)]
pub struct MeshCheckpoint {
    pub vel: Vec<f64>,
    pub vel_old: Vec<f64>,
    pub p: Vec<f64>,
    pub dp: Vec<f64>,
    pub nut: Vec<f64>,
    pub nut_old: Vec<f64>,
}

impl Message for MeshCheckpoint {
    fn wire_bytes(&self) -> usize {
        self.vel.wire_bytes()
            + self.vel_old.wire_bytes()
            + self.p.wire_bytes()
            + self.dp.wire_bytes()
            + self.nut.wire_bytes()
            + self.nut_old.wire_bytes()
    }
    fn wire_sig(out: &mut String) {
        out.push_str("mesh_ckpt{");
        for _ in 0..6 {
            Vec::<f64>::wire_sig(out);
            out.push(',');
        }
        out.push('}');
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.vel.encode(out);
        self.vel_old.encode(out);
        self.p.encode(out);
        self.dp.encode(out);
        self.nut.encode(out);
        self.nut_old.encode(out);
    }
    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, parcomm::WireError> {
        Ok(MeshCheckpoint {
            vel: Vec::decode(cur)?,
            vel_old: Vec::decode(cur)?,
            p: Vec::decode(cur)?,
            dp: Vec::decode(cur)?,
            nut: Vec::decode(cur)?,
            nut_old: Vec::decode(cur)?,
        })
    }
}

/// Complete per-rank solver state at a step boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverCheckpoint {
    /// Completed steps at capture time (== the generation id).
    pub step: u64,
    /// Solution fields per mesh, in mesh order.
    pub meshes: Vec<MeshCheckpoint>,
    /// Final GMRES relative residual per equation (UTF-8 name bytes).
    pub final_rels: Vec<(Vec<u8>, f64)>,
    /// Fault-injector `(hits, fired)` occurrence counters in spec order
    /// (see [`crate::faults::counters`]); empty when no plan is armed.
    pub fault_counters: Vec<(u64, u64)>,
    /// AMG plan-store metadata: `(mesh index, recorded plan count)` per
    /// mesh with a reuse store. Plans themselves are *not* serialized:
    /// numeric replay is bitwise-identical to a fresh multiply, so the
    /// restarted run re-records them with identical results; this
    /// metadata keeps the restore auditable (telemetry + report).
    pub amg_plans: Vec<(u64, u64)>,
}

impl Message for SolverCheckpoint {
    fn wire_bytes(&self) -> usize {
        8 + self.meshes.wire_bytes()
            + self.final_rels.wire_bytes()
            + self.fault_counters.wire_bytes()
            + self.amg_plans.wire_bytes()
    }
    fn wire_sig(out: &mut String) {
        out.push_str("solver_ckpt{u64,");
        Vec::<MeshCheckpoint>::wire_sig(out);
        out.push(',');
        Vec::<(Vec<u8>, f64)>::wire_sig(out);
        out.push(',');
        Vec::<(u64, u64)>::wire_sig(out);
        out.push(',');
        Vec::<(u64, u64)>::wire_sig(out);
        out.push('}');
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.step.encode(out);
        self.meshes.encode(out);
        self.final_rels.encode(out);
        self.fault_counters.encode(out);
        self.amg_plans.encode(out);
    }
    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, parcomm::WireError> {
        Ok(SolverCheckpoint {
            step: u64::decode(cur)?,
            meshes: Vec::decode(cur)?,
            final_rels: Vec::decode(cur)?,
            fault_counters: Vec::decode(cur)?,
            amg_plans: Vec::decode(cur)?,
        })
    }
}

/// Per-rank checkpoint file name for a generation.
pub fn rank_file(dir: &Path, generation: u64, rank: usize) -> PathBuf {
    dir.join(format!("ckpt-g{generation}-r{rank}.bin"))
}

fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // The rename lives in the directory, not the file: without a
    // directory fsync a whole-machine crash could revert it, leaving a
    // manifest that names rank files whose directory entries vanished.
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Serialize `ck` for `rank` of a `size`-rank cohort and atomically
/// write it under `dir` (created if absent). Returns the file size.
pub fn write_rank(
    dir: &Path,
    rank: usize,
    size: usize,
    generation: u64,
    ck: &SolverCheckpoint,
) -> Result<u64, CheckpointError> {
    fs::create_dir_all(dir)?;
    let payload = parcomm::encode_payload(ck);
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(rank as u32).to_le_bytes());
    bytes.extend_from_slice(&(size as u32).to_le_bytes());
    bytes.extend_from_slice(&generation.to_le_bytes());
    bytes.extend_from_slice(&ck.step.to_le_bytes());
    bytes.extend_from_slice(&<SolverCheckpoint as Message>::wire_id().to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
    let header_sum = fnv64(&bytes);
    bytes.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(bytes.len(), HEADER_BYTES);
    bytes.extend_from_slice(&payload);
    atomic_write(&rank_file(dir, generation, rank), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Read and fully validate one rank's checkpoint file: magic, version,
/// header checksum, rank/size/generation identity, payload type id,
/// length, and payload checksum — then decode. Any mismatch is a typed
/// error and nothing is returned.
pub fn read_rank(
    dir: &Path,
    rank: usize,
    size: usize,
    generation: u64,
) -> Result<SolverCheckpoint, CheckpointError> {
    read_file(&rank_file(dir, generation, rank), Some((rank, size, generation)))
}

/// [`read_rank`] on an explicit path; `expect` optionally pins the
/// (rank, size, generation) identity the header must carry.
pub fn read_file(
    path: &Path,
    expect: Option<(usize, usize, u64)>,
) -> Result<SolverCheckpoint, CheckpointError> {
    let mut f = fs::File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_BYTES {
        return Err(CheckpointError::Truncated { wanted: HEADER_BYTES, got: bytes.len() });
    }
    let header = &bytes[..HEADER_BYTES];
    if &header[..8] != MAGIC {
        return Err(CheckpointError::Corrupt(format!(
            "bad magic {:02x?} (not a checkpoint file)",
            &header[..8]
        )));
    }
    let u32_at = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != VERSION {
        return Err(CheckpointError::VersionMismatch { found: version, expected: VERSION });
    }
    let stored_header_sum = u64_at(HEADER_BYTES - 8);
    if fnv64(&header[..HEADER_BYTES - 8]) != stored_header_sum {
        return Err(CheckpointError::Corrupt("header checksum mismatch".into()));
    }
    let (rank, size) = (u32_at(12) as usize, u32_at(16) as usize);
    let generation = u64_at(20);
    let step = u64_at(28);
    if let Some((want_rank, want_size, want_gen)) = expect {
        if rank != want_rank || size != want_size || generation != want_gen {
            return Err(CheckpointError::CohortMismatch {
                detail: format!(
                    "file is rank {rank}/{size} generation {generation}, \
                     wanted rank {want_rank}/{want_size} generation {want_gen}"
                ),
            });
        }
    }
    let type_id = u32_at(36);
    if type_id != <SolverCheckpoint as Message>::wire_id() {
        return Err(CheckpointError::Corrupt(format!(
            "payload type id {type_id:#010x} is not a solver checkpoint"
        )));
    }
    let payload_len = u64_at(40) as usize;
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() != payload_len {
        return Err(CheckpointError::Truncated {
            wanted: HEADER_BYTES + payload_len,
            got: bytes.len(),
        });
    }
    if fnv64(payload) != u64_at(48) {
        return Err(CheckpointError::Corrupt("payload checksum mismatch".into()));
    }
    let ck: SolverCheckpoint = parcomm::decode_payload(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("payload decode: {e}")))?;
    if ck.step != step {
        return Err(CheckpointError::Corrupt(format!(
            "header step {step} disagrees with payload step {}",
            ck.step
        )));
    }
    Ok(ck)
}

/// The cohort manifest: the rank count and every *complete* generation,
/// oldest first. Text, one `generation <g>` line each, so an operator
/// can read it with `cat`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Manifest {
    pub ranks: usize,
    pub generations: Vec<u64>,
}

impl Manifest {
    /// Newest complete generation, if any.
    pub fn latest(&self) -> Option<u64> {
        self.generations.last().copied()
    }

    fn render(&self) -> String {
        let mut s = format!("exawind-checkpoint-manifest v1\nranks {}\n", self.ranks);
        for g in &self.generations {
            s.push_str(&format!("generation {g}\n"));
        }
        s
    }

    fn parse(s: &str) -> Result<Manifest, CheckpointError> {
        let mut lines = s.lines();
        match lines.next() {
            Some("exawind-checkpoint-manifest v1") => {}
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "manifest header {other:?} unrecognized"
                )))
            }
        }
        let ranks = match lines.next().and_then(|l| l.strip_prefix("ranks ")) {
            Some(n) => n.trim().parse::<usize>().map_err(|_| {
                CheckpointError::Corrupt(format!("manifest ranks line unparseable: {n:?}"))
            })?,
            None => return Err(CheckpointError::Corrupt("manifest missing ranks line".into())),
        };
        let mut generations = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let g = line
                .strip_prefix("generation ")
                .and_then(|g| g.trim().parse::<u64>().ok())
                .ok_or_else(|| {
                    CheckpointError::Corrupt(format!("manifest line unparseable: {line:?}"))
                })?;
            generations.push(g);
        }
        if generations.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CheckpointError::Corrupt(
                "manifest generations not strictly increasing".into(),
            ));
        }
        Ok(Manifest { ranks, generations })
    }
}

/// Read the manifest under `dir`. `Ok(None)` when no manifest exists
/// (nothing ever completed) — distinct from a *corrupt* manifest, which
/// is an error.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, CheckpointError> {
    let path = dir.join(MANIFEST_NAME);
    let s = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Manifest::parse(&s).map(Some)
}

/// Publish `generation` as complete (called by rank 0 *after* the
/// cohort barriered on all rank files being written): append it to the
/// manifest, atomically rewrite, then prune generations older than the
/// newest [`KEEP_GENERATIONS`] along with their rank files.
pub fn publish_generation(
    dir: &Path,
    ranks: usize,
    generation: u64,
) -> Result<Manifest, CheckpointError> {
    let mut m = read_manifest(dir)?.unwrap_or(Manifest { ranks, generations: Vec::new() });
    if m.ranks != ranks {
        return Err(CheckpointError::CohortMismatch {
            detail: format!("manifest is for {} ranks, publishing for {ranks}", m.ranks),
        });
    }
    if m.latest().is_some_and(|g| g >= generation) {
        return Err(CheckpointError::Corrupt(format!(
            "generation {generation} not newer than manifest latest {:?}",
            m.latest()
        )));
    }
    m.generations.push(generation);
    let pruned: Vec<u64> = if m.generations.len() > KEEP_GENERATIONS {
        m.generations.drain(..m.generations.len() - KEEP_GENERATIONS).collect()
    } else {
        Vec::new()
    };
    atomic_write(&dir.join(MANIFEST_NAME), m.render().as_bytes())?;
    // Prune *after* the manifest stops naming the old generations; a
    // crash between the two leaves unreferenced files, never a manifest
    // naming missing ones.
    for g in pruned {
        for r in 0..ranks {
            let _ = fs::remove_file(rank_file(dir, g, r));
        }
    }
    Ok(m)
}

/// Whether the environment requests a resume ([`ENV_RESUME`] = `1`).
pub fn resume_requested() -> bool {
    std::env::var(ENV_RESUME).is_ok_and(|v| v == "1")
}

/// Incarnation count of a supervised cohort ([`ENV_RESTART_COUNT`]),
/// 0 when unset. `kill-rank` faults are suppressed past incarnation 0.
pub fn restart_count() -> u64 {
    std::env::var(ENV_RESTART_COUNT).ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("exawind-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample(step: u64) -> SolverCheckpoint {
        SolverCheckpoint {
            step,
            meshes: vec![MeshCheckpoint {
                vel: vec![1.0, -0.0, f64::NAN],
                vel_old: vec![2.0, 3.0, 4.0],
                p: vec![0.5],
                dp: vec![f64::MIN_POSITIVE],
                nut: vec![1e-4],
                nut_old: vec![1e-4],
            }],
            final_rels: vec![(b"continuity".to_vec(), 1e-7)],
            fault_counters: vec![(3, 1)],
            amg_plans: vec![(0, 12)],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let dir = tmpdir("roundtrip");
        let ck = sample(4);
        let bytes = write_rank(&dir, 1, 2, 4, &ck).unwrap();
        assert!(bytes > HEADER_BYTES as u64);
        let back = read_rank(&dir, 1, 2, 4).unwrap();
        // NaN payload: compare bits, not values.
        assert_eq!(back.meshes[0].vel[2].to_bits(), ck.meshes[0].vel[2].to_bits());
        assert_eq!(back.meshes[0].vel[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.step, ck.step);
        assert_eq!(back.final_rels, ck.final_rels);
        assert_eq!(back.fault_counters, ck.fault_counters);
        assert_eq!(back.amg_plans, ck.amg_plans);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identity_mismatches_are_typed() {
        let dir = tmpdir("identity");
        write_rank(&dir, 0, 2, 4, &sample(4)).unwrap();
        // Wrong rank under the expected identity: file not found is Io.
        assert!(matches!(read_rank(&dir, 1, 2, 4), Err(CheckpointError::Io(_))));
        // Right file, wrong expected identity: cohort mismatch.
        let path = rank_file(&dir, 4, 0);
        assert!(matches!(
            read_file(&path, Some((0, 4, 4))),
            Err(CheckpointError::CohortMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_and_bitflips_are_typed_errors() {
        let dir = tmpdir("corrupt");
        write_rank(&dir, 0, 1, 2, &sample(2)).unwrap();
        let path = rank_file(&dir, 2, 0);
        let good = fs::read(&path).unwrap();
        // Truncated mid-payload.
        fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            read_file(&path, None),
            Err(CheckpointError::Truncated { .. })
        ));
        // Truncated mid-header.
        fs::write(&path, &good[..10]).unwrap();
        assert!(matches!(
            read_file(&path, None),
            Err(CheckpointError::Truncated { .. })
        ));
        // Every single-bit flip anywhere in the file must be caught.
        for byte in [9, HEADER_BYTES - 9, HEADER_BYTES + 3, good.len() - 1] {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            let err = read_file(&path, None).expect_err("bit flip accepted");
            assert!(
                matches!(
                    err,
                    CheckpointError::Corrupt(_) | CheckpointError::VersionMismatch { .. }
                ),
                "flip at {byte} gave {err:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_names_only_published_generations() {
        let dir = tmpdir("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_rank(&dir, 0, 1, 2, &sample(2)).unwrap();
        publish_generation(&dir, 1, 2).unwrap();
        write_rank(&dir, 0, 1, 4, &sample(4)).unwrap();
        publish_generation(&dir, 1, 4).unwrap();
        let m = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(m.generations, vec![2, 4]);
        assert_eq!(m.latest(), Some(4));
        // Publishing an older generation is refused.
        assert!(publish_generation(&dir, 1, 3).is_err());
        // A third generation prunes the first's files.
        write_rank(&dir, 0, 1, 6, &sample(6)).unwrap();
        publish_generation(&dir, 1, 6).unwrap();
        let m = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(m.generations, vec![4, 6]);
        assert!(!rank_file(&dir, 2, 0).exists(), "pruned generation still on disk");
        assert!(rank_file(&dir, 4, 0).exists());
        // Wrong cohort size is refused.
        assert!(matches!(
            publish_generation(&dir, 3, 8),
            Err(CheckpointError::CohortMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_a_cold_start() {
        let dir = tmpdir("badmanifest");
        fs::write(dir.join(MANIFEST_NAME), "exawind-checkpoint-manifest v1\nranks 2\ngeneration 4\ngeneration 2\n").unwrap();
        assert!(read_manifest(&dir).is_err(), "non-monotonic generations accepted");
        fs::write(dir.join(MANIFEST_NAME), "something else\n").unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
