//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s parsed from the
//! `EXAWIND_FAULTS` environment variable (or set programmatically via
//! `SolverConfig::faults`). Each spec names a [`FaultKind`], a context
//! substring matched against the rank's current phase label, and the
//! occurrence window in which it fires.
//!
//! The plan is installed as a thread-local *injector* on each rank
//! thread (mirroring the telemetry dispatcher): solver hooks call
//! [`fire`] at well-defined points, and the injector counts matching
//! hook invocations per spec. Because each simulated rank is one OS
//! thread, the counters are per-rank and never touched by rayon
//! workers — so whether a fault fires is a pure function of the solve
//! sequence, bitwise reproducible across thread counts.
//!
//! With no injector installed, [`fire`] is a single thread-local read
//! returning `false`; the context closure is never invoked, so the
//! clean-run path does not even build the phase-label string.
//!
//! # Grammar
//!
//! ```text
//! EXAWIND_FAULTS="spec(;spec)*"
//! spec  = kind '@' ctx [ ':' at [ 'x' count ] ]
//! kind  = 'assembly-nan' | 'halo-nan' | 'coarsen-stall' | 'socket-drop'
//!       | 'kill-rank'
//! ctx   = substring matched against the phase label (e.g. "continuity");
//!         kill-rank contexts are matched exactly (ctx == "rank<r>")
//! at    = 1-based index of the first matching occurrence to corrupt (default 1)
//! count = number of consecutive occurrences to corrupt (default 1)
//! ```
//!
//! Example: `assembly-nan@continuity:1` corrupts the first continuity
//! assembly; `halo-nan@momentum:2x3` flips halo payloads to NaN on the
//! 2nd, 3rd and 4th momentum halo exchanges; `kill-rank@rank1:3` kills
//! the rank-1 worker process at the top of its 3rd timestep (the hook
//! context is `rank<r>`, evaluated once per step).
//!
//! Occurrences are counted per matching hook invocation, so a broad
//! context can hit more sites than expected: `assembly-nan@continuity`
//! also counts the pattern-union assemblies inside AMG setup (phase
//! `continuity/precond setup`), where a corrupted value is structurally
//! harmless. Pin the context when targeting the fine system — e.g.
//! `assembly-nan@continuity/global` matches only the global assembly of
//! the continuity equation itself.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Environment variable holding the fault plan.
pub const ENV_VAR: &str = "EXAWIND_FAULTS";

/// What kind of corruption a spec injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt an assembled COO/CSR coefficient to NaN at global assembly.
    AssemblyNan,
    /// Flip a halo-exchange payload entry to NaN after receive.
    HaloNan,
    /// Force AMG coarsening to stagnate (coarse grid stops shrinking).
    CoarsenStall,
    /// Abort a communication exchange as if the peer's socket dropped
    /// mid-solve. Fires *before* any message of the exchange is sent, so
    /// a retry after recovery re-runs a complete, clean exchange (no
    /// stale in-flight messages to mis-match); the counters are
    /// replicated per rank, so every rank aborts the same exchange.
    SocketDrop,
    /// Kill the worker *process* (simulated SIGKILL via `abort`) at the
    /// top of a timestep. The hook context is `rank<r>` and the
    /// occurrence counter advances once per step, so
    /// `kill-rank@rank1:3` deterministically kills rank 1 at step 3.
    /// Unlike the other kinds the context is matched *exactly*, never as
    /// a substring — `rank1` must not also count steps on ranks 10-19.
    /// Unlike the other kinds this fault is intentionally *not*
    /// collective — the point is one dead process, with the supervisor
    /// (`exawind-launch`) fencing and relaunching the cohort.
    KillRank,
}

impl FaultKind {
    /// The grammar keyword for this kind.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::AssemblyNan => "assembly-nan",
            FaultKind::HaloNan => "halo-nan",
            FaultKind::CoarsenStall => "coarsen-stall",
            FaultKind::SocketDrop => "socket-drop",
            FaultKind::KillRank => "kill-rank",
        }
    }

    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "assembly-nan" => Ok(FaultKind::AssemblyNan),
            "halo-nan" => Ok(FaultKind::HaloNan),
            "coarsen-stall" => Ok(FaultKind::CoarsenStall),
            "socket-drop" => Ok(FaultKind::SocketDrop),
            "kill-rank" => Ok(FaultKind::KillRank),
            other => Err(format!(
                "unknown fault kind {other:?} (expected assembly-nan, halo-nan, \
                 coarsen-stall, socket-drop, or kill-rank)"
            )),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injection rule: fire `kind` on matching-context occurrences
/// `at ..= at + count - 1` (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    /// Substring matched against the rank's current phase label.
    pub ctx: String,
    /// 1-based index of the first matching occurrence that fires.
    pub at: u64,
    /// Number of consecutive matching occurrences that fire.
    pub count: u64,
}

impl FaultSpec {
    fn parse(s: &str) -> Result<FaultSpec, String> {
        let (kind_s, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("fault spec {s:?} is missing '@ctx'"))?;
        let kind = FaultKind::parse(kind_s.trim())?;
        let (ctx, occ) = match rest.split_once(':') {
            Some((c, o)) => (c, Some(o)),
            None => (rest, None),
        };
        let ctx = ctx.trim();
        if ctx.is_empty() {
            return Err(format!("fault spec {s:?} has an empty context"));
        }
        let (at, count) = match occ {
            None => (1, 1),
            Some(o) => {
                let (at_s, count_s) = match o.split_once('x') {
                    Some((a, c)) => (a, Some(c)),
                    None => (o, None),
                };
                let at: u64 = at_s
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault spec {s:?}: bad occurrence index {at_s:?}"))?;
                if at == 0 {
                    return Err(format!("fault spec {s:?}: occurrence index is 1-based"));
                }
                let count: u64 = match count_s {
                    None => 1,
                    Some(c) => c
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault spec {s:?}: bad count {c:?}"))?,
                };
                if count == 0 {
                    return Err(format!("fault spec {s:?}: count must be positive"));
                }
                (at, count)
            }
        };
        Ok(FaultSpec {
            kind,
            ctx: ctx.to_string(),
            at,
            count,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.kind, self.ctx, self.at)?;
        if self.count != 1 {
            write!(f, "x{}", self.count)?;
        }
        Ok(())
    }
}

/// A parsed, immutable fault plan. No-op until [installed](FaultPlan::install).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parse a `;`-separated plan string (see module grammar).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            specs.push(FaultSpec::parse(part)?);
        }
        Ok(FaultPlan { specs })
    }

    /// The plan from [`ENV_VAR`], if set and non-empty.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan string: a typo'd fault plan silently
    /// doing nothing would defeat the point of injecting faults.
    pub fn from_env() -> Option<FaultPlan> {
        match std::env::var(ENV_VAR) {
            Ok(v) if !v.is_empty() => Some(
                FaultPlan::parse(&v).unwrap_or_else(|e| panic!("{ENV_VAR}: {e}")),
            ),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Install this plan as the thread-local injector for the current
    /// (rank) thread; restored when the guard drops. Per-spec occurrence
    /// counters start at zero on every install.
    pub fn install(&self) -> FaultGuard {
        let inj = Rc::new(RefCell::new(Injector {
            rules: self
                .specs
                .iter()
                .map(|s| Rule {
                    spec: s.clone(),
                    hits: 0,
                    fired: 0,
                })
                .collect(),
        }));
        let prev = CURRENT.with(|c| c.replace(Some(inj)));
        FaultGuard { prev: Some(prev) }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

struct Rule {
    spec: FaultSpec,
    /// Matching hook invocations seen so far.
    hits: u64,
    /// Times this rule actually fired.
    fired: u64,
}

struct Injector {
    rules: Vec<Rule>,
}

/// Restores the previously installed injector on drop.
pub struct FaultGuard {
    prev: Option<Option<Rc<RefCell<Injector>>>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.replace(prev));
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<RefCell<Injector>>>> = const { RefCell::new(None) };
}

/// True when a fault plan is installed on this thread.
pub fn armed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Fault hook: should a fault of `kind` fire at this point?
///
/// `ctx` is evaluated lazily (typically `|| rank.phase_name()`) and only
/// when an injector is installed; with no plan armed this is one
/// thread-local read. A spec matches when its kind equals `kind` and its
/// context string is a substring of `ctx()` (equal to it, for
/// `kill-rank`); every match advances that spec's occurrence counter,
/// and the hook fires when the counter lands in the spec's
/// `at..at+count` window.
pub fn fire(kind: FaultKind, ctx: impl FnOnce() -> String) -> bool {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let Some(inj) = borrow.as_ref() else {
            return false;
        };
        let inj = Rc::clone(inj);
        drop(borrow);
        let ctx = ctx();
        let mut inj = inj.borrow_mut();
        let mut hit = false;
        for rule in &mut inj.rules {
            // kill-rank contexts name exactly one rank (`rank<r>`), so
            // they compare for equality: a substring match would let
            // `rank1` also advance on ranks 10-19 and kill the wrong
            // processes. Every other kind keeps substring semantics so a
            // spec can target a whole phase family.
            let matched = if rule.spec.kind == FaultKind::KillRank {
                ctx == rule.spec.ctx
            } else {
                ctx.contains(&rule.spec.ctx)
            };
            if rule.spec.kind == kind && matched {
                rule.hits += 1;
                if rule.hits >= rule.spec.at && rule.hits < rule.spec.at + rule.spec.count {
                    rule.fired += 1;
                    hit = true;
                }
            }
        }
        hit
    })
}

/// Snapshot the per-rule `(hits, fired)` occurrence counters of the
/// injector installed on this thread, in spec order. Empty when no
/// injector is armed. Checkpointed so a restarted run's occurrence
/// windows continue exactly where the interrupted run left off — a
/// `halo-nan@momentum:7` spec that had seen 5 momentum exchanges before
/// the checkpoint still fires on the 7th overall, not the 7th
/// post-restart.
pub fn counters() -> Vec<(u64, u64)> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map_or_else(Vec::new, |inj| {
            inj.borrow().rules.iter().map(|r| (r.hits, r.fired)).collect()
        })
    })
}

/// Restore occurrence counters captured by [`counters`] into the
/// injector installed on this thread. Errors when the snapshot's rule
/// count does not match the installed plan (the restart must run under
/// the same `EXAWIND_FAULTS` plan that was checkpointed); restoring an
/// empty snapshot into an unarmed thread is a no-op.
pub fn restore_counters(snapshot: &[(u64, u64)]) -> Result<(), String> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            None if snapshot.is_empty() => Ok(()),
            None => Err(format!(
                "checkpoint carries {} fault-counter entries but no fault plan is armed",
                snapshot.len()
            )),
            Some(inj) => {
                let mut inj = inj.borrow_mut();
                if inj.rules.len() != snapshot.len() {
                    return Err(format!(
                        "checkpoint carries {} fault-counter entries but the armed plan \
                         has {} specs",
                        snapshot.len(),
                        inj.rules.len()
                    ));
                }
                for (rule, &(hits, fired)) in inj.rules.iter_mut().zip(snapshot) {
                    rule.hits = hits;
                    rule.fired = fired;
                }
                Ok(())
            }
        }
    })
}

/// Total faults fired by the injector installed on this thread (0 when
/// none is armed). Used by tests to assert a plan actually triggered.
pub fn fired_count() -> u64 {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map_or(0, |inj| inj.borrow().rules.iter().map(|r| r.fired).sum())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan =
            FaultPlan::parse("assembly-nan@continuity:1; halo-nan@momentum:2x3;coarsen-stall@p")
                .unwrap();
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec {
                    kind: FaultKind::AssemblyNan,
                    ctx: "continuity".into(),
                    at: 1,
                    count: 1
                },
                FaultSpec {
                    kind: FaultKind::HaloNan,
                    ctx: "momentum".into(),
                    at: 2,
                    count: 3
                },
                FaultSpec {
                    kind: FaultKind::CoarsenStall,
                    ctx: "p".into(),
                    at: 1,
                    count: 1
                },
            ]
        );
        // Round-trips through Display.
        assert_eq!(
            FaultPlan::parse(&plan.to_string()).unwrap(),
            plan
        );
        let drop_plan = FaultPlan::parse("socket-drop@continuity/global:2").unwrap();
        assert_eq!(
            drop_plan.specs,
            vec![FaultSpec {
                kind: FaultKind::SocketDrop,
                ctx: "continuity/global".into(),
                at: 2,
                count: 1
            }]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "assembly-nan",          // no ctx
            "bad-kind@x:1",          // unknown kind
            "halo-nan@:1",           // empty ctx
            "halo-nan@x:0",          // 0 is not a valid 1-based index
            "halo-nan@x:1x0",        // zero count
            "halo-nan@x:notanumber", // bad index
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unarmed_fire_is_false_and_lazy() {
        assert!(!armed());
        let fired = fire(FaultKind::AssemblyNan, || {
            panic!("ctx closure must not run when unarmed")
        });
        assert!(!fired);
    }

    #[test]
    fn occurrence_windows_and_context_matching() {
        let plan = FaultPlan::parse("halo-nan@continuity:2x2").unwrap();
        let _g = plan.install();
        // Non-matching context never advances the counter.
        assert!(!fire(FaultKind::HaloNan, || "momentum/halo".into()));
        assert!(!fire(FaultKind::HaloNan, || "continuity/halo".into())); // hit 1
        assert!(fire(FaultKind::HaloNan, || "continuity/halo".into())); // hit 2 → fires
        assert!(fire(FaultKind::HaloNan, || "continuity/halo".into())); // hit 3 → fires
        assert!(!fire(FaultKind::HaloNan, || "continuity/halo".into())); // hit 4 → window over
        // Kind mismatch never fires.
        assert!(!fire(FaultKind::AssemblyNan, || "continuity/halo".into()));
        assert_eq!(fired_count(), 2);
    }

    #[test]
    fn install_guard_restores_previous_injector() {
        let outer = FaultPlan::parse("coarsen-stall@amg:1").unwrap();
        let g1 = outer.install();
        assert!(fire(FaultKind::CoarsenStall, || "amg".into()));
        {
            let inner = FaultPlan::parse("coarsen-stall@amg:1").unwrap();
            let _g2 = inner.install();
            // Fresh counters: fires again under the inner plan.
            assert!(fire(FaultKind::CoarsenStall, || "amg".into()));
        }
        // Outer plan restored, its window already consumed.
        assert!(!fire(FaultKind::CoarsenStall, || "amg".into()));
        drop(g1);
        assert!(!armed());
    }

    #[test]
    fn kill_rank_parses_and_fires_on_step_window() {
        let plan = FaultPlan::parse("kill-rank@rank1:3").unwrap();
        assert_eq!(
            plan.specs,
            vec![FaultSpec {
                kind: FaultKind::KillRank,
                ctx: "rank1".into(),
                at: 3,
                count: 1
            }]
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        let _g = plan.install();
        // Another rank's step hook never advances this rule.
        assert!(!fire(FaultKind::KillRank, || "rank0".into()));
        assert!(!fire(FaultKind::KillRank, || "rank1".into())); // step 1
        assert!(!fire(FaultKind::KillRank, || "rank1".into())); // step 2
        assert!(fire(FaultKind::KillRank, || "rank1".into())); // step 3 → dies
    }

    #[test]
    fn kill_rank_ctx_matches_exactly_not_as_substring() {
        let plan = FaultPlan::parse("kill-rank@rank1:2").unwrap();
        let _g = plan.install();
        // In an 11+-rank cohort, ranks 10-19 contain "rank1" as a
        // substring; their step hooks must neither fire nor advance
        // rank 1's occurrence counter.
        assert!(!fire(FaultKind::KillRank, || "rank12".into()));
        assert!(!fire(FaultKind::KillRank, || "rank1".into())); // step 1
        assert!(!fire(FaultKind::KillRank, || "rank10".into()));
        assert!(fire(FaultKind::KillRank, || "rank1".into())); // step 2 → dies
        assert!(!fire(FaultKind::KillRank, || "rank19".into()));
    }

    #[test]
    fn counters_snapshot_and_restore_resume_windows() {
        let plan = FaultPlan::parse("halo-nan@continuity:3").unwrap();
        let snapshot = {
            let _g = plan.install();
            assert!(!fire(FaultKind::HaloNan, || "continuity/halo".into()));
            assert!(!fire(FaultKind::HaloNan, || "continuity/halo".into()));
            counters()
        };
        assert_eq!(snapshot, vec![(2, 0)]);
        // A fresh install (the restarted process) resumes mid-window.
        let _g = plan.install();
        restore_counters(&snapshot).unwrap();
        assert!(fire(FaultKind::HaloNan, || "continuity/halo".into())); // hit 3 → fires
        assert_eq!(counters(), vec![(3, 1)]);
        // Mismatched plan shape is a typed error, not a silent skip.
        assert!(restore_counters(&[(1, 0), (2, 0)]).is_err());
    }

    #[test]
    fn counters_unarmed_is_empty_and_restores_trivially() {
        assert!(counters().is_empty());
        restore_counters(&[]).unwrap();
        assert!(restore_counters(&[(1, 0)]).is_err());
    }

    #[test]
    fn empty_plan_is_armed_but_never_fires() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        let _g = plan.install();
        assert!(armed());
        assert!(!fire(FaultKind::AssemblyNan, || "x".into()));
    }
}
