//! The solver failure taxonomy.

use std::fmt;

/// Everything that can go wrong between assembly and a converged field.
///
/// Every variant carries enough context to log a useful telemetry
/// `recovery` event; [`SolveError::kind`] is the stable string used in
/// the event stream and the report's recovery table.
///
/// Errors are only raised from *collectively consistent* conditions
/// (allreduced scans, collective norms, replicated sizes), so every
/// rank of a communicator observes the same error at the same point —
/// a prerequisite for the recovery ladder to retry collectively
/// without deadlocking.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// A residual norm in the GMRES recurrence became NaN/Inf.
    NonFiniteResidual {
        /// Where it was detected (phase label or equation).
        context: String,
        /// Iteration at which the recurrence went non-finite.
        iter: usize,
    },
    /// An assembled operator or right-hand side contains NaN/Inf.
    NonFiniteCoefficient {
        context: String,
        /// Global count of non-finite entries (allreduced).
        count: u64,
    },
    /// GMRES breakdown: a zero or non-finite Hessenberg pivot while the
    /// residual is still above tolerance.
    GmresBreakdown { iter: usize, pivot: f64 },
    /// GMRES made no progress over a full restart cycle.
    GmresStagnation { iters: usize, rel: f64 },
    /// AMG coarsening stopped shrinking the grid while it is still far
    /// above the coarse-solver threshold.
    CoarseningStagnation { level: usize, rows: u64 },
    /// A halo-exchange payload was structurally invalid (wrong length)
    /// or carried non-finite values where they are forbidden.
    HaloCorruption {
        context: String,
        src: usize,
        detail: String,
    },
    /// A message failed to decode (type mismatch or timeout) on a path
    /// that has been converted from a panic to a typed error.
    Comm { detail: String },
    /// A checkpoint write or restore failed: I/O, a corrupt or
    /// truncated file, or a mismatch between the checkpoint and the
    /// live run (cohort size, mesh shapes, fault-plan shape).
    Checkpoint { detail: String },
}

impl SolveError {
    /// Stable machine-readable kind, used as the `fault` field of
    /// telemetry `recovery` events.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::NonFiniteResidual { .. } => "non_finite_residual",
            SolveError::NonFiniteCoefficient { .. } => "non_finite_coefficient",
            SolveError::GmresBreakdown { .. } => "gmres_breakdown",
            SolveError::GmresStagnation { .. } => "gmres_stagnation",
            SolveError::CoarseningStagnation { .. } => "coarsening_stagnation",
            SolveError::HaloCorruption { .. } => "halo_corruption",
            SolveError::Comm { .. } => "comm",
            SolveError::Checkpoint { .. } => "checkpoint",
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NonFiniteResidual { context, iter } => {
                write!(f, "non-finite residual in {context} at iteration {iter}")
            }
            SolveError::NonFiniteCoefficient { context, count } => {
                write!(f, "{count} non-finite coefficient(s) in {context}")
            }
            SolveError::GmresBreakdown { iter, pivot } => {
                write!(f, "GMRES breakdown at iteration {iter} (pivot {pivot})")
            }
            SolveError::GmresStagnation { iters, rel } => {
                write!(f, "GMRES stagnated after {iters} iterations at rel {rel:.3e}")
            }
            SolveError::CoarseningStagnation { level, rows } => {
                write!(f, "AMG coarsening stagnated at level {level} ({rows} rows)")
            }
            SolveError::HaloCorruption { context, src, detail } => {
                write!(f, "halo corruption in {context} from rank {src}: {detail}")
            }
            SolveError::Comm { detail } => write!(f, "communication error: {detail}"),
            SolveError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<parcomm::CommError> for SolveError {
    fn from(e: parcomm::CommError) -> Self {
        SolveError::Comm { detail: e.to_string() }
    }
}

impl From<crate::checkpoint::CheckpointError> for SolveError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        SolveError::Checkpoint { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let errs = [
            SolveError::NonFiniteResidual { context: "c".into(), iter: 1 },
            SolveError::NonFiniteCoefficient { context: "c".into(), count: 2 },
            SolveError::GmresBreakdown { iter: 3, pivot: 0.0 },
            SolveError::GmresStagnation { iters: 4, rel: 1.0 },
            SolveError::CoarseningStagnation { level: 0, rows: 100 },
            SolveError::HaloCorruption { context: "c".into(), src: 1, detail: "d".into() },
            SolveError::Comm { detail: "d".into() },
            SolveError::Checkpoint { detail: "d".into() },
        ];
        let kinds: Vec<&str> = errs.iter().map(|e| e.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
