//! Solver resilience: failure detection, recovery policies, and
//! deterministic fault injection.
//!
//! Blade-resolved production runs on thousands of GPUs treat
//! linear-solver failure — stalled GMRES, degenerate AMG coarsening,
//! corrupted halo payloads — as an operational reality. This crate is
//! the layer that makes the ExaWind-RS solve pipeline fail *loudly* and
//! recover *deterministically*:
//!
//! - [`SolveError`] — the failure taxonomy shared by every solver layer
//!   (`krylov`, `amg`, `distmat`, `nalu_core`). Solve APIs return
//!   `Result<_, SolveError>` instead of silently iterating through NaNs.
//! - [`guard`] — cheap finite-value scans used at the detection points
//!   (assembled operators, GMRES residual recurrence, AMG setup).
//! - [`recovery`] — the bounded escalation ladder the Picard driver
//!   walks on failure (fresh rebuild → fallback smoother → timestep
//!   cut) and the [`RecoveryRecord`]s it emits.
//! - [`checkpoint`] — versioned, bitwise-exact checkpoint/restart: per
//!   rank files on the parcomm wire codec (checksummed header, atomic
//!   tmp+rename) plus a cohort manifest naming only *complete*
//!   generations, so a killed process resumes bit-for-bit where the last
//!   finished generation left off.
//! - [`faults`] — a seeded, deterministic fault-injection harness
//!   ([`FaultPlan`], enabled via the `EXAWIND_FAULTS` environment
//!   variable or `SolverConfig::faults`; a no-op by default) that can
//!   corrupt COO triples at global assembly, flip halo payloads to NaN,
//!   and force AMG coarsening stagnation. Faults fire on the rank
//!   thread only (never inside rayon workers), so recovery behaviour is
//!   bitwise reproducible across thread counts.
//!
//! With no plan installed every hook is one thread-local read, so the
//! clean-run solve path is bit-for-bit unperturbed — proven by
//! `tests/determinism.rs`.

pub mod checkpoint;
pub mod error;
pub mod faults;
pub mod guard;
pub mod recovery;

pub use error::SolveError;
pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use recovery::{RecoveryAction, RecoveryPolicy, RecoveryRecord};
