//! Property-based tests for the sparse kernel crate.

use proptest::prelude::*;
use sparse_kit::coo::Coo;
use sparse_kit::csr::Csr;
use sparse_kit::prims;
use sparse_kit::rap::galerkin;
use sparse_kit::spgemm::{spgemm_esc, spgemm_hash};

/// Random dense matrix strategy with ~35% fill.
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0),
                2 => (-4.0f64..4.0).prop_map(|v| (v * 8.0).round() / 8.0),
            ],
            cols,
        ),
        rows,
    )
}

fn dense_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let (m, k) = (a.len(), b.len());
    let n = if k == 0 { 0 } else { b[0].len() };
    let mut out = vec![vec![0.0; n]; m];
    for i in 0..m {
        for l in 0..k {
            if a[i][l] != 0.0 {
                for j in 0..n {
                    out[i][j] += a[i][l] * b[l][j];
                }
            }
        }
    }
    out
}

fn close(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.iter()
        .zip(b)
        .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| (x - y).abs() < 1e-9))
}

proptest! {
    #[test]
    fn sort_by_key_matches_std_sort(pairs in proptest::collection::vec((0u64..50, -10i64..10), 0..200)) {
        let mut keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let mut vals: Vec<i64> = pairs.iter().map(|&(_, v)| v).collect();
        prims::stable_sort_by_key(&mut keys, &mut vals);

        let mut reference = pairs.clone();
        reference.sort_by_key(|&(k, _)| k); // stable
        let ref_keys: Vec<u64> = reference.iter().map(|&(k, _)| k).collect();
        let ref_vals: Vec<i64> = reference.iter().map(|&(_, v)| v).collect();
        prop_assert_eq!(keys, ref_keys);
        prop_assert_eq!(vals, ref_vals);
    }

    #[test]
    fn reduce_by_key_preserves_total(keys in proptest::collection::vec(0u64..20, 0..100)) {
        let mut keys = keys;
        keys.sort();
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64 + 0.5).collect();
        let total: f64 = vals.iter().sum();
        let (out_keys, out_vals) = prims::reduce_by_key(&keys, &vals);
        // Totals preserved, keys strictly increasing (all duplicates merged).
        let out_total: f64 = out_vals.iter().sum();
        prop_assert!((total - out_total).abs() < 1e-9);
        prop_assert!(out_keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn coo_combine_preserves_entry_sums(
        triplets in proptest::collection::vec((0u64..8, 0u64..8, -4.0f64..4.0), 0..60)
    ) {
        let mut coo = Coo::new();
        let mut reference = std::collections::HashMap::new();
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
            *reference.entry((r, c)).or_insert(0.0) += v;
        }
        coo.sort_and_combine();
        prop_assert!(coo.is_sorted_and_combined());
        prop_assert_eq!(coo.len(), reference.len());
        for i in 0..coo.len() {
            let expected = reference[&(coo.rows[i], coo.cols[i])];
            prop_assert!((coo.vals[i] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_dense_round_trip(d in dense(1, 1).prop_flat_map(|_| (1usize..8, 1usize..8))
        .prop_flat_map(|(r, c)| dense(r, c))) {
        let a = Csr::from_dense(&d);
        prop_assert_eq!(a.to_dense(), d);
    }

    #[test]
    fn spmv_matches_dense((d, x) in (1usize..10, 1usize..10).prop_flat_map(|(r, c)| {
        (dense(r, c), proptest::collection::vec(-3.0f64..3.0, c))
    })) {
        let a = Csr::from_dense(&d);
        let y = a.spmv(&x);
        for (r, row) in d.iter().enumerate() {
            let expected: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[r] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involution(d in (1usize..10, 1usize..10).prop_flat_map(|(r, c)| dense(r, c))) {
        let a = Csr::from_dense(&d);
        prop_assert_eq!(a.transpose().transpose().to_dense(), d);
    }

    #[test]
    fn transpose_swaps_spmv((d, x, y) in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        (dense(r, c),
         proptest::collection::vec(-2.0f64..2.0, c),
         proptest::collection::vec(-2.0f64..2.0, r))
    })) {
        // yᵀ(Ax) == (Aᵀy)ᵀx
        let a = Csr::from_dense(&d);
        let ax = a.spmv(&x);
        let aty = a.transpose().spmv(&y);
        let lhs: f64 = y.iter().zip(&ax).map(|(p, q)| p * q).sum();
        let rhs: f64 = aty.iter().zip(&x).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn add_matches_dense((da, db) in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        (dense(r, c), dense(r, c))
    })) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let c = a.add(&b);
        for r in 0..da.len() {
            for j in 0..da[0].len() {
                prop_assert!((c.get(r, j) - (da[r][j] + db[r][j])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn spgemm_hash_matches_dense((da, db) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (dense(m, k), dense(k, n)))) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let c = spgemm_hash(&a, &b);
        prop_assert!(close(&c.to_dense(), &dense_mul(&da, &db)));
    }

    #[test]
    fn spgemm_esc_matches_hash((da, db) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (dense(m, k), dense(k, n)))) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let h = spgemm_hash(&a, &b);
        let e = spgemm_esc(&a, &b);
        prop_assert!(close(&h.to_dense(), &e.to_dense()));
    }

    #[test]
    fn galerkin_matches_dense_triple((da, dp) in (2usize..8, 1usize..6)
        .prop_flat_map(|(n, nc)| (dense(n, n), dense(n, nc)))) {
        let a = Csr::from_dense(&da);
        let p = Csr::from_dense(&dp);
        let g = galerkin(&a, &p);
        let pt: Vec<Vec<f64>> = {
            let rows = dp.len();
            let cols = dp[0].len();
            (0..cols).map(|c| (0..rows).map(|r| dp[r][c]).collect()).collect()
        };
        let expected = dense_mul(&pt, &dense_mul(&da, &dp));
        prop_assert!(close(&g.to_dense(), &expected));
    }

    #[test]
    fn lower_upper_diag_decomposition(d in (2usize..8,).prop_flat_map(|(n,)| dense(n, n))) {
        let a = Csr::from_dense(&d);
        let rebuilt = a
            .strict_lower()
            .add(&a.strict_upper())
            .add(&Csr::from_diag(&a.diag()));
        // Same values everywhere.
        for r in 0..d.len() {
            for c in 0..d.len() {
                prop_assert!((rebuilt.get(r, c) - d[r][c]).abs() < 1e-12);
            }
        }
    }
}
