//! Property-based tests for the sparse kernel crate.

use proptest::prelude::*;
use sparse_kit::coo::Coo;
use sparse_kit::csr::Csr;
use sparse_kit::dense;
use sparse_kit::prims;
use sparse_kit::rap::galerkin;
use sparse_kit::sellcs::SellCs;
use sparse_kit::spgemm::{spgemm_esc, spgemm_hash, SpgemmPlan};

/// Random dense matrix strategy with ~35% fill.
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                3 => Just(0.0),
                2 => (-4.0f64..4.0).prop_map(|v| (v * 8.0).round() / 8.0),
            ],
            cols,
        ),
        rows,
    )
}

fn dense_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let (m, k) = (a.len(), b.len());
    let n = if k == 0 { 0 } else { b[0].len() };
    let mut out = vec![vec![0.0; n]; m];
    for i in 0..m {
        for l in 0..k {
            if a[i][l] != 0.0 {
                for j in 0..n {
                    out[i][j] += a[i][l] * b[l][j];
                }
            }
        }
    }
    out
}

fn close(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.iter()
        .zip(b)
        .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| (x - y).abs() < 1e-9))
}

/// Serial mirror of `prims::reduce_by_key`: runs of equal adjacent keys
/// summed strictly left-to-right. The parallel path must reproduce this
/// bitwise for any input.
fn reduce_by_key_reference(keys: &[u64], vals: &[f64]) -> (Vec<u64>, Vec<f64>) {
    let mut out_keys = Vec::new();
    let mut out_vals = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let k = keys[i];
        let mut acc = vals[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == k {
            acc += vals[j];
            j += 1;
        }
        out_keys.push(k);
        out_vals.push(acc);
        i = j;
    }
    (out_keys, out_vals)
}

/// Mixed-sign, mixed-magnitude values: any reassociation of a sum over
/// these changes the floating-point rounding, so a bitwise comparison
/// detects reordering.
fn rounding_sensitive_val(i: usize) -> f64 {
    let m = ((i.wrapping_mul(2654435761)) % 1000) as f64 - 499.5;
    m * 10f64.powi((i % 9) as i32 - 4)
}

/// A value set hostile to shortcuts: NaN (poisons anything multiplied
/// into it), -0.0 (lost by `0.0 +` seeding or value-based filtering),
/// and rounding-sensitive reals. Paired with an occupancy flag so
/// structural zeros and stored hazard values are independent.
fn hazard_csr(rows: usize, cols: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                proptest::bool::ANY,
                prop_oneof![
                    4 => (-4.0f64..4.0).prop_map(|v| v * 0.37 + 1e-3),
                    1 => Just(-0.0f64),
                    1 => Just(0.0f64),
                    1 => Just(f64::NAN),
                ],
            ),
            cols,
        ),
        rows,
    )
    .prop_map(move |grid| {
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for row in &grid {
            for (c, &(stored, v)) in row.iter().enumerate() {
                if stored {
                    indices.push(c);
                    vals.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr::from_parts(rows, cols, indptr, indices, vals)
    })
}

/// Vector with the same hazards for the SpMV input side.
fn hazard_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            5 => -3.0f64..3.0,
            1 => Just(-0.0f64),
            1 => Just(f64::NAN),
        ],
        n,
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn sellcs_spmv_bitwise_matches_csr(
        (a, x, sigma) in (1usize..24, 1usize..24).prop_flat_map(|(r, c)| {
            (hazard_csr(r, c), hazard_vec(c), prop_oneof![Just(4usize), Just(8), Just(64)])
        })
    ) {
        // Random matrices include empty rows (all flags false), singleton
        // rows, NaN and -0.0 — the conversion + lane kernel must agree
        // with scalar CSR bit for bit.
        let s = SellCs::from_csr(&a, sigma);
        prop_assert_eq!(s.nnz(), a.nnz());
        let mut y_csr = vec![0.0; a.nrows()];
        a.spmv_into(&x, &mut y_csr);
        let mut y_sell = vec![f64::INFINITY; a.nrows()];
        s.spmv_into(&x, &mut y_sell);
        prop_assert_eq!(bits(&y_sell), bits(&y_csr));
    }

    #[test]
    fn simd_spmv_bitwise_matches_scalar(
        (a, x) in (1usize..24, 1usize..24).prop_flat_map(|(r, c)| {
            (hazard_csr(r, c), hazard_vec(c))
        })
    ) {
        let mut y_ref = vec![0.0; a.nrows()];
        a.spmv_into(&x, &mut y_ref);
        let mut y_simd = vec![f64::NEG_INFINITY; a.nrows()];
        a.spmv_into_simd(&x, &mut y_simd);
        prop_assert_eq!(bits(&y_simd), bits(&y_ref));
    }

    #[test]
    fn fused_jr_sweep_bitwise_matches_unfused(
        (t, r, g, inv_diag) in (2usize..20,).prop_flat_map(|(n,)| {
            (hazard_csr(n, n), hazard_vec(n), hazard_vec(n), hazard_vec(n))
        })
    ) {
        // Unfused pipeline: lg = T·g, then the element-wise Jacobi update.
        let n = t.nrows();
        let mut lg = vec![0.0; n];
        t.spmv_into(&g, &mut lg);
        let mut g_ref = vec![0.0; n];
        dense::jacobi_update(&r, &lg, &inv_diag, &mut g_ref);
        // Fused single pass.
        let mut g_fused = vec![0.0; n];
        t.jr_sweep_fused(&r, &inv_diag, &g, &mut g_fused);
        prop_assert_eq!(bits(&g_fused), bits(&g_ref));
    }

    #[test]
    fn spgemm_plan_reuse_bitwise_matches_fresh(
        (a, b, new_a_vals, new_b_vals) in (1usize..12, 1usize..12, 1usize..12)
            .prop_flat_map(|(m, k, n)| (hazard_csr(m, k), hazard_csr(k, n)))
            .prop_flat_map(|(a, b)| {
                let (na, nb) = (a.nnz(), b.nnz());
                (Just(a), Just(b), hazard_vec(na), hazard_vec(nb))
            })
    ) {
        let (plan, c0) = SpgemmPlan::new(&a, &b);
        let fresh0 = spgemm_hash(&a, &b);
        prop_assert_eq!(bits(c0.vals()), bits(fresh0.vals()));
        // Value-only update, then replay vs. fresh.
        let mut a2 = a.clone();
        a2.vals_mut().copy_from_slice(&new_a_vals);
        let mut b2 = b.clone();
        b2.vals_mut().copy_from_slice(&new_b_vals);
        prop_assert!(plan.matches(&a2, &b2));
        let fresh = spgemm_hash(&a2, &b2);
        let replay = plan.execute(&a2, &b2);
        prop_assert_eq!(replay.indptr(), fresh.indptr());
        prop_assert_eq!(replay.indices(), fresh.indices());
        prop_assert_eq!(bits(replay.vals()), bits(fresh.vals()));
    }

    #[test]
    fn sort_by_key_matches_std_sort(pairs in proptest::collection::vec((0u64..50, -10i64..10), 0..200)) {
        let mut keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        let mut vals: Vec<i64> = pairs.iter().map(|&(_, v)| v).collect();
        prims::stable_sort_by_key(&mut keys, &mut vals);

        let mut reference = pairs.clone();
        reference.sort_by_key(|&(k, _)| k); // stable
        let ref_keys: Vec<u64> = reference.iter().map(|&(k, _)| k).collect();
        let ref_vals: Vec<i64> = reference.iter().map(|&(_, v)| v).collect();
        prop_assert_eq!(keys, ref_keys);
        prop_assert_eq!(vals, ref_vals);
    }

    #[test]
    fn reduce_by_key_preserves_total(keys in proptest::collection::vec(0u64..20, 0..100)) {
        let mut keys = keys;
        keys.sort();
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64 + 0.5).collect();
        let total: f64 = vals.iter().sum();
        let (out_keys, out_vals) = prims::reduce_by_key(&keys, &vals);
        // Totals preserved, keys strictly increasing (all duplicates merged).
        let out_total: f64 = out_vals.iter().sum();
        prop_assert!((total - out_total).abs() < 1e-9);
        prop_assert!(out_keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn coo_combine_preserves_entry_sums(
        triplets in proptest::collection::vec((0u64..8, 0u64..8, -4.0f64..4.0), 0..60)
    ) {
        let mut coo = Coo::new();
        let mut reference = std::collections::HashMap::new();
        for &(r, c, v) in &triplets {
            coo.push(r, c, v);
            *reference.entry((r, c)).or_insert(0.0) += v;
        }
        coo.sort_and_combine();
        prop_assert!(coo.is_sorted_and_combined());
        prop_assert_eq!(coo.len(), reference.len());
        for i in 0..coo.len() {
            let expected = reference[&(coo.rows[i], coo.cols[i])];
            prop_assert!((coo.vals[i] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_dense_round_trip(d in dense(1, 1).prop_flat_map(|_| (1usize..8, 1usize..8))
        .prop_flat_map(|(r, c)| dense(r, c))) {
        let a = Csr::from_dense(&d);
        prop_assert_eq!(a.to_dense(), d);
    }

    #[test]
    fn spmv_matches_dense((d, x) in (1usize..10, 1usize..10).prop_flat_map(|(r, c)| {
        (dense(r, c), proptest::collection::vec(-3.0f64..3.0, c))
    })) {
        let a = Csr::from_dense(&d);
        let y = a.spmv(&x);
        for (r, row) in d.iter().enumerate() {
            let expected: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[r] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involution(d in (1usize..10, 1usize..10).prop_flat_map(|(r, c)| dense(r, c))) {
        let a = Csr::from_dense(&d);
        prop_assert_eq!(a.transpose().transpose().to_dense(), d);
    }

    #[test]
    fn transpose_swaps_spmv((d, x, y) in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        (dense(r, c),
         proptest::collection::vec(-2.0f64..2.0, c),
         proptest::collection::vec(-2.0f64..2.0, r))
    })) {
        // yᵀ(Ax) == (Aᵀy)ᵀx
        let a = Csr::from_dense(&d);
        let ax = a.spmv(&x);
        let aty = a.transpose().spmv(&y);
        let lhs: f64 = y.iter().zip(&ax).map(|(p, q)| p * q).sum();
        let rhs: f64 = aty.iter().zip(&x).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn add_matches_dense((da, db) in (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        (dense(r, c), dense(r, c))
    })) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let c = a.add(&b);
        for r in 0..da.len() {
            for j in 0..da[0].len() {
                prop_assert!((c.get(r, j) - (da[r][j] + db[r][j])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn spgemm_hash_matches_dense((da, db) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (dense(m, k), dense(k, n)))) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let c = spgemm_hash(&a, &b);
        prop_assert!(close(&c.to_dense(), &dense_mul(&da, &db)));
    }

    #[test]
    fn spgemm_esc_matches_hash((da, db) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (dense(m, k), dense(k, n)))) {
        let a = Csr::from_dense(&da);
        let b = Csr::from_dense(&db);
        let h = spgemm_hash(&a, &b);
        let e = spgemm_esc(&a, &b);
        prop_assert!(close(&h.to_dense(), &e.to_dense()));
    }

    #[test]
    fn galerkin_matches_dense_triple((da, dp) in (2usize..8, 1usize..6)
        .prop_flat_map(|(n, nc)| (dense(n, n), dense(n, nc)))) {
        let a = Csr::from_dense(&da);
        let p = Csr::from_dense(&dp);
        let g = galerkin(&a, &p);
        let pt: Vec<Vec<f64>> = {
            let rows = dp.len();
            let cols = dp[0].len();
            (0..cols).map(|c| (0..rows).map(|r| dp[r][c]).collect()).collect()
        };
        let expected = dense_mul(&pt, &dense_mul(&da, &dp));
        prop_assert!(close(&g.to_dense(), &expected));
    }

    #[test]
    fn reduce_by_key_arbitrary_runs_match_serial_bitwise(
        lens in proptest::collection::vec(0usize..700, 0..32)
    ) {
        // Arbitrary run lengths (empty runs included); totals regularly
        // cross the parallel threshold, so both code paths are exercised.
        let mut keys = Vec::new();
        for (k, &l) in lens.iter().enumerate() {
            keys.extend(std::iter::repeat_n(k as u64, l));
        }
        let vals: Vec<f64> = (0..keys.len()).map(rounding_sensitive_val).collect();
        let (pk, pv) = prims::reduce_by_key(&keys, &vals);
        let (sk, sv) = reduce_by_key_reference(&keys, &vals);
        prop_assert_eq!(pk, sk);
        prop_assert_eq!(pv.len(), sv.len());
        for (a, b) in pv.iter().zip(&sv) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reduce_by_key_all_equal_keys_match_serial_bitwise(n in 0usize..20000) {
        // One run spanning the whole input (including sizes past the
        // parallel threshold, where every chunk boundary must snap away).
        let keys = vec![3u64; n];
        let vals: Vec<f64> = (0..n).map(rounding_sensitive_val).collect();
        let (pk, pv) = prims::reduce_by_key(&keys, &vals);
        let (sk, sv) = reduce_by_key_reference(&keys, &vals);
        prop_assert_eq!(pk, sk);
        prop_assert_eq!(pv.len(), sv.len());
        for (a, b) in pv.iter().zip(&sv) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn segmented_gather_sum_matches_serial_bitwise(
        (nseg, span) in (0usize..9000, 1usize..5)
    ) {
        // Segment lengths 0..=span derived from the segment index; perm
        // gathers with duplicates. Serial reference: per-segment ordered
        // accumulation.
        let counts: Vec<usize> = (0..nseg).map(|s| s.wrapping_mul(31) % (span + 1)).collect();
        let indptr = prims::exclusive_scan(&counts);
        let total = *indptr.last().unwrap();
        let m = total.max(1);
        let perm: Vec<u32> = (0..total).map(|p| (p.wrapping_mul(7919) % m) as u32).collect();
        let src: Vec<f64> = (0..m).map(rounding_sensitive_val).collect();
        let mut out: Vec<f64> = (0..nseg).map(|s| rounding_sensitive_val(s + 13)).collect();
        let mut reference = out.clone();
        prims::segmented_gather_sum(&indptr, &perm, &src, &mut out);
        for s in 0..nseg {
            let mut acc = 0.0;
            for &p in &perm[indptr[s]..indptr[s + 1]] {
                acc += src[p as usize];
            }
            reference[s] += acc;
        }
        for (a, b) in out.iter().zip(&reference) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn segmented_gather_sum_kahan_matches_serial_bitwise(
        (nseg, span) in (0usize..9000, 1usize..5)
    ) {
        let counts: Vec<usize> = (0..nseg).map(|s| s.wrapping_mul(17) % (span + 1)).collect();
        let indptr = prims::exclusive_scan(&counts);
        let total = *indptr.last().unwrap();
        let m = total.max(1);
        let perm: Vec<u32> = (0..total).map(|p| (p.wrapping_mul(6151) % m) as u32).collect();
        let src: Vec<f64> = (0..m).map(rounding_sensitive_val).collect();
        let mut out: Vec<f64> = (0..nseg).map(|s| rounding_sensitive_val(s + 7)).collect();
        let mut comp: Vec<f64> = (0..nseg).map(|s| rounding_sensitive_val(s + 29) * 1e-18).collect();
        let mut ref_out = out.clone();
        let mut ref_comp = comp.clone();
        prims::segmented_gather_sum_kahan(&indptr, &perm, &src, &mut out, &mut comp);
        for s in 0..nseg {
            let mut sum = ref_out[s];
            let mut carry = ref_comp[s];
            for &p in &perm[indptr[s]..indptr[s + 1]] {
                let y = src[p as usize] - carry;
                let t = sum + y;
                carry = (t - sum) - y;
                sum = t;
            }
            ref_out[s] = sum;
            ref_comp[s] = carry;
        }
        for s in 0..nseg {
            prop_assert_eq!(out[s].to_bits(), ref_out[s].to_bits());
            prop_assert_eq!(comp[s].to_bits(), ref_comp[s].to_bits());
        }
    }

    #[test]
    fn lower_upper_diag_decomposition(d in (2usize..8,).prop_flat_map(|(n,)| dense(n, n))) {
        let a = Csr::from_dense(&d);
        let rebuilt = a
            .strict_lower()
            .add(&a.strict_upper())
            .add(&Csr::from_diag(&a.diag()));
        // Same values everywhere.
        for (r, row) in d.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                prop_assert!((rebuilt.get(r, c) - v).abs() < 1e-12);
            }
        }
    }
}
