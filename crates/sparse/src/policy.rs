//! Kernel-backend selection: CSR vs. SELL-C-σ, per matrix.
//!
//! The roofline ledger (PR 5) shows SpMV well below the STREAM bound on
//! index-heavy CSR; SELL-C-σ ([`crate::sellcs`]) trades a small padding
//! overhead for u32 indices and lane-parallel rows. Whether the trade
//! wins depends on the row-length distribution: near-uniform rows pad
//! almost nothing, irregular rows pad a lot. [`KernelPolicy::Auto`]
//! decides per matrix from the row-length coefficient of variation.
//!
//! Selection sources, highest priority first:
//! 1. a thread-local override installed via [`install`] (the solver
//!    plumbs `SolverConfig::kernels` through this so tests never race on
//!    process-global env vars),
//! 2. the `EXAWIND_KERNELS` environment variable (`auto|csr|sellcs`),
//! 3. the default, [`KernelPolicy::Auto`].

use std::cell::Cell;

use crate::csr::Csr;

/// Which SpMV storage/backend to use for a local matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Decide per matrix from the row-length distribution.
    Auto,
    /// Always the scalar/blocked CSR path.
    Csr,
    /// Always convert to SELL-C-σ.
    Sellcs,
}

/// Concrete backend chosen for one matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Keep CSR storage (blocked 4-row SpMV).
    Csr,
    /// Build the SELL-C-σ sibling and route SpMV through it.
    Sellcs,
}

/// Matrices smaller than this never get a SELL-C-σ sibling under
/// `Auto`: the conversion cost cannot amortize.
const AUTO_MIN_ROWS: usize = 64;

/// `Auto` accepts SELL-C-σ when the row-length coefficient of variation
/// (stddev / mean) is at most this: beyond it the chunk padding starts
/// to outweigh the u32-index savings.
const AUTO_MAX_CV: f64 = 0.5;

impl KernelPolicy {
    /// Parse a policy name as accepted by `EXAWIND_KERNELS`.
    pub fn parse(s: &str) -> Option<KernelPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelPolicy::Auto),
            "csr" => Some(KernelPolicy::Csr),
            "sellcs" | "sell-c-sigma" => Some(KernelPolicy::Sellcs),
            _ => None,
        }
    }

    /// Policy from `EXAWIND_KERNELS`, defaulting to `Auto`. Unknown
    /// values fall back to `Auto` rather than aborting mid-solve.
    pub fn from_env() -> KernelPolicy {
        match std::env::var("EXAWIND_KERNELS") {
            Ok(v) if !v.is_empty() => KernelPolicy::parse(&v).unwrap_or(KernelPolicy::Auto),
            _ => KernelPolicy::Auto,
        }
    }

    /// Stable lowercase label for telemetry run events and perf keys.
    pub fn label(self) -> &'static str {
        match self {
            KernelPolicy::Auto => "auto",
            KernelPolicy::Csr => "csr",
            KernelPolicy::Sellcs => "sellcs",
        }
    }

    /// Pick the backend for one local matrix.
    pub fn choose(self, a: &Csr) -> KernelChoice {
        match self {
            KernelPolicy::Csr => KernelChoice::Csr,
            KernelPolicy::Sellcs => KernelChoice::Sellcs,
            KernelPolicy::Auto => {
                let n = a.nrows();
                if n < AUTO_MIN_ROWS {
                    return KernelChoice::Csr;
                }
                let indptr = a.indptr();
                let mean = a.nnz() as f64 / n as f64;
                if mean == 0.0 {
                    return KernelChoice::Csr;
                }
                let var = (0..n)
                    .map(|r| {
                        let d = (indptr[r + 1] - indptr[r]) as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / n as f64;
                if var.sqrt() / mean <= AUTO_MAX_CV {
                    KernelChoice::Sellcs
                } else {
                    KernelChoice::Csr
                }
            }
        }
    }
}

/// Default SELL-C-σ sort scope when `EXAWIND_SELLCS_SIGMA` is unset.
pub const DEFAULT_SIGMA: usize = 256;

/// σ (row-sorting window, in rows) for SELL-C-σ conversion:
/// `EXAWIND_SELLCS_SIGMA` rounded up to a multiple of the chunk height,
/// defaulting to [`DEFAULT_SIGMA`].
pub fn sigma_from_env() -> usize {
    let raw = std::env::var("EXAWIND_SELLCS_SIGMA")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_SIGMA);
    crate::sellcs::round_sigma(raw)
}

thread_local! {
    /// Per-thread policy override; see the module docs for precedence.
    static OVERRIDE: Cell<Option<KernelPolicy>> = const { Cell::new(None) };
}

/// Install a policy override on the current thread (rank threads call
/// this with `SolverConfig::kernels` before building any matrices).
pub fn install(p: KernelPolicy) {
    OVERRIDE.with(|c| c.set(Some(p)));
}

/// The active policy on this thread: the installed override if any,
/// otherwise the environment selection.
pub fn current() -> KernelPolicy {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(KernelPolicy::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for p in [KernelPolicy::Auto, KernelPolicy::Csr, KernelPolicy::Sellcs] {
            assert_eq!(KernelPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(KernelPolicy::parse("SELLCS"), Some(KernelPolicy::Sellcs));
        assert_eq!(KernelPolicy::parse("nope"), None);
    }

    #[test]
    fn forced_policies_ignore_shape() {
        let a = Csr::identity(3);
        assert_eq!(KernelPolicy::Csr.choose(&a), KernelChoice::Csr);
        assert_eq!(KernelPolicy::Sellcs.choose(&a), KernelChoice::Sellcs);
    }

    #[test]
    fn auto_takes_uniform_rows_and_rejects_irregular() {
        // Uniform 5-point-stencil-like matrix: every row the same length.
        let uniform = Csr::identity(128);
        assert_eq!(KernelPolicy::Auto.choose(&uniform), KernelChoice::Sellcs);

        // One dense row among singletons: CV far above the gate.
        let n = 128;
        let mut rows = vec![vec![0.0; n]; n];
        for (r, row) in rows.iter_mut().enumerate() {
            row[r] = 1.0;
        }
        rows[0] = vec![1.0; n];
        let skewed = Csr::from_dense(&rows);
        assert_eq!(KernelPolicy::Auto.choose(&skewed), KernelChoice::Csr);

        // Tiny matrices never convert.
        assert_eq!(KernelPolicy::Auto.choose(&Csr::identity(8)), KernelChoice::Csr);
    }

    #[test]
    fn thread_local_override_wins_and_is_scoped() {
        install(KernelPolicy::Sellcs);
        assert_eq!(current(), KernelPolicy::Sellcs);
        install(KernelPolicy::Csr);
        assert_eq!(current(), KernelPolicy::Csr);
        let other = std::thread::spawn(|| current() == KernelPolicy::from_env());
        assert!(other.join().unwrap(), "override leaked across threads");
        install(KernelPolicy::Auto);
    }
}
