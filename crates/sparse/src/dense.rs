//! Dense vector kernels (BLAS-1) used by the Krylov solvers and smoothers.

use rayon::prelude::*;

/// Threshold below which loops run sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

/// y += a·x.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if x.len() >= PAR_THRESHOLD {
        y.par_iter_mut().zip(x).for_each(|(yi, &xi)| *yi += a * xi);
    } else {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }
}

/// w = a·x + b·y.
pub fn waxpby(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "waxpby length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby output length mismatch");
    if w.len() >= PAR_THRESHOLD {
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, wi)| *wi = a * x[i] + b * y[i]);
    } else {
        for i in 0..w.len() {
            w[i] = a * x[i] + b * y[i];
        }
    }
}

/// xᵀy.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    if x.len() >= PAR_THRESHOLD {
        x.par_iter().zip(y).map(|(&a, &b)| a * b).sum()
    } else {
        x.iter().zip(y).map(|(&a, &b)| a * b).sum()
    }
}

/// ‖x‖₂.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// x *= a.
pub fn scale(a: f64, x: &mut [f64]) {
    if x.len() >= PAR_THRESHOLD {
        x.par_iter_mut().for_each(|xi| *xi *= a);
    } else {
        for xi in x {
            *xi *= a;
        }
    }
}

/// Element-wise multiply: out[i] = d[i]·x[i] (diagonal scaling).
pub fn diag_scale(d: &[f64], x: &[f64], out: &mut [f64]) {
    assert_eq!(d.len(), x.len(), "diag_scale length mismatch");
    assert_eq!(d.len(), out.len(), "diag_scale output length mismatch");
    if out.len() >= PAR_THRESHOLD {
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, o)| *o = d[i] * x[i]);
    } else {
        for i in 0..out.len() {
            out[i] = d[i] * x[i];
        }
    }
}

/// Jacobi-Richardson inner update of the two-stage GS smoothers
/// (Eqs. 5–7 / 11–14 of the paper): `g[i] = (r[i] − lg[i]) · inv_diag[i]`.
/// Purely element-wise, so the parallel path is trivially bitwise
/// deterministic at any thread count.
pub fn jacobi_update(r: &[f64], lg: &[f64], inv_diag: &[f64], g: &mut [f64]) {
    assert_eq!(r.len(), g.len(), "jacobi_update length mismatch");
    assert_eq!(lg.len(), g.len(), "jacobi_update length mismatch");
    assert_eq!(inv_diag.len(), g.len(), "jacobi_update length mismatch");
    if g.len() >= PAR_THRESHOLD {
        g.par_iter_mut()
            .enumerate()
            .for_each(|(i, gi)| *gi = (r[i] - lg[i]) * inv_diag[i]);
    } else {
        for i in 0..g.len() {
            g[i] = (r[i] - lg[i]) * inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_small_and_large() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);

        let n = PAR_THRESHOLD + 1;
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        axpy(0.5, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.5));
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn waxpby_combines() {
        let mut w = vec![0.0; 2];
        waxpby(2.0, &[1.0, 0.0], 3.0, &[0.0, 1.0], &mut w);
        assert_eq!(w, vec![2.0, 3.0]);
    }

    #[test]
    fn scale_and_diag_scale() {
        let mut x = vec![1.0, -2.0];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0]);

        let mut out = vec![0.0; 2];
        diag_scale(&[2.0, 0.5], &[4.0, 4.0], &mut out);
        assert_eq!(out, vec![8.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn jacobi_update_small_and_large() {
        let mut g = vec![0.0; 2];
        jacobi_update(&[4.0, 9.0], &[1.0, 3.0], &[0.5, 2.0], &mut g);
        assert_eq!(g, vec![1.5, 12.0]);

        // Large path must agree bitwise with the serial formula.
        let n = PAR_THRESHOLD + 3;
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let lg: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let inv: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut g = vec![0.0; n];
        jacobi_update(&r, &lg, &inv, &mut g);
        for i in 0..n {
            assert_eq!(g[i], (r[i] - lg[i]) * inv[i]);
        }
    }
}
