//! Thrust-style data-parallel primitives.
//!
//! Algorithm 1 and 2 of the paper are written in terms of
//! `stable_sort_by_key` and `reduce_by_key`; these are those primitives.
//! The paper notes that "other GPU architectures can be supported provided
//! implementations exist for the stable_sort_by_key and reduce_by_key
//! algorithms" — this module is exactly that implementation for the
//! rayon/CPU backend.

use rayon::prelude::*;

/// Threshold below which sorts run sequentially (rayon overhead dominates).
const PAR_THRESHOLD: usize = 1 << 13;

/// Stable sort of `(key, value)` pairs by key.
///
/// Equivalent of `thrust::stable_sort_by_key`.
pub fn stable_sort_by_key<K, V>(keys: &mut [K], vals: &mut [V])
where
    K: Ord + Copy + Send + Sync,
    V: Copy + Send + Sync,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let mut pairs: Vec<(K, V)> = keys.iter().copied().zip(vals.iter().copied()).collect();
    if pairs.len() >= PAR_THRESHOLD {
        pairs.par_sort_by_key(|&(k, _)| k);
    } else {
        pairs.sort_by_key(|&(k, _)| k);
    }
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        keys[i] = k;
        vals[i] = v;
    }
}

/// Stable sort of `(key, value1, value2)` triples by key.
pub fn stable_sort_by_key2<K, V1, V2>(keys: &mut [K], vals1: &mut [V1], vals2: &mut [V2])
where
    K: Ord + Copy + Send + Sync,
    V1: Copy + Send + Sync,
    V2: Copy + Send + Sync,
{
    assert_eq!(keys.len(), vals1.len(), "key/value1 length mismatch");
    assert_eq!(keys.len(), vals2.len(), "key/value2 length mismatch");
    let mut triples: Vec<(K, V1, V2)> = keys
        .iter()
        .zip(vals1.iter())
        .zip(vals2.iter())
        .map(|((&k, &v1), &v2)| (k, v1, v2))
        .collect();
    if triples.len() >= PAR_THRESHOLD {
        triples.par_sort_by_key(|&(k, _, _)| k);
    } else {
        triples.sort_by_key(|&(k, _, _)| k);
    }
    for (i, (k, v1, v2)) in triples.into_iter().enumerate() {
        keys[i] = k;
        vals1[i] = v1;
        vals2[i] = v2;
    }
}

/// Fixed segment width for the parallel `reduce_by_key` path. A compile-time
/// constant (never derived from the thread count) so segment boundaries — and
/// therefore the work partition — are identical no matter how many threads
/// execute them.
const REDUCE_CHUNK: usize = 1 << 12;

/// Reduce runs of equal adjacent keys, summing their values.
///
/// Equivalent of `thrust::reduce_by_key` with a `plus` reduction: the
/// input is expected to be key-sorted (as after [`stable_sort_by_key`]);
/// the output contains each distinct key once, with the sum of its values.
///
/// **Determinism.** Every run of equal keys is summed left-to-right in input
/// order, in both the serial and the parallel path. The parallel path cuts
/// the input at fixed `REDUCE_CHUNK` boundaries *snapped forward to the next
/// run start*, so no run ever spans two segments; each segment is then
/// reduced serially and the per-segment outputs are concatenated in segment
/// order. The result is bitwise identical to the serial reduction for any
/// thread count, including one.
pub fn reduce_by_key<K>(keys: &[K], vals: &[f64]) -> (Vec<K>, Vec<f64>)
where
    K: Eq + Copy + Send + Sync,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let n = keys.len();
    if n < PAR_THRESHOLD {
        return reduce_by_key_serial(keys, vals);
    }

    // Segment boundaries: multiples of REDUCE_CHUNK, snapped forward past any
    // run of equal keys straddling them.
    let mut bounds = vec![0usize];
    let mut b = REDUCE_CHUNK;
    while b < n {
        let mut snapped = b;
        while snapped < n && keys[snapped] == keys[snapped - 1] {
            snapped += 1;
        }
        if snapped < n && snapped > *bounds.last().unwrap() {
            bounds.push(snapped);
        }
        b += REDUCE_CHUNK;
    }
    bounds.push(n);

    let nseg = bounds.len() - 1;
    let parts: Vec<(Vec<K>, Vec<f64>)> = (0..nseg)
        .into_par_iter()
        .map(|s| reduce_by_key_serial(&keys[bounds[s]..bounds[s + 1]], &vals[bounds[s]..bounds[s + 1]]))
        .collect();

    let total: usize = parts.iter().map(|(k, _)| k.len()).sum();
    let mut out_keys = Vec::with_capacity(total);
    let mut out_vals = Vec::with_capacity(total);
    for (k, v) in parts {
        out_keys.extend(k);
        out_vals.extend(v);
    }
    (out_keys, out_vals)
}

fn reduce_by_key_serial<K>(keys: &[K], vals: &[f64]) -> (Vec<K>, Vec<f64>)
where
    K: Eq + Copy,
{
    let mut out_keys = Vec::with_capacity(keys.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    let mut i = 0;
    while i < keys.len() {
        let k = keys[i];
        let mut acc = vals[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == k {
            acc += vals[j];
            j += 1;
        }
        out_keys.push(k);
        out_vals.push(acc);
        i = j;
    }
    (out_keys, out_vals)
}

/// Segmented ordered gather-sum: for each segment `s`,
///
/// ```text
/// out[s] += Σ_{p in indptr[s]..indptr[s+1]} src[perm[p]]   (summed in p order)
/// ```
///
/// This is the deterministic replacement for an atomic scatter-add: instead
/// of many writers racing on `out[s]`, a precomputed permutation groups each
/// destination's contributions, and one task sums them in a fixed order.
/// Segments are independent, so the loop parallelises over `s` with no
/// change to any segment's summation order (§3.2's assembly scatter, minus
/// the non-determinism the paper accepts on GPUs).
pub fn segmented_gather_sum(indptr: &[usize], perm: &[u32], src: &[f64], out: &mut [f64]) {
    assert_eq!(indptr.len(), out.len() + 1, "indptr/out length mismatch");
    assert_eq!(*indptr.last().unwrap(), perm.len(), "indptr/perm length mismatch");
    let run = |(s, o): (usize, &mut f64)| {
        let mut acc = 0.0;
        for &p in &perm[indptr[s]..indptr[s + 1]] {
            acc += src[p as usize];
        }
        *o += acc;
    };
    if out.len() >= PAR_THRESHOLD {
        out.par_iter_mut().enumerate().map(|(s, o)| (s, o)).for_each(run);
    } else {
        for (s, o) in out.iter_mut().enumerate() {
            run((s, o));
        }
    }
}

/// Kahan-compensated variant of [`segmented_gather_sum`]: continues each
/// segment's `(sum, compensation)` state in contribution order, exactly as a
/// serial loop of compensated adds would. Per-segment state is independent,
/// so parallelising over segments is bitwise exact.
pub fn segmented_gather_sum_kahan(
    indptr: &[usize],
    perm: &[u32],
    src: &[f64],
    out: &mut [f64],
    comp: &mut [f64],
) {
    assert_eq!(indptr.len(), out.len() + 1, "indptr/out length mismatch");
    assert_eq!(out.len(), comp.len(), "out/comp length mismatch");
    assert_eq!(*indptr.last().unwrap(), perm.len(), "indptr/perm length mismatch");
    let run = |(s, (o, c)): (usize, (&mut f64, &mut f64))| {
        let mut sum = *o;
        let mut carry = *c;
        for &p in &perm[indptr[s]..indptr[s + 1]] {
            let y = src[p as usize] - carry;
            let t = sum + y;
            carry = (t - sum) - y;
            sum = t;
        }
        *o = sum;
        *c = carry;
    };
    if out.len() >= PAR_THRESHOLD {
        out.par_iter_mut()
            .zip(&mut comp[..])
            .enumerate()
            .map(|(s, oc)| (s, oc))
            .for_each(run);
    } else {
        for (s, oc) in out.iter_mut().zip(comp.iter_mut()).enumerate() {
            run((s, oc));
        }
    }
}

/// Exclusive prefix sum; returns a vector one longer than the input whose
/// last element is the total (CSR `indptr` convention).
pub fn exclusive_scan(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Gather: `out[i] = src[map[i]]`.
pub fn gather<T: Copy + Send + Sync>(src: &[T], map: &[usize]) -> Vec<T> {
    if map.len() >= PAR_THRESHOLD {
        map.par_iter().map(|&i| src[i]).collect()
    } else {
        map.iter().map(|&i| src[i]).collect()
    }
}

/// Scatter-add: `dst[map[i]] += src[i]`.
///
/// On the GPU this is the atomic-update kernel of §3.2; here duplicates in
/// `map` are handled sequentially, which makes the result deterministic
/// (the paper explicitly trades bitwise reproducibility for speed — see
/// DESIGN.md for why we keep determinism).
pub fn scatter_add(dst: &mut [f64], map: &[usize], src: &[f64]) {
    assert_eq!(map.len(), src.len(), "map/src length mismatch");
    for (&i, &v) in map.iter().zip(src) {
        dst[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_by_key_sorts_and_is_stable() {
        let mut keys = vec![3u64, 1, 3, 2, 1];
        let mut vals = vec![30.0, 10.0, 31.0, 20.0, 11.0];
        stable_sort_by_key(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 1, 2, 3, 3]);
        // Stability: equal keys keep input order.
        assert_eq!(vals, vec![10.0, 11.0, 20.0, 30.0, 31.0]);
    }

    #[test]
    fn sort_by_key2_permutes_both_values() {
        let mut keys = vec![2u64, 0, 1];
        let mut a = vec![20usize, 0, 10];
        let mut b = vec![2.0, 0.0, 1.0];
        stable_sort_by_key2(&mut keys, &mut a, &mut b);
        assert_eq!(keys, vec![0, 1, 2]);
        assert_eq!(a, vec![0, 10, 20]);
        assert_eq!(b, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn sort_large_parallel_path() {
        let n = PAR_THRESHOLD + 17;
        let mut keys: Vec<u64> = (0..n as u64).rev().collect();
        let mut vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        stable_sort_by_key(&mut keys, &mut vals);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(vals[0], (n - 1) as f64);
    }

    #[test]
    fn reduce_by_key_sums_runs() {
        let keys = vec![1u64, 1, 2, 5, 5, 5];
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (k, v) = reduce_by_key(&keys, &vals);
        assert_eq!(k, vec![1, 2, 5]);
        assert_eq!(v, vec![3.0, 3.0, 15.0]);
    }

    #[test]
    fn reduce_by_key_empty() {
        let (k, v) = reduce_by_key::<u64>(&[], &[]);
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn reduce_by_key_no_duplicates_is_identity() {
        let keys = vec![1u64, 2, 3];
        let vals = vec![1.0, 2.0, 3.0];
        let (k, v) = reduce_by_key(&keys, &vals);
        assert_eq!(k, keys);
        assert_eq!(v, vals);
    }

    #[test]
    fn exclusive_scan_is_indptr() {
        assert_eq!(exclusive_scan(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(exclusive_scan(&[]), vec![0]);
    }

    #[test]
    fn gather_and_scatter_add() {
        let src = vec![10.0, 20.0, 30.0];
        assert_eq!(gather(&src, &[2, 0, 0]), vec![30.0, 10.0, 10.0]);

        let mut dst = vec![0.0; 3];
        scatter_add(&mut dst, &[0, 2, 0], &[1.0, 2.0, 3.0]);
        assert_eq!(dst, vec![4.0, 0.0, 2.0]);
    }

    #[test]
    fn reduce_by_key_parallel_path_matches_serial_bitwise() {
        // Long runs of equal keys crossing the REDUCE_CHUNK boundaries, with
        // values chosen so that reassociation would change the rounding.
        let n = PAR_THRESHOLD + 3 * REDUCE_CHUNK + 41;
        let keys: Vec<u64> = (0..n).map(|i| (i / 1777) as u64).collect();
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i % 613) as f64 - 300.0) * 1.0e-3 + 1.0e-12 * i as f64)
            .collect();
        let (pk, pv) = reduce_by_key(&keys, &vals);
        let (sk, sv) = reduce_by_key_serial(&keys, &vals);
        assert_eq!(pk, sk);
        assert_eq!(pv.len(), sv.len());
        for (a, b) in pv.iter().zip(&sv) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reduce_by_key_parallel_single_giant_run() {
        // One run spanning every chunk boundary: the snap-forward must
        // collapse all interior boundaries.
        let n = PAR_THRESHOLD + 2 * REDUCE_CHUNK;
        let keys = vec![7u64; n];
        let vals: Vec<f64> = (0..n).map(|i| 1.0 + 1.0e-14 * i as f64).collect();
        let (pk, pv) = reduce_by_key(&keys, &vals);
        let (sk, sv) = reduce_by_key_serial(&keys, &vals);
        assert_eq!(pk, sk);
        assert_eq!(pv[0].to_bits(), sv[0].to_bits());
    }

    #[test]
    fn segmented_gather_sum_matches_ordered_serial() {
        // 3 segments with interleaved source contributions.
        let indptr = vec![0usize, 3, 3, 5];
        let perm = vec![4u32, 0, 2, 1, 3];
        let src = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let mut out = vec![1.0, 2.0, 3.0];
        segmented_gather_sum(&indptr, &perm, &src, &mut out);
        assert_eq!(out[0], 1.0 + (0.5 + 0.1 + 0.3));
        assert_eq!(out[1], 2.0); // empty segment untouched
        assert_eq!(out[2], 3.0 + (0.2 + 0.4));
    }

    #[test]
    fn segmented_gather_sum_kahan_continues_state() {
        let indptr = vec![0usize, 2];
        let perm = vec![0u32, 1];
        let src = vec![1.0e-16, 1.0e-16];
        let mut out = vec![1.0];
        let mut comp = vec![0.0];
        segmented_gather_sum_kahan(&indptr, &perm, &src, &mut out, &mut comp);
        // Plain summation would lose both tiny addends; Kahan keeps them in
        // the compensation term.
        let mut sum = 1.0f64;
        let mut carry = 0.0f64;
        for v in [1.0e-16, 1.0e-16] {
            let y = v - carry;
            let t = sum + y;
            carry = (t - sum) - y;
            sum = t;
        }
        assert_eq!(out[0].to_bits(), sum.to_bits());
        assert_eq!(comp[0].to_bits(), carry.to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut keys = vec![1u64];
        let mut vals: Vec<f64> = vec![];
        stable_sort_by_key(&mut keys, &mut vals);
    }
}
