//! Thrust-style data-parallel primitives.
//!
//! Algorithm 1 and 2 of the paper are written in terms of
//! `stable_sort_by_key` and `reduce_by_key`; these are those primitives.
//! The paper notes that "other GPU architectures can be supported provided
//! implementations exist for the stable_sort_by_key and reduce_by_key
//! algorithms" — this module is exactly that implementation for the
//! rayon/CPU backend.

use rayon::prelude::*;

/// Threshold below which sorts run sequentially (rayon overhead dominates).
const PAR_THRESHOLD: usize = 1 << 13;

/// Stable sort of `(key, value)` pairs by key.
///
/// Equivalent of `thrust::stable_sort_by_key`.
pub fn stable_sort_by_key<K, V>(keys: &mut Vec<K>, vals: &mut Vec<V>)
where
    K: Ord + Copy + Send,
    V: Copy + Send,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let mut pairs: Vec<(K, V)> = keys.iter().copied().zip(vals.iter().copied()).collect();
    if pairs.len() >= PAR_THRESHOLD {
        pairs.par_sort_by_key(|&(k, _)| k);
    } else {
        pairs.sort_by_key(|&(k, _)| k);
    }
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        keys[i] = k;
        vals[i] = v;
    }
}

/// Stable sort of `(key, value1, value2)` triples by key.
pub fn stable_sort_by_key2<K, V1, V2>(keys: &mut Vec<K>, vals1: &mut Vec<V1>, vals2: &mut Vec<V2>)
where
    K: Ord + Copy + Send,
    V1: Copy + Send,
    V2: Copy + Send,
{
    assert_eq!(keys.len(), vals1.len(), "key/value1 length mismatch");
    assert_eq!(keys.len(), vals2.len(), "key/value2 length mismatch");
    let mut triples: Vec<(K, V1, V2)> = keys
        .iter()
        .zip(vals1.iter())
        .zip(vals2.iter())
        .map(|((&k, &v1), &v2)| (k, v1, v2))
        .collect();
    if triples.len() >= PAR_THRESHOLD {
        triples.par_sort_by_key(|&(k, _, _)| k);
    } else {
        triples.sort_by_key(|&(k, _, _)| k);
    }
    for (i, (k, v1, v2)) in triples.into_iter().enumerate() {
        keys[i] = k;
        vals1[i] = v1;
        vals2[i] = v2;
    }
}

/// Reduce runs of equal adjacent keys, summing their values.
///
/// Equivalent of `thrust::reduce_by_key` with a `plus` reduction: the
/// input is expected to be key-sorted (as after [`stable_sort_by_key`]);
/// the output contains each distinct key once, with the sum of its values.
pub fn reduce_by_key<K>(keys: &[K], vals: &[f64]) -> (Vec<K>, Vec<f64>)
where
    K: Eq + Copy,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let mut out_keys = Vec::with_capacity(keys.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    let mut i = 0;
    while i < keys.len() {
        let k = keys[i];
        let mut acc = vals[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == k {
            acc += vals[j];
            j += 1;
        }
        out_keys.push(k);
        out_vals.push(acc);
        i = j;
    }
    (out_keys, out_vals)
}

/// Exclusive prefix sum; returns a vector one longer than the input whose
/// last element is the total (CSR `indptr` convention).
pub fn exclusive_scan(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Gather: `out[i] = src[map[i]]`.
pub fn gather<T: Copy + Send + Sync>(src: &[T], map: &[usize]) -> Vec<T> {
    if map.len() >= PAR_THRESHOLD {
        map.par_iter().map(|&i| src[i]).collect()
    } else {
        map.iter().map(|&i| src[i]).collect()
    }
}

/// Scatter-add: `dst[map[i]] += src[i]`.
///
/// On the GPU this is the atomic-update kernel of §3.2; here duplicates in
/// `map` are handled sequentially, which makes the result deterministic
/// (the paper explicitly trades bitwise reproducibility for speed — see
/// DESIGN.md for why we keep determinism).
pub fn scatter_add(dst: &mut [f64], map: &[usize], src: &[f64]) {
    assert_eq!(map.len(), src.len(), "map/src length mismatch");
    for (&i, &v) in map.iter().zip(src) {
        dst[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_by_key_sorts_and_is_stable() {
        let mut keys = vec![3u64, 1, 3, 2, 1];
        let mut vals = vec![30.0, 10.0, 31.0, 20.0, 11.0];
        stable_sort_by_key(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 1, 2, 3, 3]);
        // Stability: equal keys keep input order.
        assert_eq!(vals, vec![10.0, 11.0, 20.0, 30.0, 31.0]);
    }

    #[test]
    fn sort_by_key2_permutes_both_values() {
        let mut keys = vec![2u64, 0, 1];
        let mut a = vec![20usize, 0, 10];
        let mut b = vec![2.0, 0.0, 1.0];
        stable_sort_by_key2(&mut keys, &mut a, &mut b);
        assert_eq!(keys, vec![0, 1, 2]);
        assert_eq!(a, vec![0, 10, 20]);
        assert_eq!(b, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn sort_large_parallel_path() {
        let n = PAR_THRESHOLD + 17;
        let mut keys: Vec<u64> = (0..n as u64).rev().collect();
        let mut vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        stable_sort_by_key(&mut keys, &mut vals);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(vals[0], (n - 1) as f64);
    }

    #[test]
    fn reduce_by_key_sums_runs() {
        let keys = vec![1u64, 1, 2, 5, 5, 5];
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (k, v) = reduce_by_key(&keys, &vals);
        assert_eq!(k, vec![1, 2, 5]);
        assert_eq!(v, vec![3.0, 3.0, 15.0]);
    }

    #[test]
    fn reduce_by_key_empty() {
        let (k, v) = reduce_by_key::<u64>(&[], &[]);
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn reduce_by_key_no_duplicates_is_identity() {
        let keys = vec![1u64, 2, 3];
        let vals = vec![1.0, 2.0, 3.0];
        let (k, v) = reduce_by_key(&keys, &vals);
        assert_eq!(k, keys);
        assert_eq!(v, vals);
    }

    #[test]
    fn exclusive_scan_is_indptr() {
        assert_eq!(exclusive_scan(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(exclusive_scan(&[]), vec![0]);
    }

    #[test]
    fn gather_and_scatter_add() {
        let src = vec![10.0, 20.0, 30.0];
        assert_eq!(gather(&src, &[2, 0, 0]), vec![30.0, 10.0, 10.0]);

        let mut dst = vec![0.0; 3];
        scatter_add(&mut dst, &[0, 2, 0], &[1.0, 2.0, 3.0]);
        assert_eq!(dst, vec![4.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut keys = vec![1u64];
        let mut vals: Vec<f64> = vec![];
        stable_sort_by_key(&mut keys, &mut vals);
    }
}
