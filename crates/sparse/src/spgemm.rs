//! Sparse matrix-matrix multiplication (SpGEMM).
//!
//! The paper's AMG setup builds coarse operators with Galerkin triple
//! products, and reports that hypre's **hash-based** SpGEMM has superior
//! throughput to the sort-based cuSPARSE `csrgemm` of the day (§5.1).
//! Both algorithms are implemented here:
//!
//! - [`spgemm_hash`]: per-row open-addressing hash accumulation (hypre's
//!   approach, the default everywhere in this workspace);
//! - [`spgemm_esc`]: expand-sort-compress via the Thrust-style primitives
//!   (the cuSPARSE-style comparator used by the `spgemm` bench).

use rayon::prelude::*;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::prims;

/// Threshold below which the row loop runs sequentially.
const PAR_THRESHOLD: usize = 1 << 11;

const EMPTY: usize = usize::MAX;

/// Open-addressing accumulator for one output row.
struct HashRow {
    keys: Vec<usize>,
    vals: Vec<f64>,
    mask: usize,
    len: usize,
}

impl HashRow {
    fn with_capacity(expected: usize) -> Self {
        // Load factor 1/2; minimum capacity 16 keeps probes short on the
        // ~8-entries-per-row matrices the application produces.
        let cap = (expected.max(4) * 2).next_power_of_two().max(16);
        HashRow {
            keys: vec![EMPTY; cap],
            vals: vec![0.0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn insert(&mut self, key: usize, val: f64) {
        if self.len * 2 >= self.keys.len() {
            self.grow();
        }
        // Multiplicative hash; same scheme hypre uses on the GPU.
        let mut slot = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) & self.mask;
        loop {
            let k = self.keys[slot];
            if k == key {
                self.vals[slot] += val;
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; (self.mask + 1) * 2]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; (self.mask + 1) * 2]);
        self.mask = self.keys.len() - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }

    /// Drain into column-sorted (cols, vals).
    fn into_sorted(self) -> (Vec<usize>, Vec<f64>) {
        let mut pairs: Vec<(usize, f64)> = self
            .keys
            .into_iter()
            .zip(self.vals)
            .filter(|&(k, _)| k != EMPTY)
            .collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs.into_iter().unzip()
    }
}

/// C = A·B using per-row hash accumulation (hypre-style).
///
/// # Panics
///
/// Panics if `a.ncols() != b.nrows()`.
pub fn spgemm_hash(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let row_product = |r: usize| -> (Vec<usize>, Vec<f64>) {
        let (a_cols, a_vals) = a.row(r);
        // Upper bound on the output row size for table sizing.
        let bound: usize = a_cols
            .iter()
            .map(|&k| b.indptr()[k + 1] - b.indptr()[k])
            .sum();
        if bound == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut acc = HashRow::with_capacity(bound.min(b.ncols()));
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                acc.insert(j, av * bv);
            }
        }
        acc.into_sorted()
    };

    let rows: Vec<(Vec<usize>, Vec<f64>)> = if a.nrows() >= PAR_THRESHOLD {
        (0..a.nrows()).into_par_iter().map(row_product).collect()
    } else {
        (0..a.nrows()).map(row_product).collect()
    };
    assemble_rows(a.nrows(), b.ncols(), rows)
}

/// C = A·B by expand-sort-compress over COO triples (cuSPARSE-style
/// comparator; used by benches, not by the solver path).
pub fn spgemm_esc(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let mut expanded = Coo::new();
    for r in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(r);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                expanded.push(r as u64, j as u64, av * bv);
            }
        }
    }
    expanded.sort_and_combine();
    Csr::from_coo(a.nrows(), b.ncols(), &expanded)
}

/// Number of multiply-add pairs an SpGEMM performs (the "expansion size"),
/// used both for table sizing heuristics and the cost model.
pub fn spgemm_flops(a: &Csr, b: &Csr) -> u64 {
    let mut ops = 0u64;
    for &k in a.indices() {
        ops += (b.indptr()[k + 1] - b.indptr()[k]) as u64;
    }
    2 * ops
}

/// Symbolic/numeric split for repeated products with fixed structure.
///
/// The Galerkin RAP in AMG setup re-multiplies matrices whose sparsity
/// is unchanged between Picard re-solves — only the values move. A
/// `SpgemmPlan` captures, on the first (fresh) multiply, C's sparsity
/// plus one preassigned output slot per scalar product in expansion
/// order; [`SpgemmPlan::execute`] then skips the whole symbolic phase
/// (hash probing, growth, per-row sort, assembly) and streams values
/// straight into the slots.
///
/// ## Bitwise contract
///
/// `execute` reproduces [`spgemm_hash`] bit-for-bit: the hash path
/// accumulates each output entry in expansion order (A's row entries in
/// CSR order × B's row entries in CSR order; table growth moves partial
/// sums intact, and the final sort permutes entries, not their sums),
/// and the replay performs the same adds in the same order. The one
/// trap is the *first* contribution: `HashRow` **assigns** it, so the
/// replay seeds every slot with `-0.0` — the IEEE additive identity —
/// making `(-0.0) + x` bit-equal to the assignment of `x` even for
/// `x = -0.0`.
///
/// ## Staleness
///
/// A plan is valid only for operands whose patterns match the recorded
/// ones; [`SpgemmPlan::matches`] is the cheap check, and callers fall
/// back to a fresh [`spgemm_hash`] (and re-plan) on mismatch.
pub struct SpgemmPlan {
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    b_indptr: Vec<usize>,
    b_indices: Vec<usize>,
    c_indptr: Vec<usize>,
    c_indices: Vec<usize>,
    c_ncols: usize,
    /// Flat index into C's values for each product, in expansion order.
    slots: Vec<usize>,
}

impl SpgemmPlan {
    /// Fresh multiply + plan capture. Returns the product exactly as
    /// [`spgemm_hash`] would.
    pub fn new(a: &Csr, b: &Csr) -> (SpgemmPlan, Csr) {
        let c = spgemm_hash(a, b);
        let mut slots = Vec::new();
        for r in 0..a.nrows() {
            let (a_cols, _) = a.row(r);
            let (c_cols, _) = c.row(r);
            let c_base = c.indptr()[r];
            for &k in a_cols {
                let (b_cols, _) = b.row(k);
                for &j in b_cols {
                    let pos = c_cols.binary_search(&j).expect("product column missing from C");
                    slots.push(c_base + pos);
                }
            }
        }
        let plan = SpgemmPlan {
            a_indptr: a.indptr().to_vec(),
            a_indices: a.indices().to_vec(),
            b_indptr: b.indptr().to_vec(),
            b_indices: b.indices().to_vec(),
            c_indptr: c.indptr().to_vec(),
            c_indices: c.indices().to_vec(),
            c_ncols: c.ncols(),
            slots,
        };
        (plan, c)
    }

    /// Do `a` and `b` still have the structure this plan was built for?
    pub fn matches(&self, a: &Csr, b: &Csr) -> bool {
        a.indptr() == self.a_indptr.as_slice()
            && a.indices() == self.a_indices.as_slice()
            && b.indptr() == self.b_indptr.as_slice()
            && b.indices() == self.b_indices.as_slice()
    }

    /// Products (multiply-add pairs) the numeric pass performs.
    pub fn expansion(&self) -> usize {
        self.slots.len()
    }

    /// Stored entries of the output.
    pub fn c_nnz(&self) -> usize {
        *self.c_indptr.last().unwrap_or(&0)
    }

    /// Numeric-only multiply into the recorded structure.
    ///
    /// # Panics
    ///
    /// Debug-asserts [`SpgemmPlan::matches`]; callers are expected to
    /// have checked (collectively, in the distributed setting) first.
    pub fn execute(&self, a: &Csr, b: &Csr) -> Csr {
        debug_assert!(self.matches(a, b), "SpgemmPlan executed on stale operands");
        // -0.0 seed: see the bitwise contract in the type docs.
        let mut vals = vec![-0.0f64; self.c_nnz()];
        let mut cursor = 0;
        for r in 0..a.nrows() {
            let (a_cols, a_vals) = a.row(r);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (_, b_vals) = b.row(k);
                for &bv in b_vals {
                    vals[self.slots[cursor]] += av * bv;
                    cursor += 1;
                }
            }
        }
        Csr::from_parts(
            a.nrows(),
            self.c_ncols,
            self.c_indptr.clone(),
            self.c_indices.clone(),
            vals,
        )
    }
}

fn assemble_rows(nrows: usize, ncols: usize, rows: Vec<(Vec<usize>, Vec<f64>)>) -> Csr {
    let counts: Vec<usize> = rows.iter().map(|(c, _)| c.len()).collect();
    let indptr = prims::exclusive_scan(&counts);
    let nnz = *indptr.last().unwrap();
    let mut indices = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (c, v) in rows {
        indices.extend(c);
        vals.extend(v);
    }
    Csr::from_parts(nrows, ncols, indptr, indices, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(a: &Csr, b: &Csr) -> Vec<Vec<f64>> {
        let (da, db) = (a.to_dense(), b.to_dense());
        let mut out = vec![vec![0.0; b.ncols()]; a.nrows()];
        for i in 0..a.nrows() {
            for k in 0..a.ncols() {
                if da[i][k] != 0.0 {
                    for j in 0..b.ncols() {
                        out[i][j] += da[i][k] * db[k][j];
                    }
                }
            }
        }
        out
    }

    fn close(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
        a.iter().zip(b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| (x - y).abs() < 1e-12)
        })
    }

    #[test]
    fn hash_matches_dense_small() {
        let a = Csr::from_dense(&[vec![1.0, 2.0], vec![0.0, 3.0]]);
        let b = Csr::from_dense(&[vec![4.0, 0.0], vec![1.0, 5.0]]);
        let c = spgemm_hash(&a, &b);
        assert!(close(&c.to_dense(), &dense_mul(&a, &b)));
    }

    #[test]
    fn esc_matches_hash() {
        let a = Csr::from_dense(&[
            vec![2.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 2.0],
        ]);
        let h = spgemm_hash(&a, &a);
        let e = spgemm_esc(&a, &a);
        assert_eq!(h.to_dense(), e.to_dense());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Csr::from_dense(&[vec![1.5, 0.0, 2.0], vec![0.0, -3.0, 0.0]]);
        let i3 = Csr::identity(3);
        let i2 = Csr::identity(2);
        assert_eq!(spgemm_hash(&a, &i3).to_dense(), a.to_dense());
        assert_eq!(spgemm_hash(&i2, &a).to_dense(), a.to_dense());
    }

    #[test]
    fn cancellation_keeps_explicit_zero() {
        // a*b produces an entry whose value cancels to 0: both algorithms
        // keep the structural entry (hash) — ESC also keeps it because
        // reduce_by_key sums, it does not drop zeros.
        let a = Csr::from_dense(&[vec![1.0, 1.0]]);
        let b = Csr::from_dense(&[vec![1.0], vec![-1.0]]);
        let c = spgemm_hash(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
        let e = spgemm_esc(&a, &b);
        assert_eq!(e.nnz(), 1);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = Csr::zeros(3, 3);
        let b = Csr::identity(3);
        let c = spgemm_hash(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 3);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Csr::from_dense(&[vec![1.0, 2.0, 3.0]]); // 1x3
        let b = Csr::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]); // 3x2
        let c = spgemm_hash(&a, &b);
        assert_eq!(c.nrows(), 1);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.to_dense(), vec![vec![4.0, 5.0]]);
    }

    #[test]
    fn flops_counts_expansion() {
        let a = Csr::identity(4);
        assert_eq!(spgemm_flops(&a, &a), 8); // 4 products, 2 flops each
    }

    #[test]
    fn hash_row_grows_under_load() {
        let mut h = HashRow::with_capacity(2);
        for k in 0..1000 {
            h.insert(k, 1.0);
        }
        for k in 0..1000 {
            h.insert(k, 1.0);
        }
        let (cols, vals) = h.into_sorted();
        assert_eq!(cols.len(), 1000);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert!(vals.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn plan_reuse_matches_fresh_hash_bitwise() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let (m, k, n) = (
                rng.gen_range(1..10),
                rng.gen_range(1..10),
                rng.gen_range(1..10),
            );
            let mk = |rows: usize, cols: usize, rng: &mut rand::rngs::StdRng| {
                Csr::from_dense(
                    &(0..rows)
                        .map(|_| {
                            (0..cols)
                                .map(|_| {
                                    if rng.gen_bool(0.4) {
                                        rng.gen_range(-2.0..2.0)
                                    } else {
                                        0.0
                                    }
                                })
                                .collect::<Vec<f64>>()
                        })
                        .collect::<Vec<_>>(),
                )
            };
            let mut a = mk(m, k, &mut rng);
            let mut b = mk(k, n, &mut rng);
            let (plan, c0) = SpgemmPlan::new(&a, &b);
            assert_eq!(c0.to_dense(), spgemm_hash(&a, &b).to_dense());
            // Value-only update: same structure, new values.
            for v in a.vals_mut() {
                *v = *v * 1.7 - 0.3;
            }
            for v in b.vals_mut() {
                *v = -*v * 0.9 + 0.1;
            }
            assert!(plan.matches(&a, &b));
            let fresh = spgemm_hash(&a, &b);
            let replay = plan.execute(&a, &b);
            assert_eq!(replay.indptr(), fresh.indptr());
            assert_eq!(replay.indices(), fresh.indices());
            let fb: Vec<u64> = fresh.vals().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u64> = replay.vals().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, rb, "plan replay diverged from fresh hash");
        }
    }

    #[test]
    fn plan_preserves_negative_zero_products() {
        // A single product of -1.0 * 0.0 = -0.0 must come out of the
        // replay with its sign bit, exactly like the hash assignment.
        let a = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![-1.0]);
        let b = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![0.0]);
        let (plan, c0) = SpgemmPlan::new(&a, &b);
        let replay = plan.execute(&a, &b);
        assert_eq!(c0.vals()[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(replay.vals()[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn plan_detects_structure_change() {
        let a = Csr::identity(3);
        let (plan, _) = SpgemmPlan::new(&a, &a);
        assert!(plan.matches(&a, &a));
        let other = Csr::from_dense(&[
            vec![1.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert!(!plan.matches(&other, &a));
        assert!(!plan.matches(&a, &other));
        assert_eq!(plan.expansion(), 3);
        assert_eq!(plan.c_nnz(), 3);
    }

    #[test]
    fn random_matrices_agree_with_dense() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let (m, k, n) = (
                rng.gen_range(1..12),
                rng.gen_range(1..12),
                rng.gen_range(1..12),
            );
            let mk_dense = |rows: usize, cols: usize, rng: &mut rand::rngs::StdRng| {
                (0..rows)
                    .map(|_| {
                        (0..cols)
                            .map(|_| {
                                if rng.gen_bool(0.3) {
                                    rng.gen_range(-2.0..2.0)
                                } else {
                                    0.0
                                }
                            })
                            .collect::<Vec<f64>>()
                    })
                    .collect::<Vec<_>>()
            };
            let da = mk_dense(m, k, &mut rng);
            let db = mk_dense(k, n, &mut rng);
            let a = Csr::from_dense(&da);
            let b = Csr::from_dense(&db);
            let c = spgemm_hash(&a, &b);
            assert!(close(&c.to_dense(), &dense_mul(&a, &b)));
        }
    }
}
