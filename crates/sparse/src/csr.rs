//! Compressed sparse row matrices with local (usize) indices.

use rayon::prelude::*;

use crate::coo::Coo;
use crate::prims;

/// Threshold below which row loops run sequentially.
const PAR_THRESHOLD: usize = 1 << 12;

/// Lane count of the blocked SpMV path (rows per step).
const LANES: usize = 4;

/// Rows per rayon work item in [`Csr::spmv_into_simd`]; a multiple of
/// [`LANES`] so every block starts lane-aligned.
const SIMD_BLOCK: usize = 1 << 10;

/// CSR matrix. Column indices are sorted within each row and duplicate-free
/// (an invariant every constructor establishes and every operation keeps).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Build from raw parts, validating all CSR invariants.
    ///
    /// # Panics
    ///
    /// Panics if `indptr` has the wrong length or is not monotone, if any
    /// column index is out of range, or if a row's columns are unsorted or
    /// duplicated.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows+1");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr must end at nnz");
        assert_eq!(indices.len(), vals.len(), "indices/vals length mismatch");
        for r in 0..nrows {
            assert!(indptr[r] <= indptr[r + 1], "indptr not monotone at row {r}");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} columns unsorted or duplicated");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "row {r} column {last} out of range {ncols}");
            }
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            vals,
        }
    }

    /// Empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Diagonal matrix from a vector.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        Csr {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            vals: d.to_vec(),
        }
    }

    /// Build from a dense row-major matrix, dropping exact zeros.
    pub fn from_dense(dense: &[Vec<f64>]) -> Self {
        let nrows = dense.len();
        let ncols = dense.first().map_or(0, |r| r.len());
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        indptr.push(0);
        for row in dense {
            assert_eq!(row.len(), ncols, "ragged dense matrix");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    indices.push(j);
                    vals.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            vals,
        }
    }

    /// Build from a local-index COO matrix (entries may be unsorted and
    /// duplicated; duplicates sum).
    pub fn from_coo(nrows: usize, ncols: usize, coo: &Coo) -> Self {
        let mut sorted = coo.clone();
        sorted.sort_and_combine();
        let mut indptr = vec![0usize; nrows + 1];
        for &r in &sorted.rows {
            let r = r as usize;
            assert!(r < nrows, "row {r} out of range {nrows}");
            indptr[r + 1] += 1;
        }
        for i in 0..nrows {
            indptr[i + 1] += indptr[i];
        }
        let indices: Vec<usize> = sorted
            .cols
            .iter()
            .map(|&c| {
                let c = c as usize;
                assert!(c < ncols, "col {c} out of range {ncols}");
                c
            })
            .collect();
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            vals: sorted.vals,
        }
    }

    /// Dense row-major copy (tests and tiny systems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, out_row) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out_row[c] = v;
            }
        }
        out
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array (sparsity pattern is fixed).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let range = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[range.clone()], &self.vals[range])
    }

    /// Value at `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// y = A x.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// y = A x into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length != ncols");
        assert_eq!(y.len(), self.nrows, "y length != nrows");
        let run = |(r, yr): (usize, &mut f64)| {
            let mut acc = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                acc += self.vals[k] * x[self.indices[k]];
            }
            *yr = acc;
        };
        if self.nrows >= PAR_THRESHOLD {
            y.par_iter_mut().enumerate().map(|(r, yr)| (r, yr)).for_each(run);
        } else {
            y.iter_mut().enumerate().for_each(run);
        }
    }

    /// y = A x with explicit 4-wide lane accumulation: four *rows* per
    /// step, one lane accumulator each. Lanes never mix — every row
    /// still sums its entries in CSR column order into one scalar — so
    /// the result is bitwise-identical to [`Csr::spmv_into`]; the lanes
    /// only buy instruction-level parallelism on the gather-heavy inner
    /// loop (the same trick SELL-C-σ bakes into its storage).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv_into_simd(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length != ncols");
        assert_eq!(y.len(), self.nrows, "y length != nrows");
        let block = |r0: usize, ys: &mut [f64]| {
            let mut r = 0;
            while r + LANES <= ys.len() {
                let row = r0 + r;
                let start = [
                    self.indptr[row],
                    self.indptr[row + 1],
                    self.indptr[row + 2],
                    self.indptr[row + 3],
                ];
                let end = [
                    self.indptr[row + 1],
                    self.indptr[row + 2],
                    self.indptr[row + 3],
                    self.indptr[row + 4],
                ];
                let width = (0..LANES).map(|l| end[l] - start[l]).max().unwrap_or(0);
                let mut acc = [0.0f64; LANES];
                for j in 0..width {
                    for l in 0..LANES {
                        let k = start[l] + j;
                        if k < end[l] {
                            acc[l] += self.vals[k] * x[self.indices[k]];
                        }
                    }
                }
                ys[r..r + LANES].copy_from_slice(&acc);
                r += LANES;
            }
            // Remainder rows: plain scalar accumulation (same order).
            for (rr, yr) in ys.iter_mut().enumerate().skip(r) {
                let row = r0 + rr;
                let mut acc = 0.0;
                for k in self.indptr[row]..self.indptr[row + 1] {
                    acc += self.vals[k] * x[self.indices[k]];
                }
                *yr = acc;
            }
        };
        if self.nrows >= PAR_THRESHOLD {
            // Lane-multiple blocks: every worker sees aligned 4-row
            // groups, and rows are independent, so any partitioning
            // yields the same bits.
            y.par_chunks_mut(SIMD_BLOCK).enumerate().for_each(|(b, ys)| {
                block(b * SIMD_BLOCK, ys);
            });
        } else {
            block(0, y);
        }
    }

    /// One fused Jacobi-Richardson sweep over a split-off triangle `T`
    /// (`self`): `g_next[i] = (r[i] - Σ_k T[i,k]·g[k]) · inv_diag[i]`
    /// in a single matrix pass. Operation-for-operation this matches
    /// `spmv_into` followed by `dense::jacobi_update` — same
    /// per-row accumulation order, then one subtract and one multiply —
    /// so the bits are identical; fusing just never materializes the
    /// `T·g` intermediate (one vector write + one read saved per sweep,
    /// see `telemetry::perfmodel::jr_sweep_fused`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn jr_sweep_fused(&self, r: &[f64], inv_diag: &[f64], g: &[f64], g_next: &mut [f64]) {
        assert_eq!(g.len(), self.ncols, "g length != ncols");
        assert_eq!(g_next.len(), self.nrows, "g_next length != nrows");
        assert_eq!(r.len(), self.nrows, "r length != nrows");
        assert_eq!(inv_diag.len(), self.nrows, "inv_diag length != nrows");
        let run = |(i, out): (usize, &mut f64)| {
            let mut acc = 0.0;
            for k in self.indptr[i]..self.indptr[i + 1] {
                acc += self.vals[k] * g[self.indices[k]];
            }
            *out = (r[i] - acc) * inv_diag[i];
        };
        if self.nrows >= PAR_THRESHOLD {
            g_next.par_iter_mut().enumerate().for_each(run);
        } else {
            g_next.iter_mut().enumerate().for_each(run);
        }
    }

    /// y += A x.
    pub fn spmv_add_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length != ncols");
        assert_eq!(y.len(), self.nrows, "y length != nrows");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                acc += self.vals[k] * x[self.indices[k]];
            }
            *yr += acc;
        }
    }

    /// Aᵀ, with sorted rows.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        let indptr = prims::exclusive_scan(&counts);
        let mut next = indptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        // Walking rows in order writes each transposed row's entries in
        // ascending (old row) order, so columns stay sorted.
        for r in 0..self.nrows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k];
                let pos = next[c];
                next[c] += 1;
                indices[pos] = r;
                vals[pos] = self.vals[k];
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            vals,
        }
    }

    /// Aᵀ plus the gather permutation: `perm[pos]` is the flat index in
    /// `self.vals` whose value landed at flat position `pos` of the
    /// transpose. A structure-reusing caller (`rap::GalerkinPlan`) can
    /// refresh the transpose after a value-only update with one gather
    /// instead of re-walking the matrix.
    pub fn transpose_with_perm(&self) -> (Csr, Vec<usize>) {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        let indptr = prims::exclusive_scan(&counts);
        let mut next = indptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut perm = vec![0usize; self.nnz()];
        for r in 0..self.nrows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k];
                let pos = next[c];
                next[c] += 1;
                indices[pos] = r;
                vals[pos] = self.vals[k];
                perm[pos] = k;
            }
        }
        (
            Csr {
                nrows: self.ncols,
                ncols: self.nrows,
                indptr,
                indices,
                vals,
            },
            perm,
        )
    }

    /// A + B with matching shapes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Csr) -> Csr {
        self.add_scaled(other, 1.0)
    }

    /// A + s·B.
    pub fn add_scaled(&self, other: &Csr, s: f64) -> Csr {
        assert_eq!(self.nrows, other.nrows, "row count mismatch");
        assert_eq!(self.ncols, other.ncols, "col count mismatch");
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut vals = Vec::with_capacity(self.nnz() + other.nnz());
        indptr.push(0);
        for r in 0..self.nrows {
            let (ca, va) = self.row(r);
            let (cb, vb) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ca.len() || j < cb.len() {
                let take_a = j >= cb.len() || (i < ca.len() && ca[i] <= cb[j]);
                let take_b = i >= ca.len() || (j < cb.len() && cb[j] <= ca[i]);
                if take_a && take_b {
                    indices.push(ca[i]);
                    vals.push(va[i] + s * vb[j]);
                    i += 1;
                    j += 1;
                } else if take_a {
                    indices.push(ca[i]);
                    vals.push(va[i]);
                    i += 1;
                } else {
                    indices.push(cb[j]);
                    vals.push(s * vb[j]);
                    j += 1;
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            vals,
        }
    }

    /// Multiply all values in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vals {
            *v *= s;
        }
    }

    /// Scale row `r` by `d[r]` in place (D·A with D diagonal).
    pub fn scale_rows(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.nrows, "diagonal length != nrows");
        for (r, &dr) in d.iter().enumerate() {
            for k in self.indptr[r]..self.indptr[r + 1] {
                self.vals[k] *= dr;
            }
        }
    }

    /// Diagonal entries (zero where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows).map(|r| self.get(r, r)).collect()
    }

    /// Strictly lower-triangular part.
    pub fn strict_lower(&self) -> Csr {
        self.filter(|r, c| c < r)
    }

    /// Strictly upper-triangular part.
    pub fn strict_upper(&self) -> Csr {
        self.filter(|r, c| c > r)
    }

    /// Keep entries where `keep(row, col)` is true.
    pub fn filter(&self, keep: impl Fn(usize, usize) -> bool) -> Csr {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        indptr.push(0);
        for r in 0..self.nrows {
            let (cols, v) = self.row(r);
            for (&c, &val) in cols.iter().zip(v) {
                if keep(r, c) {
                    indices.push(c);
                    vals.push(val);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            vals,
        }
    }

    /// Extract the submatrix with the given rows and a column renumbering.
    ///
    /// `col_renum[c] = Some(c')` keeps old column `c` as new column `c'`;
    /// `None` drops it. New column ids must preserve the relative order of
    /// kept columns within each row (true for the monotone renumberings AMG
    /// uses for its FF/FC splits).
    pub fn submatrix(
        &self,
        row_ids: &[usize],
        col_renum: &[Option<usize>],
        new_ncols: usize,
    ) -> Csr {
        assert_eq!(col_renum.len(), self.ncols, "col_renum length != ncols");
        let mut indptr = Vec::with_capacity(row_ids.len() + 1);
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        indptr.push(0);
        for &r in row_ids {
            let (cols, v) = self.row(r);
            for (&c, &val) in cols.iter().zip(v) {
                if let Some(nc) = col_renum[c] {
                    assert!(nc < new_ncols, "renumbered column out of range");
                    indices.push(nc);
                    vals.push(val);
                }
            }
            indptr.push(indices.len());
        }
        let out = Csr {
            nrows: row_ids.len(),
            ncols: new_ncols,
            indptr,
            indices,
            vals,
        };
        debug_assert!(out.rows_sorted(), "non-monotone column renumbering");
        out
    }

    /// Row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().sum())
            .collect()
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    fn rows_sorted(&self) -> bool {
        (0..self.nrows).all(|r| self.row(r).0.windows(2).all(|w| w[0] < w[1]))
    }

    /// Drop stored entries with |value| <= `tol`, keeping diagonal entries.
    pub fn drop_small(&self, tol: f64) -> Csr {
        self.filter(|r, c| r == c || self.get(r, c).abs() > tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        Csr::from_dense(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
    }

    #[test]
    fn from_dense_round_trip() {
        let a = sample();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.to_dense()[1], vec![-1.0, 2.0, -1.0]);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.spmv(&x), vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = sample();
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![10.0, 10.0, 10.0];
        a.spmv_add_into(&x, &mut y);
        assert_eq!(y, vec![12.0, 9.0, 10.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Csr::from_dense(&[vec![1.0, 2.0, 0.0], vec![0.0, 0.0, 3.0]]);
        let at = a.transpose();
        assert_eq!(at.nrows(), 3);
        assert_eq!(at.ncols(), 2);
        assert_eq!(at.get(1, 0), 2.0);
        assert_eq!(at.get(2, 1), 3.0);
        assert_eq!(at.transpose().to_dense(), a.to_dense());
    }

    #[test]
    fn add_merges_patterns() {
        let a = Csr::from_dense(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let b = Csr::from_dense(&[vec![0.0, 3.0], vec![0.0, 4.0]]);
        let c = a.add(&b);
        assert_eq!(c.to_dense(), vec![vec![1.0, 3.0], vec![0.0, 6.0]]);
        let d = a.add_scaled(&b, -1.0);
        assert_eq!(d.to_dense(), vec![vec![1.0, -3.0], vec![0.0, -2.0]]);
    }

    #[test]
    fn triangular_parts_and_diag() {
        let a = sample();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        let l = a.strict_lower();
        assert_eq!(l.nnz(), 2);
        assert_eq!(l.get(1, 0), -1.0);
        let u = a.strict_upper();
        assert_eq!(u.nnz(), 2);
        assert_eq!(u.get(0, 1), -1.0);
        // L + D + U == A
        let rebuilt = l.add(&u).add(&Csr::from_diag(&a.diag()));
        assert_eq!(rebuilt.to_dense(), a.to_dense());
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = Coo::new();
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 4.0);
        let a = Csr::from_coo(2, 2, &coo);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn submatrix_extracts_ff_block() {
        let a = sample();
        // F = {0, 2}: extract A_FF.
        let renum = vec![Some(0), None, Some(1)];
        let aff = a.submatrix(&[0, 2], &renum, 2);
        assert_eq!(aff.to_dense(), vec![vec![2.0, 0.0], vec![0.0, 2.0]]);
    }

    #[test]
    fn scale_rows_applies_diagonal() {
        let mut a = sample();
        a.scale_rows(&[1.0, 0.5, 2.0]);
        assert_eq!(a.get(1, 1), 1.0);
        assert_eq!(a.get(2, 1), -2.0);
    }

    #[test]
    fn identity_and_zeros() {
        let i = Csr::identity(3);
        let x = vec![4.0, 5.0, 6.0];
        assert_eq!(i.spmv(&x), x);
        let z = Csr::zeros(2, 3);
        assert_eq!(z.spmv(&[1.0; 3]), vec![0.0, 0.0]);
    }

    #[test]
    fn norms_and_row_sums() {
        let a = sample();
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.row_sums(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "columns unsorted")]
    fn from_parts_rejects_unsorted() {
        Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_bad_col() {
        Csr::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn spmv_large_parallel_path() {
        let n = PAR_THRESHOLD + 3;
        // Tridiagonal Laplacian.
        let mut dense_indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        dense_indptr.push(0);
        for r in 0..n {
            if r > 0 {
                indices.push(r - 1);
                vals.push(-1.0);
            }
            indices.push(r);
            vals.push(2.0);
            if r + 1 < n {
                indices.push(r + 1);
                vals.push(-1.0);
            }
            dense_indptr.push(indices.len());
        }
        let a = Csr::from_parts(n, n, dense_indptr, indices, vals);
        let y = a.spmv(&vec![1.0; n]);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[n / 2], 0.0);
        assert_eq!(y[n - 1], 1.0);
    }
}
