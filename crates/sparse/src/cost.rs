//! Byte/flop cost estimators for the kernels in this crate.
//!
//! Callers holding a `parcomm::Rank` record these estimates into per-rank
//! traces; the `machine` crate then converts traces into modeled device
//! time (roofline: `max(bytes / bandwidth, flops / peak)` plus a launch
//! overhead per kernel).

use crate::csr::Csr;
use crate::sellcs::SellCs;

const IDX: u64 = std::mem::size_of::<usize>() as u64;
const VAL: u64 = std::mem::size_of::<f64>() as u64;
/// SELL-C-σ stores columns, row lengths, and the permutation as u32.
const IDX32: u64 = std::mem::size_of::<u32>() as u64;

/// (bytes, flops) for y = A·x.
pub fn spmv(a: &Csr) -> (u64, u64) {
    let nnz = a.nnz() as u64;
    let n = a.nrows() as u64;
    // Read indptr + indices + vals + gathered x, write y.
    let bytes = (n + 1) * IDX + nnz * (IDX + 2 * VAL) + n * VAL;
    let flops = 2 * nnz;
    (bytes, flops)
}

/// (bytes, flops) for a BLAS-1 op over `n` elements touching `vectors`
/// arrays (e.g. axpy touches 3: read x, read+write y).
pub fn blas1(n: usize, vectors: u64) -> (u64, u64) {
    ((n as u64) * VAL * vectors, 2 * n as u64)
}

/// (bytes, flops) for a stable sort of `n` (key, value) items —
/// modeled as `ceil(log2 n)` data passes, matching radix/merge behaviour.
pub fn sort(n: usize, item_bytes: u64) -> (u64, u64) {
    if n == 0 {
        return (0, 0);
    }
    let passes = (usize::BITS - (n - 1).leading_zeros()).max(1) as u64;
    ((n as u64) * item_bytes * passes, 0)
}

/// (bytes, flops) for reduce_by_key over `n` items.
pub fn reduce(n: usize, item_bytes: u64) -> (u64, u64) {
    ((n as u64) * item_bytes * 2, n as u64)
}

/// (bytes, flops) for hash SpGEMM C = A·B given the numeric result.
pub fn spgemm(a: &Csr, b: &Csr, c: &Csr) -> (u64, u64) {
    let expansion: u64 = a
        .indices()
        .iter()
        .map(|&k| (b.indptr()[k + 1] - b.indptr()[k]) as u64)
        .sum();
    // Each product reads a B entry and updates a hash slot; A rows and the
    // output C are streamed once.
    let bytes = (a.nnz() as u64) * (IDX + VAL)
        + expansion * (IDX + 2 * VAL)
        + (c.nnz() as u64) * (IDX + VAL);
    let flops = 2 * expansion;
    (bytes, flops)
}

/// (bytes, flops) for y = A·x in SELL-C-σ storage: chunk offsets plus
/// u32 row lengths/permutation, then one streamed (col, val, gathered x)
/// triple per *stored* (padding included) slot, and the y write. The
/// u32 indices are the point: compare [`spmv`]'s `nnz * (IDX + 2*VAL)`
/// term.
pub fn sellcs_spmv(m: &SellCs) -> (u64, u64) {
    let rows = m.nrows() as u64;
    let stored = m.stored() as u64;
    let chunks = m.n_chunks() as u64;
    let bytes = (chunks + 1) * IDX + rows * 2 * IDX32 + stored * (IDX32 + 2 * VAL) + rows * VAL;
    let flops = 2 * m.nnz() as u64;
    (bytes, flops)
}

/// (bytes, flops) for a numeric-only SpGEMM replay through a recorded
/// plan (`spgemm::SpgemmPlan::execute`): A is streamed with its
/// structure, each product reads a slot index and a B value, and C is
/// written once — no hash probing, no sort, no assembly pass. The
/// savings versus [`spgemm`] are `expansion * VAL + c.nnz * IDX`.
pub fn spgemm_numeric(a_nnz: usize, expansion: u64, c_nnz: usize) -> (u64, u64) {
    let bytes =
        (a_nnz as u64) * (IDX + VAL) + expansion * (IDX + VAL) + (c_nnz as u64) * VAL;
    let flops = 2 * expansion;
    (bytes, flops)
}

/// (bytes, flops) for one fused Jacobi-Richardson sweep over triangle
/// `t` (`Csr::jr_sweep_fused`): the SpMV pass (its `n*VAL` write is the
/// `g_next` store) plus reads of `r` and `inv_diag`. The unfused
/// pipeline pays two extra vector streams (write + re-read of the
/// `T·g` intermediate).
pub fn jr_sweep_fused(t: &Csr) -> (u64, u64) {
    let (sb, sf) = spmv(t);
    let n = t.nrows() as u64;
    (sb + 2 * n * VAL, sf + 2 * n)
}

/// (bytes, flops) for transposing `a`.
pub fn transpose(a: &Csr) -> (u64, u64) {
    let nnz = a.nnz() as u64;
    ((nnz * (IDX + VAL)) * 2 + (a.ncols() as u64 + 1) * IDX, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_cost_scales_with_nnz() {
        let small = Csr::identity(10);
        let big = Csr::identity(1000);
        let (bs, fs) = spmv(&small);
        let (bb, fb) = spmv(&big);
        assert!(bb > bs);
        assert_eq!(fs, 20);
        assert_eq!(fb, 2000);
    }

    #[test]
    fn sort_cost_has_log_passes() {
        let (b1, _) = sort(1024, 16);
        let (b2, _) = sort(2048, 16);
        // 10 passes vs 11 passes
        assert_eq!(b1, 1024 * 16 * 10);
        assert_eq!(b2, 2048 * 16 * 11);
        assert_eq!(sort(0, 16), (0, 0));
        assert_eq!(sort(1, 16), (16, 0));
    }

    #[test]
    fn spgemm_cost_counts_expansion() {
        let a = Csr::identity(4);
        let c = crate::spgemm::spgemm_hash(&a, &a);
        let (bytes, flops) = spgemm(&a, &a, &c);
        assert_eq!(flops, 8);
        assert!(bytes > 0);
    }

    #[test]
    fn blas1_and_reduce_nonzero() {
        assert_eq!(blas1(100, 3).0, 2400);
        assert!(reduce(100, 16).0 > 0);
        assert!(transpose(&Csr::identity(5)).0 > 0);
    }
}
