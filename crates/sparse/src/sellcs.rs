//! SELL-C-σ sparse storage (sliced ELLPACK with row sorting).
//!
//! Kreutzer et al.'s SIMD-friendly format: rows are grouped into chunks
//! of `C = 4`, each chunk stored column-major ("slot-major") and padded
//! to its longest row, so an SpMV walks the chunk with four independent
//! lane accumulators — one row per lane. To bound the padding, rows are
//! first sorted by descending length inside windows of σ rows (σ a
//! multiple of C); the permutation never crosses a window boundary, so
//! a window owns a contiguous output range and windows parallelize
//! without synchronization.
//!
//! Determinism contract: lane `l` of a chunk accumulates exactly the
//! entries of one original row, **in that row's CSR column order**, into
//! a single scalar — the same multiply/add sequence as
//! [`Csr::spmv_into`]. Padding slots are *skipped by a length guard*,
//! never multiplied (an `x` of NaN/∞ against a padded zero must not
//! poison the lane), so `spmv_into` here is bitwise-identical to the
//! scalar CSR path for any input, including NaN and -0.0.
//!
//! Column indices, per-slot row lengths, and the row permutation are
//! `u32` (validated at conversion): versus CSR's `usize` indices this
//! roughly halves index traffic, which is the point — SpMV is
//! bandwidth-bound (see `telemetry::perfmodel::sellcs_spmv`).

use rayon::prelude::*;

use crate::csr::Csr;

/// Chunk height C: rows per chunk, lanes per SpMV inner step.
pub const CHUNK: usize = 4;

/// Row count above which SpMV parallelizes over σ-windows.
const PAR_THRESHOLD: usize = 1 << 12;

/// Marks a padding slot (row index past `nrows`) in `perm`.
const PAD: u32 = u32::MAX;

/// Round a requested σ up to a positive multiple of [`CHUNK`].
pub fn round_sigma(sigma: usize) -> usize {
    sigma.max(CHUNK).div_ceil(CHUNK) * CHUNK
}

/// A sparse matrix in SELL-C-σ layout. Built from (and value-coherent
/// with) a [`Csr`]; structure is immutable after conversion.
#[derive(Clone, Debug)]
pub struct SellCs {
    nrows: usize,
    ncols: usize,
    sigma: usize,
    /// Chunk `c` occupies `vals[chunk_ptr[c]..chunk_ptr[c + 1]]`
    /// (slot-major: entry `j` of lane `l` lives at `base + j*CHUNK + l`).
    chunk_ptr: Vec<usize>,
    /// Original-row length per slot (0 for padding slots).
    row_len: Vec<u32>,
    /// Slot → original row, [`PAD`] for padding slots. Stays within the
    /// slot's σ-window by construction.
    perm: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SellCs {
    /// Convert a CSR matrix, sorting rows by descending length within
    /// windows of `sigma` rows (rounded up to a multiple of C).
    ///
    /// # Panics
    ///
    /// Panics if a dimension or row length exceeds `u32` range.
    pub fn from_csr(a: &Csr, sigma: usize) -> SellCs {
        let nrows = a.nrows();
        let ncols = a.ncols();
        assert!(ncols <= u32::MAX as usize, "ncols exceeds u32 index range");
        assert!(nrows < PAD as usize, "nrows exceeds u32 perm range");
        let sigma = round_sigma(sigma);
        let indptr = a.indptr();
        let n_slots = nrows.div_ceil(CHUNK) * CHUNK;
        let n_chunks = n_slots / CHUNK;

        // Stable descending-length sort inside each σ-window; padding
        // slots (length 0) naturally belong at the window's end.
        let mut perm = Vec::with_capacity(n_slots);
        let mut w0 = 0;
        while w0 < nrows {
            let w1 = (w0 + sigma).min(nrows);
            let mut rows: Vec<u32> = (w0 as u32..w1 as u32).collect();
            rows.sort_by_key(|&r| {
                let r = r as usize;
                std::cmp::Reverse(indptr[r + 1] - indptr[r])
            });
            perm.extend_from_slice(&rows);
            w0 = w1;
        }
        perm.resize(n_slots, PAD);

        let row_len: Vec<u32> = perm
            .iter()
            .map(|&p| {
                if p == PAD {
                    0
                } else {
                    let r = p as usize;
                    u32::try_from(indptr[r + 1] - indptr[r]).expect("row length exceeds u32")
                }
            })
            .collect();

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        chunk_ptr.push(0usize);
        for c in 0..n_chunks {
            let width = (0..CHUNK)
                .map(|l| row_len[c * CHUNK + l] as usize)
                .max()
                .unwrap_or(0);
            chunk_ptr.push(chunk_ptr[c] + width * CHUNK);
        }

        let stored = *chunk_ptr.last().unwrap_or(&0);
        let mut cols = vec![0u32; stored];
        let mut vals = vec![0.0f64; stored];
        let (a_idx, a_vals) = (a.indices(), a.vals());
        for (c, &base) in chunk_ptr.iter().take(n_chunks).enumerate() {
            for l in 0..CHUNK {
                let slot = c * CHUNK + l;
                if perm[slot] == PAD {
                    continue;
                }
                let r = perm[slot] as usize;
                let start = indptr[r];
                for j in 0..row_len[slot] as usize {
                    cols[base + j * CHUNK + l] = a_idx[start + j] as u32;
                    vals[base + j * CHUNK + l] = a_vals[start + j];
                }
            }
        }

        SellCs { nrows, ncols, sigma, chunk_ptr, row_len, perm, cols, vals }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The (rounded) σ-window this matrix was built with.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of row chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_ptr.len().saturating_sub(1)
    }

    /// Real (unpadded) stored entries.
    pub fn nnz(&self) -> usize {
        self.row_len.iter().map(|&l| l as usize).sum()
    }

    /// Stored entries including chunk padding — what SpMV streams.
    pub fn stored(&self) -> usize {
        *self.chunk_ptr.last().unwrap_or(&0)
    }

    /// Scale every value by `s` (keeps a `ParCsr`'s SELL sibling
    /// coherent with `Csr::scale`). Padding values stay 0 and are never
    /// read anyway.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vals {
            *v *= s;
        }
    }

    /// Re-copy values from a structurally identical CSR (value-only
    /// update after e.g. in-place edits on the CSR side).
    ///
    /// # Panics
    ///
    /// Panics if `a`'s shape does not match this matrix.
    pub fn refresh_values(&mut self, a: &Csr) {
        assert_eq!(a.nrows(), self.nrows, "refresh_values: row mismatch");
        assert_eq!(a.ncols(), self.ncols, "refresh_values: col mismatch");
        let indptr = a.indptr();
        let a_vals = a.vals();
        for c in 0..self.n_chunks() {
            let base = self.chunk_ptr[c];
            for l in 0..CHUNK {
                let slot = c * CHUNK + l;
                if self.perm[slot] == PAD {
                    continue;
                }
                let start = indptr[self.perm[slot] as usize];
                for j in 0..self.row_len[slot] as usize {
                    self.vals[base + j * CHUNK + l] = a_vals[start + j];
                }
            }
        }
    }

    /// One σ-window of chunks: rows `rows.start..` of `y`, chunks
    /// `c0..c1`. Each chunk keeps 4 lane accumulators; the guard on
    /// `row_len` skips padding without touching its (zero) values.
    fn spmv_window(&self, x: &[f64], y: &mut [f64], row0: usize, c0: usize, c1: usize) {
        for c in c0..c1 {
            let base = self.chunk_ptr[c];
            let width = (self.chunk_ptr[c + 1] - base) / CHUNK;
            let lens = [
                self.row_len[c * CHUNK],
                self.row_len[c * CHUNK + 1],
                self.row_len[c * CHUNK + 2],
                self.row_len[c * CHUNK + 3],
            ];
            let mut acc = [0.0f64; CHUNK];
            for j in 0..width {
                let k = base + j * CHUNK;
                for l in 0..CHUNK {
                    if (j as u32) < lens[l] {
                        acc[l] += self.vals[k + l] * x[self.cols[k + l] as usize];
                    }
                }
            }
            for (l, &sum) in acc.iter().enumerate() {
                let p = self.perm[c * CHUNK + l];
                if p != PAD {
                    y[p as usize - row0] = sum;
                }
            }
        }
    }

    /// y = A·x, bitwise-identical to [`Csr::spmv_into`] on the source
    /// matrix (see the module docs for why).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length != ncols");
        assert_eq!(y.len(), self.nrows, "y length != nrows");
        let n_chunks = self.n_chunks();
        let chunks_per_window = self.sigma / CHUNK;
        if self.nrows >= PAR_THRESHOLD {
            // A window's rows are exactly y[w*sigma .. w*sigma+len]:
            // perm never crosses the window, so writes are exclusive and
            // the partitioning cannot change any row's accumulation.
            y.par_chunks_mut(self.sigma).enumerate().for_each(|(w, yw)| {
                let c0 = w * chunks_per_window;
                let c1 = (c0 + chunks_per_window).min(n_chunks);
                self.spmv_window(x, yw, w * self.sigma, c0, c1);
            });
        } else {
            self.spmv_window(x, y, 0, 0, n_chunks);
        }
    }

    /// Padding overhead: stored / nnz (1.0 = no padding). Reported in
    /// the kernel-backend docs and useful for Auto-policy diagnostics.
    pub fn fill_ratio(&self) -> f64 {
        let nnz = self.nnz();
        if nnz == 0 {
            1.0
        } else {
            self.stored() as f64 / nnz as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn round_sigma_snaps_to_chunk_multiples() {
        assert_eq!(round_sigma(0), CHUNK);
        assert_eq!(round_sigma(1), CHUNK);
        assert_eq!(round_sigma(4), 4);
        assert_eq!(round_sigma(5), 8);
        assert_eq!(round_sigma(256), 256);
    }

    #[test]
    fn identity_round_trip() {
        let a = Csr::identity(7);
        let s = SellCs::from_csr(&a, 4);
        assert_eq!(s.nnz(), 7);
        // 2 chunks of width 1 → 8 stored slots, one padded.
        assert_eq!(s.stored(), 8);
        let x: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut y = vec![0.0; 7];
        s.spmv_into(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn matches_csr_bitwise_on_irregular_matrix() {
        // Rows of very different lengths across several windows, with
        // rounding-sensitive values.
        let n = 37;
        let mut rows = vec![vec![0.0; n]; n];
        for (r, row) in rows.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                if (r * 7 + c * 13) % (r % 5 + 2) == 0 {
                    *v = ((r * 31 + c * 17) % 19) as f64 * 0.37 - 3.1;
                }
            }
        }
        rows[5] = vec![0.0; n]; // empty row
        let a = Csr::from_dense(&rows);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73 - 11.0) * 1e-3).collect();
        let mut y_csr = vec![0.0; n];
        a.spmv_into(&x, &mut y_csr);
        for sigma in [4, 8, 16, 64] {
            let s = SellCs::from_csr(&a, sigma);
            let mut y = vec![f64::NAN; n];
            s.spmv_into(&x, &mut y);
            assert_eq!(bits(&y), bits(&y_csr), "sigma={sigma}");
        }
    }

    #[test]
    fn padding_is_guarded_against_nan_poison() {
        // x full of NaN-adjacent hazards: if a padded slot were
        // multiplied instead of skipped, 0.0 * inf = NaN would leak.
        let a = Csr::from_dense(&[
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![3.0, 0.0, 0.0],
        ]);
        let s = SellCs::from_csr(&a, 4);
        let x = vec![2.0, -0.0, f64::INFINITY];
        let mut y = vec![0.0; 3];
        s.spmv_into(&x, &mut y);
        let mut y_ref = vec![0.0; 3];
        a.spmv_into(&x, &mut y_ref);
        assert_eq!(bits(&y), bits(&y_ref));
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_window_path_matches_serial_bitwise() {
        // Past PAR_THRESHOLD rows so the rayon window path runs.
        let n = PAR_THRESHOLD + 123;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for r in 0..n {
            for d in [-1i64, 0, 1] {
                let c = r as i64 + d;
                if (0..n as i64).contains(&c) {
                    indices.push(c as usize);
                    vals.push(((r * 2654435761 + c as usize) % 1000) as f64 * 1e-2 - 4.9);
                }
            }
            indptr.push(indices.len());
        }
        let a = Csr::from_parts(n, n, indptr, indices, vals);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7919) % 977) as f64 * 1e-3 - 0.5).collect();
        let mut y_ref = vec![0.0; n];
        a.spmv_into(&x, &mut y_ref);
        let s = SellCs::from_csr(&a, 256);
        let mut y = vec![0.0; n];
        s.spmv_into(&x, &mut y);
        assert_eq!(bits(&y), bits(&y_ref));
    }

    #[test]
    fn scale_and_refresh_stay_coherent() {
        let a = Csr::from_dense(&[vec![1.0, 2.0], vec![0.0, 4.0]]);
        let mut s = SellCs::from_csr(&a, 4);
        s.scale(0.5);
        let mut half = a.clone();
        half.scale(0.5);
        let x = vec![1.0, -1.0];
        let (mut y1, mut y2) = (vec![0.0; 2], vec![0.0; 2]);
        s.spmv_into(&x, &mut y1);
        half.spmv_into(&x, &mut y2);
        assert_eq!(bits(&y1), bits(&y2));

        s.refresh_values(&a);
        s.spmv_into(&x, &mut y1);
        a.spmv_into(&x, &mut y2);
        assert_eq!(bits(&y1), bits(&y2));
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        let id = SellCs::from_csr(&Csr::identity(8), 8);
        assert_eq!(id.fill_ratio(), 1.0);
        let skew = Csr::from_dense(&[
            vec![1.0, 1.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ]);
        let s = SellCs::from_csr(&skew, 4);
        assert!(s.fill_ratio() > 1.0);
    }
}
