//! Coordinate-format sparse matrices with global (u64) indices.
//!
//! The Nalu-Wind local assembly (§3.2 of the paper) produces row-major
//! sorted, duplicate-free COO matrices for both owned and shared rows;
//! this type is that product, and its `sort_and_combine` is the
//! `stable_sort_by_key` + `reduce_by_key` pipeline of Algorithm 1.

use crate::prims;

/// A COO (triplet) matrix with global row/column ids.
///
/// Invariants are *not* enforced on push; call [`Coo::sort_and_combine`]
/// to obtain the row-major sorted, duplicate-free form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coo {
    /// Global row ids.
    pub rows: Vec<u64>,
    /// Global column ids.
    pub cols: Vec<u64>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Coo {
    /// Empty COO matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty COO matrix with reserved capacity.
    pub fn with_capacity(nnz: usize) -> Self {
        Coo {
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Build from parallel triplet arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays have different lengths.
    pub fn from_triplets(rows: Vec<u64>, cols: Vec<u64>, vals: Vec<f64>) -> Self {
        assert_eq!(rows.len(), cols.len(), "rows/cols length mismatch");
        assert_eq!(rows.len(), vals.len(), "rows/vals length mismatch");
        Coo { rows, cols, vals }
    }

    /// Append one entry (duplicates allowed; they sum on combine).
    pub fn push(&mut self, row: u64, col: u64, val: f64) {
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of stored entries (including not-yet-combined duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append all entries of `other`.
    pub fn extend(&mut self, other: &Coo) {
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Row-major stable sort followed by summation of duplicate (i, j)
    /// entries — `stable_sort_by_key` + `reduce_by_key` of Algorithm 1.
    pub fn sort_and_combine(&mut self) {
        let mut keys: Vec<(u64, u64)> = self.rows.iter().zip(&self.cols).map(|(&r, &c)| (r, c)).collect();
        prims::stable_sort_by_key(&mut keys, &mut self.vals);
        let (keys, vals) = prims::reduce_by_key(&keys, &self.vals);
        self.rows = keys.iter().map(|&(r, _)| r).collect();
        self.cols = keys.iter().map(|&(_, c)| c).collect();
        self.vals = vals;
    }

    /// True when entries are row-major sorted with no duplicate (i, j).
    pub fn is_sorted_and_combined(&self) -> bool {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(self.rows.iter().skip(1).zip(self.cols.iter().skip(1)))
            .all(|((&r0, &c0), (&r1, &c1))| (r0, c0) < (r1, c1))
    }

    /// Total of |values| — handy as a cheap checksum in tests.
    pub fn abs_sum(&self) -> f64 {
        self.vals.iter().map(|v| v.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_combine_duplicates() {
        let mut a = Coo::new();
        a.push(1, 2, 1.0);
        a.push(0, 0, 5.0);
        a.push(1, 2, 2.5);
        a.push(1, 0, -1.0);
        a.sort_and_combine();
        assert_eq!(a.rows, vec![0, 1, 1]);
        assert_eq!(a.cols, vec![0, 0, 2]);
        assert_eq!(a.vals, vec![5.0, -1.0, 3.5]);
        assert!(a.is_sorted_and_combined());
    }

    #[test]
    fn from_triplets_round_trip() {
        let a = Coo::from_triplets(vec![0, 1], vec![1, 0], vec![2.0, 3.0]);
        assert_eq!(a.len(), 2);
        assert!(a.is_sorted_and_combined());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Coo::from_triplets(vec![0], vec![0], vec![1.0]);
        let b = Coo::from_triplets(vec![0], vec![0], vec![2.0]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        a.sort_and_combine();
        assert_eq!(a.vals, vec![3.0]);
    }

    #[test]
    fn unsorted_is_detected() {
        let a = Coo::from_triplets(vec![1, 0], vec![0, 0], vec![1.0, 1.0]);
        assert!(!a.is_sorted_and_combined());
    }

    #[test]
    fn empty_is_sorted() {
        assert!(Coo::new().is_sorted_and_combined());
        assert!(Coo::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_triplets_panic() {
        Coo::from_triplets(vec![0], vec![], vec![1.0]);
    }
}
