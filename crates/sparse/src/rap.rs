//! Galerkin triple products for AMG coarse-operator construction.
//!
//! §4.1 of the paper: "Galerkin triple-matrix products are used to build
//! coarse-level operators", computed with parallel primitives and hypre's
//! hash SpGEMM. The same structure is used here.

use crate::csr::Csr;
use crate::spgemm::{spgemm_flops, spgemm_hash};

/// A_c = Pᵀ · A · P (Galerkin coarse operator).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn galerkin(a: &Csr, p: &Csr) -> Csr {
    assert_eq!(a.nrows(), a.ncols(), "A must be square");
    assert_eq!(a.ncols(), p.nrows(), "A·P dimension mismatch");
    let ap = spgemm_hash(a, p);
    let rt = p.transpose();
    spgemm_hash(&rt, &ap)
}

/// General triple product R · A · P (restriction need not be Pᵀ).
pub fn triple_product(r: &Csr, a: &Csr, p: &Csr) -> Csr {
    let ap = spgemm_hash(a, p);
    spgemm_hash(r, &ap)
}

/// Flop estimate for [`galerkin`], for perf traces.
pub fn galerkin_flops(a: &Csr, p: &Csr) -> u64 {
    let ap = spgemm_hash(a, p); // symbolic-only estimate would do; reuse numeric
    spgemm_flops(a, p) + spgemm_flops(&p.transpose(), &ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galerkin_of_identity_interp_is_a() {
        let a = Csr::from_dense(&[vec![4.0, -1.0], vec![-1.0, 4.0]]);
        let p = Csr::identity(2);
        assert_eq!(galerkin(&a, &p).to_dense(), a.to_dense());
    }

    #[test]
    fn galerkin_aggregates_rows() {
        // P aggregates {0,1} -> coarse 0 and {2} -> coarse 1.
        let a = Csr::from_dense(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let p = Csr::from_dense(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let ac = galerkin(&a, &p);
        // Pᵀ A P with constants-preserving P on an M-matrix: row sums of A
        // within aggregates.
        assert_eq!(ac.to_dense(), vec![vec![2.0, -1.0], vec![-1.0, 2.0]]);
    }

    #[test]
    fn galerkin_preserves_spd_property() {
        // xᵀ(PᵀAP)x = (Px)ᵀA(Px) > 0 for SPD A and full-rank P.
        let a = Csr::from_dense(&[
            vec![4.0, -1.0, 0.0, 0.0],
            vec![-1.0, 4.0, -1.0, 0.0],
            vec![0.0, -1.0, 4.0, -1.0],
            vec![0.0, 0.0, -1.0, 4.0],
        ]);
        let p = Csr::from_dense(&[
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ]);
        let ac = galerkin(&a, &p);
        let d = ac.to_dense();
        // Symmetry
        assert!((d[0][1] - d[1][0]).abs() < 1e-12);
        // Positive diagonal
        assert!(d[0][0] > 0.0 && d[1][1] > 0.0);
        // 2x2 determinant positive => SPD
        assert!(d[0][0] * d[1][1] - d[0][1] * d[1][0] > 0.0);
    }

    #[test]
    fn triple_product_matches_galerkin_for_transpose() {
        let a = Csr::from_dense(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let p = Csr::from_dense(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]);
        let g = galerkin(&a, &p);
        let t = triple_product(&p.transpose(), &a, &p);
        assert_eq!(g.to_dense(), t.to_dense());
    }

    #[test]
    fn flops_positive_for_nontrivial_product() {
        let a = Csr::identity(5);
        let p = Csr::identity(5);
        assert!(galerkin_flops(&a, &p) > 0);
    }
}
