//! Galerkin triple products for AMG coarse-operator construction.
//!
//! §4.1 of the paper: "Galerkin triple-matrix products are used to build
//! coarse-level operators", computed with parallel primitives and hypre's
//! hash SpGEMM. The same structure is used here.

use crate::csr::Csr;
use crate::spgemm::{spgemm_flops, spgemm_hash, SpgemmPlan};

/// A_c = Pᵀ · A · P (Galerkin coarse operator).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn galerkin(a: &Csr, p: &Csr) -> Csr {
    assert_eq!(a.nrows(), a.ncols(), "A must be square");
    assert_eq!(a.ncols(), p.nrows(), "A·P dimension mismatch");
    let ap = spgemm_hash(a, p);
    let rt = p.transpose();
    spgemm_hash(&rt, &ap)
}

/// Symbolic/numeric split for the whole Galerkin triple product.
///
/// Bundles the two [`SpgemmPlan`]s of `Pᵀ·(A·P)` plus the transpose
/// gather permutation, so a re-solve with value-only updates to `A`
/// and/or `P` never re-runs hash probing, transposition walks, or
/// assembly. Bitwise-identical to [`galerkin`] by composition: each
/// stage reproduces its fresh counterpart's bits (the transpose refresh
/// is a pure gather; the SpGEMM replays are covered by
/// [`SpgemmPlan`]'s contract).
pub struct GalerkinPlan {
    ap: SpgemmPlan,
    rap: SpgemmPlan,
    /// Pᵀ with the recorded structure; values refreshed per execute.
    pt: Csr,
    /// `pt_perm[pos]`: flat index in P's values feeding Pᵀ position `pos`.
    pt_perm: Vec<usize>,
}

impl GalerkinPlan {
    /// Fresh triple product + plan capture; the returned matrix is
    /// exactly what [`galerkin`] produces.
    pub fn new(a: &Csr, p: &Csr) -> (GalerkinPlan, Csr) {
        assert_eq!(a.nrows(), a.ncols(), "A must be square");
        assert_eq!(a.ncols(), p.nrows(), "A·P dimension mismatch");
        let (ap_plan, ap) = SpgemmPlan::new(a, p);
        let (pt, pt_perm) = p.transpose_with_perm();
        let (rap_plan, ac) = SpgemmPlan::new(&pt, &ap);
        (GalerkinPlan { ap: ap_plan, rap: rap_plan, pt, pt_perm }, ac)
    }

    /// Do `a` and `p` still have the structure this plan was built for?
    /// (The derived Pᵀ and A·P structures follow deterministically, so
    /// checking the inputs suffices.)
    pub fn matches(&self, a: &Csr, p: &Csr) -> bool {
        self.ap.matches(a, p)
    }

    /// Total products across both numeric passes (for cost models).
    pub fn expansion(&self) -> usize {
        self.ap.expansion() + self.rap.expansion()
    }

    /// Numeric-only Galerkin product on value-updated operands.
    pub fn execute(&mut self, a: &Csr, p: &Csr) -> Csr {
        debug_assert!(self.matches(a, p), "GalerkinPlan executed on stale operands");
        let ap = self.ap.execute(a, p);
        let pvals = p.vals();
        for (dst, &src) in self.pt_perm.iter().enumerate() {
            self.pt.vals_mut()[dst] = pvals[src];
        }
        self.rap.execute(&self.pt, &ap)
    }
}

/// General triple product R · A · P (restriction need not be Pᵀ).
pub fn triple_product(r: &Csr, a: &Csr, p: &Csr) -> Csr {
    let ap = spgemm_hash(a, p);
    spgemm_hash(r, &ap)
}

/// Flop estimate for [`galerkin`], for perf traces.
pub fn galerkin_flops(a: &Csr, p: &Csr) -> u64 {
    let ap = spgemm_hash(a, p); // symbolic-only estimate would do; reuse numeric
    spgemm_flops(a, p) + spgemm_flops(&p.transpose(), &ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galerkin_of_identity_interp_is_a() {
        let a = Csr::from_dense(&[vec![4.0, -1.0], vec![-1.0, 4.0]]);
        let p = Csr::identity(2);
        assert_eq!(galerkin(&a, &p).to_dense(), a.to_dense());
    }

    #[test]
    fn galerkin_aggregates_rows() {
        // P aggregates {0,1} -> coarse 0 and {2} -> coarse 1.
        let a = Csr::from_dense(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let p = Csr::from_dense(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let ac = galerkin(&a, &p);
        // Pᵀ A P with constants-preserving P on an M-matrix: row sums of A
        // within aggregates.
        assert_eq!(ac.to_dense(), vec![vec![2.0, -1.0], vec![-1.0, 2.0]]);
    }

    #[test]
    fn galerkin_preserves_spd_property() {
        // xᵀ(PᵀAP)x = (Px)ᵀA(Px) > 0 for SPD A and full-rank P.
        let a = Csr::from_dense(&[
            vec![4.0, -1.0, 0.0, 0.0],
            vec![-1.0, 4.0, -1.0, 0.0],
            vec![0.0, -1.0, 4.0, -1.0],
            vec![0.0, 0.0, -1.0, 4.0],
        ]);
        let p = Csr::from_dense(&[
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ]);
        let ac = galerkin(&a, &p);
        let d = ac.to_dense();
        // Symmetry
        assert!((d[0][1] - d[1][0]).abs() < 1e-12);
        // Positive diagonal
        assert!(d[0][0] > 0.0 && d[1][1] > 0.0);
        // 2x2 determinant positive => SPD
        assert!(d[0][0] * d[1][1] - d[0][1] * d[1][0] > 0.0);
    }

    #[test]
    fn triple_product_matches_galerkin_for_transpose() {
        let a = Csr::from_dense(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let p = Csr::from_dense(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]);
        let g = galerkin(&a, &p);
        let t = triple_product(&p.transpose(), &a, &p);
        assert_eq!(g.to_dense(), t.to_dense());
    }

    #[test]
    fn galerkin_plan_reuse_matches_fresh_bitwise() {
        let a0 = vec![
            vec![4.0, -1.0, 0.0, -0.5],
            vec![-1.0, 4.0, -1.0, 0.0],
            vec![0.0, -1.0, 4.0, -1.0],
            vec![-0.5, 0.0, -1.0, 4.0],
        ];
        let p0 = vec![
            vec![1.0, 0.0],
            vec![0.7, 0.3],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
        ];
        let mut a = Csr::from_dense(&a0);
        let mut p = Csr::from_dense(&p0);
        let (mut plan, c0) = GalerkinPlan::new(&a, &p);
        let g0 = galerkin(&a, &p);
        assert_eq!(c0.to_dense(), g0.to_dense());
        // Three rounds of value-only drift, as Picard re-solves produce.
        for round in 0..3 {
            for v in a.vals_mut() {
                *v += 0.013 * (round as f64 + 1.0);
            }
            for v in p.vals_mut() {
                *v *= 1.0 - 0.01 * (round as f64 + 1.0);
            }
            assert!(plan.matches(&a, &p));
            let fresh = galerkin(&a, &p);
            let replay = plan.execute(&a, &p);
            assert_eq!(replay.indptr(), fresh.indptr());
            assert_eq!(replay.indices(), fresh.indices());
            let fb: Vec<u64> = fresh.vals().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u64> = replay.vals().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, rb, "round {round}: plan replay diverged");
        }
        assert!(plan.expansion() > 0);
    }

    #[test]
    fn flops_positive_for_nontrivial_product() {
        let a = Csr::identity(5);
        let p = Csr::identity(5);
        assert!(galerkin_flops(&a, &p) > 0);
    }
}
