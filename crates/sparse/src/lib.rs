//! Local (on-rank) sparse linear algebra kernels.
//!
//! This crate is the stand-in for the CUDA/Thrust/cuSPARSE layer of the
//! SC'21 paper: Thrust-style `stable_sort_by_key`/`reduce_by_key`
//! primitives ([`prims`]), COO and CSR storage ([`coo`], [`csr`]),
//! a hash-based SpGEMM modeled on hypre's own (plus a sort/merge "ESC"
//! SpGEMM as the cuSPARSE-style comparator, [`spgemm`]), and the Galerkin
//! triple product used by AMG setup ([`rap`]).
//!
//! Data-parallel sections use rayon, standing in for the device thread
//! parallelism of the paper's kernels. All kernels expose cost estimators
//! ([`cost`]) so callers can record bytes/flops into per-rank traces.

pub mod coo;
pub mod cost;
pub mod csr;
pub mod dense;
pub mod policy;
pub mod prims;
pub mod rap;
pub mod sellcs;
pub mod spgemm;

pub use coo::Coo;
pub use csr::Csr;
pub use policy::{KernelChoice, KernelPolicy};
pub use sellcs::SellCs;
