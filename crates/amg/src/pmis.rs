//! PMIS coarsening (De Sterck, Yang, Heys [33]) — the only coarsening
//! BoomerAMG provides on GPUs.
//!
//! A modified Luby algorithm: every point gets a measure
//! `λ_i + rand_i` where λ_i counts the points it strongly influences;
//! undecided points that locally maximize the measure over their
//! undecided strong neighbours become C-points simultaneously, and
//! undecided points that strongly depend on a C-point become F-points.
//! The process is massively parallel — each round is a halo exchange plus
//! an independent sweep — which is what makes it "appropriate for GPUs"
//! (§4.1). Randomness is seeded per global id, so any rank count yields
//! the same splitting.

use distmat::{Halo, ParCsr, RowDist};
use parcomm::{KernelKind, Rank};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::strength::Strength;

/// Coarse/fine designation of a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CfState {
    /// Coarse point: survives to the next level.
    Coarse,
    /// Fine point: interpolated from coarse neighbours.
    Fine,
}

/// Result of a coarsening pass.
#[derive(Clone, Debug)]
pub struct CfSplit {
    /// Per-local-point designation.
    pub states: Vec<CfState>,
    /// Distribution of the coarse points across ranks.
    pub coarse_dist: RowDist,
    /// Global coarse id of each local point (C-points only).
    pub coarse_index: Vec<Option<u64>>,
}

impl CfSplit {
    /// Number of local C-points.
    pub fn n_coarse_local(&self) -> usize {
        self.states.iter().filter(|s| **s == CfState::Coarse).count()
    }
}

/// Where a neighbour's data lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    Local(usize),
    Ext(usize),
}

const UNDECIDED: u64 = 0;
const C_PT: u64 = 1;
const F_PT: u64 = 2;

/// Deterministic per-point random fraction in [0, 1).
fn point_rand(seed: u64, gid: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(gid.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    );
    rng.gen::<f64>()
}

/// Run PMIS on the strength pattern `s` of `a`. Collective.
pub fn pmis(rank: &Rank, a: &ParCsr, s: &Strength, seed: u64) -> CfSplit {
    let me = rank.rank();
    let dist = a.row_dist().clone();
    let n = dist.local_n(me);
    let start = dist.start(me);

    // Sᵀ, for the influence counts λ and the symmetrized adjacency.
    let sp = s.to_parcsr(rank, a);
    let st = distmat::ops::par_transpose(rank, &sp);

    // λ_i = number of points strongly influenced by i = |row i of Sᵀ|.
    // Per-point and seeded per gid, so the parallel map is deterministic.
    let weights: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| {
            let lambda = (st.diag.row(i).0.len() + st.offd.row(i).0.len()) as f64;
            lambda + point_rand(seed, start + i as u64)
        })
        .collect();
    rank.kernel(KernelKind::Stream, (n as u64) * 16, n as u64);

    // Symmetrized adjacency per local row, as (gid, location) pairs, and
    // the dependence set S_i for the F-designation rule.
    let mut ext_gids: Vec<u64> = Vec::new();
    let collect_ext = |gid: u64, ext_gids: &mut Vec<u64>| {
        if dist.owner(gid) != me {
            ext_gids.push(gid);
        }
    };
    for i in 0..n {
        for &c in s.soffd.row(i).0 {
            collect_ext(a.global_offd_col(c), &mut ext_gids);
        }
        for &c in st.offd.row(i).0 {
            collect_ext(st.global_offd_col(c), &mut ext_gids);
        }
    }
    ext_gids.sort_unstable();
    ext_gids.dedup();
    let halo = Halo::new(rank, &dist, ext_gids);
    let locate = |gid: u64| -> Loc {
        if dist.owner(gid) == me {
            Loc::Local((gid - start) as usize)
        } else {
            Loc::Ext(halo.col_map().binary_search(&gid).unwrap())
        }
    };

    // Row-local adjacency construction: a parallel map over points.
    // One point's `(symmetrised neighbours, dependencies)` as `(gid, locator)` lists.
    type AdjRow = (Vec<(u64, Loc)>, Vec<(u64, Loc)>);
    let rows: Vec<AdjRow> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut nbrs: Vec<u64> = Vec::new();
            let mut dep: Vec<u64> = Vec::new();
            for &c in s.sdiag.row(i).0 {
                let g = start + c as u64;
                nbrs.push(g);
                dep.push(g);
            }
            for &c in s.soffd.row(i).0 {
                let g = a.global_offd_col(c);
                nbrs.push(g);
                dep.push(g);
            }
            for &c in st.diag.row(i).0 {
                nbrs.push(start + c as u64);
            }
            for &c in st.offd.row(i).0 {
                nbrs.push(st.global_offd_col(c));
            }
            nbrs.sort_unstable();
            nbrs.dedup();
            nbrs.retain(|&g| g != start + i as u64);
            dep.retain(|&g| g != start + i as u64);
            (
                nbrs.iter().map(|&g| (g, locate(g))).collect(),
                dep.iter().map(|&g| (g, locate(g))).collect(),
            )
        })
        .collect();
    let mut sym: Vec<Vec<(u64, Loc)>> = Vec::with_capacity(n);
    let mut deps: Vec<Vec<(u64, Loc)>> = Vec::with_capacity(n);
    for (nbrs, dep) in rows {
        sym.push(nbrs);
        deps.push(dep);
    }

    // Exchange weights once; states every round.
    let ext_w = halo.exchange_f64(rank, &weights);
    let mut states = vec![UNDECIDED; n];
    // Points with no strong neighbours at all are F-points immediately
    // (nothing to interpolate from, smoother handles them).
    for i in 0..n {
        if sym[i].is_empty() {
            states[i] = F_PT;
        }
    }

    loop {
        let undecided = states.iter().filter(|&&st0| st0 == UNDECIDED).count() as u64;
        if rank.allreduce_sum(undecided) == 0 {
            break;
        }
        let ext_states = halo.exchange_u64(rank, &states);
        let state_of = |loc: Loc, snapshot: &[u64], ext: &[u64]| -> u64 {
            match loc {
                Loc::Local(l) => snapshot[l],
                Loc::Ext(e) => ext[e],
            }
        };
        let weight_of = |loc: Loc| -> f64 {
            match loc {
                Loc::Local(l) => weights[l],
                Loc::Ext(e) => ext_w[e],
            }
        };
        rank.kernel(KernelKind::Stream, (n as u64) * 24, n as u64);

        // Phase 1 (Jacobi-style on the state snapshot): undecided local
        // maxima among undecided neighbours become C. Every point's new
        // state is a pure function of the snapshot, so the sweep is a
        // parallel map.
        let snapshot = states;
        states = (0..n)
            .into_par_iter()
            .map(|i| {
                if snapshot[i] != UNDECIDED {
                    return snapshot[i];
                }
                let gi = start + i as u64;
                let wins = sym[i].iter().all(|&(gj, loc)| {
                    if state_of(loc, &snapshot, &ext_states) != UNDECIDED {
                        return true;
                    }
                    let wj = weight_of(loc);
                    (weights[i], gi) > (wj, gj)
                });
                if wins {
                    C_PT
                } else {
                    UNDECIDED
                }
            })
            .collect();
        // Phase 2: undecided points strongly depending on a C-point (old
        // or freshly chosen — local fresh C visible via the phase-1
        // result; remote fresh C visible next round) become F. Only
        // UNDECIDED→F transitions happen and only C states are read, so
        // sweeping over the phase-1 snapshot is equivalent to the
        // sequential in-place sweep.
        let ext_states2 = halo.exchange_u64(rank, &states);
        let snapshot = states;
        states = (0..n)
            .into_par_iter()
            .map(|i| {
                if snapshot[i] != UNDECIDED {
                    return snapshot[i];
                }
                let depends_on_c = deps[i].iter().any(|&(_, loc)| match loc {
                    Loc::Local(l) => snapshot[l] == C_PT,
                    Loc::Ext(e) => ext_states2[e] == C_PT,
                });
                if depends_on_c {
                    F_PT
                } else {
                    UNDECIDED
                }
            })
            .collect();
    }

    // Coarse numbering: contiguous per rank, in local order.
    let n_coarse_local = states.iter().filter(|&&st0| st0 == C_PT).count();
    let coarse_dist = RowDist::from_local_size(rank, n_coarse_local);
    let mut next = coarse_dist.start(me);
    let coarse_index: Vec<Option<u64>> = states
        .iter()
        .map(|&st0| {
            if st0 == C_PT {
                let id = next;
                next += 1;
                Some(id)
            } else {
                None
            }
        })
        .collect();
    CfSplit {
        states: states
            .into_iter()
            .map(|st0| if st0 == C_PT { CfState::Coarse } else { CfState::Fine })
            .collect(),
        coarse_dist,
        coarse_index,
    }
}

/// Second-pass (A-1 aggressive) coarsening: PMIS on the `S² + S` pattern
/// restricted to the C-points of a first pass. Returns the composed
/// splitting relative to the *original* points: C-points of the result
/// are a subset of `first`'s C-points. Collective.
pub fn pmis_aggressive(
    rank: &Rank,
    a: &ParCsr,
    s: &Strength,
    first: &CfSplit,
    seed: u64,
) -> CfSplit {
    let me = rank.rank();
    let dist = a.row_dist().clone();
    let n = dist.local_n(me);

    // S2 = S·S + S as a distributed pattern product.
    let sp = s.to_parcsr(rank, a);
    let ss = distmat::ops::par_spgemm(rank, &sp, &sp);
    let s2 = {
        // Union pattern: S·S + S via IJ assembly of both patterns.
        let mut ij = distmat::IjMatrix::new(rank, dist.clone(), dist.clone());
        let start = dist.start(me);
        for i in 0..n {
            let gi = start + i as u64;
            for &c in ss.diag.row(i).0 {
                ij.add_value(gi, ss.global_diag_col(c), 1.0);
            }
            for &c in ss.offd.row(i).0 {
                ij.add_value(gi, ss.global_offd_col(c), 1.0);
            }
            for &c in s.sdiag.row(i).0 {
                ij.add_value(gi, a.global_diag_col(c), 1.0);
            }
            for &c in s.soffd.row(i).0 {
                ij.add_value(gi, a.global_offd_col(c), 1.0);
            }
        }
        ij.assemble(rank)
    };

    // Restrict the S2 pattern to the CC block in first-pass coarse
    // numbering, building a small ParCsr on the coarse distribution.
    let cdist = first.coarse_dist.clone();
    let start = dist.start(me);
    // Coarse ids of external columns of s2.
    let ext_cids = {
        let halo = Halo::new(rank, &dist, s2.col_map_offd.clone());
        let local_cids: Vec<u64> = first
            .coarse_index
            .iter()
            .map(|ci| ci.map_or(u64::MAX, |c| c))
            .collect();
        halo.exchange_u64(rank, &local_cids)
    };
    let mut cc = sparse_kit::Coo::new();
    for i in 0..n {
        let Some(ci) = first.coarse_index[i] else {
            continue;
        };
        for &c in s2.diag.row(i).0 {
            let gj = s2.global_diag_col(c);
            if gj == start + i as u64 {
                continue;
            }
            let lj = (gj - start) as usize;
            if let Some(cj) = first.coarse_index[lj] {
                cc.push(ci, cj, 1.0);
            }
        }
        for &c in s2.offd.row(i).0 {
            let cj = ext_cids[c];
            if cj != u64::MAX {
                cc.push(ci, cj, 1.0);
            }
        }
    }
    let s2cc = ParCsr::from_global_coo(rank, cdist.clone(), cdist.clone(), &cc);

    // PMIS on the restricted pattern: reuse the machinery by treating the
    // CC pattern matrix as its own strength pattern.
    let s_cc = Strength {
        sdiag: s2cc.diag.clone(),
        soffd: s2cc.offd.clone(),
    };
    let second = pmis(rank, &s2cc, &s_cc, seed ^ 0xA66);

    // Compose back onto the original points.
    let mut states = vec![CfState::Fine; n];
    let mut n_final = 0usize;
    for (st, ci) in states.iter_mut().zip(&first.coarse_index) {
        if let Some(ci) = ci {
            let lci = (ci - cdist.start(me)) as usize;
            if second.states[lci] == CfState::Coarse {
                *st = CfState::Coarse;
                n_final += 1;
            }
        }
    }
    let final_dist = RowDist::from_local_size(rank, n_final);
    let mut next = final_dist.start(me);
    let coarse_index = states
        .iter()
        .map(|&st0| {
            if st0 == CfState::Coarse {
                let id = next;
                next += 1;
                Some(id)
            } else {
                None
            }
        })
        .collect();
    CfSplit {
        states,
        coarse_dist: final_dist,
        coarse_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;
    use sparse_kit::{Coo, Csr};

    fn laplacian_1d(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    fn laplacian_2d(nx: usize) -> Csr {
        let id = |i: usize, j: usize| (i * nx + j) as u64;
        let mut coo = Coo::new();
        for i in 0..nx {
            for j in 0..nx {
                coo.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    coo.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    coo.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    coo.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    coo.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        let n = nx * nx;
        Csr::from_coo(n, n, &coo)
    }

    fn run_pmis(serial: Csr, nranks: usize) -> Vec<(Vec<CfState>, Vec<Option<u64>>)> {
        let n = serial.nrows() as u64;
        Comm::run(nranks, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let split = pmis(rank, &a, &s, 7);
            (split.states, split.coarse_index)
        })
    }

    /// Gather the global CF vector from per-rank outputs.
    fn global_states(parts: &[(Vec<CfState>, Vec<Option<u64>>)]) -> Vec<CfState> {
        parts.iter().flat_map(|(s, _)| s.clone()).collect()
    }

    #[test]
    fn pmis_is_independent_set_in_strength_graph() {
        let serial = laplacian_2d(8);
        for p in [1, 2, 4] {
            let parts = run_pmis(serial.clone(), p);
            let states = global_states(&parts);
            // No two adjacent (strongly connected) points are both C.
            for i in 0..serial.nrows() {
                if states[i] != CfState::Coarse {
                    continue;
                }
                let (cols, _) = serial.row(i);
                for &j in cols {
                    if j != i {
                        assert_ne!(
                            states[j],
                            CfState::Coarse,
                            "adjacent C-C pair ({i},{j}) at p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pmis_is_maximal_every_f_sees_a_c() {
        let serial = laplacian_2d(8);
        let parts = run_pmis(serial.clone(), 2);
        let states = global_states(&parts);
        for i in 0..serial.nrows() {
            if states[i] == CfState::Fine {
                let (cols, _) = serial.row(i);
                let sees_c = cols.iter().any(|&j| j != i && states[j] == CfState::Coarse);
                assert!(sees_c, "F-point {i} has no C neighbour");
            }
        }
    }

    #[test]
    fn pmis_deterministic_across_rank_counts() {
        let serial = laplacian_1d(20);
        let s1 = global_states(&run_pmis(serial.clone(), 1));
        let s2 = global_states(&run_pmis(serial.clone(), 2));
        let s4 = global_states(&run_pmis(serial, 4));
        assert_eq!(s1, s2);
        assert_eq!(s1, s4);
    }

    #[test]
    fn coarse_indices_are_contiguous_per_rank() {
        let serial = laplacian_1d(16);
        let parts = run_pmis(serial, 2);
        let mut all: Vec<u64> = parts
            .iter()
            .flat_map(|(_, ci)| ci.iter().flatten().copied().collect::<Vec<_>>())
            .collect();
        let n_coarse = all.len();
        all.sort();
        let expected: Vec<u64> = (0..n_coarse as u64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn isolated_points_become_fine() {
        Comm::run(1, |rank| {
            let serial = Csr::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
            let dist = RowDist::block(2, 1);
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let split = pmis(rank, &a, &s, 0);
            assert!(split.states.iter().all(|&st0| st0 == CfState::Fine));
            assert_eq!(split.coarse_dist.global_n(), 0);
        });
    }

    #[test]
    fn aggressive_coarsens_further() {
        let serial = laplacian_2d(10);
        let n = serial.nrows() as u64;
        let out = Comm::run(2, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let first = pmis(rank, &a, &s, 7);
            let agg = pmis_aggressive(rank, &a, &s, &first, 7);
            (
                first.coarse_dist.global_n(),
                agg.coarse_dist.global_n(),
            )
        });
        let (n1, n2) = out[0];
        assert!(n1 > 0 && n2 > 0);
        assert!(n2 < n1, "aggressive must coarsen further: {n1} -> {n2}");
        // PMIS on a 2-D Laplacian keeps roughly 1/4 of points; aggressive
        // roughly squares the reduction.
        assert!(n2 as f64 <= 0.6 * n1 as f64, "{n1} -> {n2}");
    }

    #[test]
    fn aggressive_c_points_subset_of_first_pass() {
        let serial = laplacian_2d(8);
        let n = serial.nrows() as u64;
        Comm::run(2, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let first = pmis(rank, &a, &s, 3);
            let agg = pmis_aggressive(rank, &a, &s, &first, 3);
            for i in 0..agg.states.len() {
                if agg.states[i] == CfState::Coarse {
                    assert_eq!(first.states[i], CfState::Coarse);
                }
            }
        });
    }
}
