//! AMG setup: build the multilevel hierarchy.
//!
//! Standard levels run strength → PMIS → interpolation → Galerkin RAP.
//! The first `agg_levels` levels use A-1 **aggressive coarsening**: a
//! second PMIS pass on the `S² + S` pattern of the first-pass C-points,
//! combined with **two-stage interpolation** `P = P1·P2` — P1 interpolates
//! to the first-pass C-points (BAMG-direct weights), P2 interpolates
//! among them with the configured (matrix-based) operator, exactly the
//! §4.1 recipe used for the pressure-Poisson preconditioner.

use distmat::{ops, ParCsr, ParVector, RowDist};
use krylov::{Chebyshev, L1Jacobi, TwoStageGs};
use parcomm::Rank;
use resilience::faults::{self, FaultKind};
use resilience::{guard, SolveError};

use crate::coarse::CoarseSolver;
use crate::config::{AmgConfig, InterpType, SmootherType};
use crate::interp::build_interpolation;
use crate::pmis::{pmis, pmis_aggressive, CfSplit, CfState};
use crate::reuse::AmgReuse;
use crate::strength::Strength;

/// The smoother bound to one level (selected by
/// [`AmgConfig::smoother`]).
#[derive(Clone, Debug)]
pub enum LevelSmoother {
    /// Two-stage Gauss-Seidel (§4.2).
    TwoStage(TwoStageGs),
    /// ℓ1-Jacobi.
    L1(L1Jacobi),
    /// Chebyshev polynomial.
    Cheby(Chebyshev),
}

impl LevelSmoother {
    /// Build the configured smoother for a level operator. Collective
    /// (Chebyshev runs a power iteration).
    pub fn build(rank: &Rank, a: &ParCsr, config: &AmgConfig) -> LevelSmoother {
        match config.smoother {
            SmootherType::TwoStageGs => {
                LevelSmoother::TwoStage(TwoStageGs::new(a, config.smooth_inner, 1))
            }
            SmootherType::L1Jacobi => LevelSmoother::L1(L1Jacobi::new(a)),
            SmootherType::Chebyshev => {
                LevelSmoother::Cheby(Chebyshev::new(rank, a, config.smooth_inner.max(2)))
            }
        }
    }

    /// Apply `rounds` smoothing rounds. Collective.
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        match self {
            LevelSmoother::TwoStage(s) => s.smooth(rank, b, x, rounds),
            LevelSmoother::L1(s) => s.smooth(rank, b, x, rounds),
            LevelSmoother::Cheby(s) => s.smooth(rank, b, x, rounds),
        }
    }
}

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct AmgLevel {
    /// The operator on this level.
    pub a: ParCsr,
    /// Interpolation to this level from the next coarser one (absent on
    /// the coarsest level).
    pub p: Option<ParCsr>,
    /// Restriction (Pᵀ) to the next coarser level.
    pub r: Option<ParCsr>,
    /// The level smoother.
    pub smoother: LevelSmoother,
}

/// Global size of one hierarchy level (the rows of the paper's
/// Tables 2–4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AmgLevelStat {
    /// Global rows of the level operator.
    pub rows: u64,
    /// Global nonzeros of the level operator.
    pub nnz: u64,
}

/// A complete AMG hierarchy plus complexity statistics.
#[derive(Clone, Debug)]
pub struct AmgHierarchy {
    /// Levels, finest first.
    pub levels: Vec<AmgLevel>,
    /// Dense solver for the coarsest operator.
    pub coarse: CoarseSolver,
    /// Global rows/nnz per level, finest first (one entry per level).
    pub level_stats: Vec<AmgLevelStat>,
    /// Σ global rows over levels / global rows on the finest level.
    pub grid_complexity: f64,
    /// Σ global nnz over levels / global nnz on the finest level.
    pub operator_complexity: f64,
}

/// A coarsening stall is tolerated (hierarchy truncated, as before)
/// when the stalled level is within this factor of `max_coarse_size`;
/// any larger and the stall is a [`SolveError::CoarseningStagnation`] —
/// the coarse "solve" would be a near-full-size dense factorization.
const STALL_TOLERANCE_FACTOR: u64 = 4;

impl AmgHierarchy {
    /// Build the hierarchy for `a`. Collective.
    ///
    /// # Errors
    ///
    /// - [`SolveError::NonFiniteCoefficient`] — the finest operator
    ///   contains NaN/Inf entries (count allreduced, so every rank
    ///   errors together).
    /// - [`SolveError::CoarseningStagnation`] — PMIS stopped shrinking
    ///   the grid while it is still far above `max_coarse_size`.
    pub fn setup(rank: &Rank, a: ParCsr, config: &AmgConfig) -> Result<AmgHierarchy, SolveError> {
        Self::setup_with_reuse(rank, a, config, &mut AmgReuse::new())
    }

    /// [`AmgHierarchy::setup`] with a cross-solve [`AmgReuse`] store:
    /// every Galerkin SpGEMM whose operand structure matches the plan
    /// recorded by the previous setup through the same store replays
    /// numerically ("spgemm_numeric" kernel) instead of rebuilding.
    /// Strength, PMIS and interpolation are value-dependent and always
    /// run fresh. Collective.
    ///
    /// # Errors
    ///
    /// As [`AmgHierarchy::setup`].
    pub fn setup_with_reuse(
        rank: &Rank,
        a: ParCsr,
        config: &AmgConfig,
        reuse: &mut AmgReuse,
    ) -> Result<AmgHierarchy, SolveError> {
        reuse.begin();
        let local_bad =
            guard::count_nonfinite(a.diag.vals()) + guard::count_nonfinite(a.offd.vals());
        let bad = rank.allreduce_sum(local_bad);
        if bad > 0 {
            return Err(SolveError::NonFiniteCoefficient {
                context: rank.phase_name(),
                count: bad,
            });
        }

        let mut levels: Vec<AmgLevel> = Vec::new();
        let mut a_cur = a;
        let fine_n = a_cur.row_dist().global_n().max(1);
        let fine_nnz = a_cur.global_nnz(rank).max(1);
        let mut sum_n = 0u64;
        let mut sum_nnz = 0u64;
        let mut level_stats: Vec<AmgLevelStat> = Vec::new();

        for lvl in 0..config.max_levels {
            let lvl_n = a_cur.row_dist().global_n();
            let lvl_nnz = a_cur.global_nnz(rank);
            sum_n += lvl_n;
            sum_nnz += lvl_nnz;
            level_stats.push(AmgLevelStat { rows: lvl_n, nnz: lvl_nnz });
            if a_cur.row_dist().global_n() <= config.max_coarse_size as u64 {
                break;
            }
            let stall_is_fatal =
                lvl_n > STALL_TOLERANCE_FACTOR * config.max_coarse_size.max(1) as u64;
            // Fault hook: a `coarsen-stall` spec forces this level's PMIS
            // pass to be treated as degenerate (identical on every rank:
            // the plan and occurrence counters are replicated per rank).
            if faults::fire(FaultKind::CoarsenStall, || rank.phase_name()) {
                if stall_is_fatal {
                    return Err(SolveError::CoarseningStagnation { level: lvl, rows: lvl_n });
                }
                break;
            }
            let s = Strength::classical(rank, &a_cur, config.strength_threshold);
            let seed = config.seed.wrapping_add(lvl as u64);
            let first = pmis(rank, &a_cur, &s, seed);
            if first.coarse_dist.global_n() == 0
                || first.coarse_dist.global_n() == a_cur.row_dist().global_n()
            {
                // Coarsening stalled: tolerable near the coarse-solver
                // threshold, an error while the grid is still large.
                if stall_is_fatal {
                    return Err(SolveError::CoarseningStagnation { level: lvl, rows: lvl_n });
                }
                break;
            }

            let (p, r, a_next) = if lvl < config.agg_levels {
                match Self::aggressive_level(rank, &a_cur, &s, &first, config, seed, reuse) {
                    Some(triple) => triple,
                    None => Self::standard_level(rank, &a_cur, &s, &first, config, reuse),
                }
            } else {
                Self::standard_level(rank, &a_cur, &s, &first, config, reuse)
            };

            let smoother = LevelSmoother::build(rank, &a_cur, config);
            levels.push(AmgLevel {
                a: a_cur,
                p: Some(p),
                r: Some(r),
                smoother,
            });
            a_cur = a_next;
        }
        // Coarsest level.
        if level_stats.len() == levels.len() {
            // `max_levels` was exhausted, so the loop never visited the
            // final coarse operator: record its stats here. This is a
            // collective, but `levels.len()` is identical on every rank
            // (hierarchy construction is collective), so all ranks take
            // this branch together. The complexity sums intentionally
            // keep their historical definition (they exclude this level
            // in the exhausted case).
            level_stats.push(AmgLevelStat {
                rows: a_cur.row_dist().global_n(),
                nnz: a_cur.global_nnz(rank),
            });
        }
        let smoother = LevelSmoother::build(rank, &a_cur, config);
        let coarse = CoarseSolver::new(rank, &a_cur);
        levels.push(AmgLevel {
            a: a_cur,
            p: None,
            r: None,
            smoother,
        });

        let hierarchy = AmgHierarchy {
            levels,
            coarse,
            level_stats,
            grid_complexity: sum_n as f64 / fine_n as f64,
            operator_complexity: sum_nnz as f64 / fine_nnz as f64,
        };
        hierarchy.emit_telemetry(rank);
        reuse.finish();
        Ok(hierarchy)
    }

    /// Record an `amg_setup` event on this rank's telemetry dispatcher.
    /// One thread-local read when telemetry is disabled.
    fn emit_telemetry(&self, rank: &Rank) {
        let tel = telemetry::current();
        if !tel.is_enabled() {
            return;
        }
        tel.record(telemetry::Event::AmgSetup {
            rank: rank.rank(),
            path: tel.current_path(),
            levels: self
                .level_stats
                .iter()
                .enumerate()
                .map(|(i, s)| telemetry::AmgLevelRow {
                    level: i,
                    rows: s.rows,
                    nnz: s.nnz,
                })
                .collect(),
            grid_complexity: self.grid_complexity,
            operator_complexity: self.operator_complexity,
        });
    }

    /// Standard level: one PMIS pass, one interpolation, one RAP with
    /// both Galerkin legs routed through the reuse store. Returns
    /// `(P, R, A_next)`; R is the transpose the RAP needed anyway —
    /// shared instead of recomputed.
    fn standard_level(
        rank: &Rank,
        a: &ParCsr,
        s: &Strength,
        split: &CfSplit,
        config: &AmgConfig,
        reuse: &mut AmgReuse,
    ) -> (ParCsr, ParCsr, ParCsr) {
        let p = build_interpolation(rank, a, s, split, config.interp, config.trunc_factor);
        let ap = reuse.spgemm(rank, a, &p);
        let pt = ops::par_transpose(rank, &p);
        let a_next = reuse.spgemm(rank, &pt, &ap);
        (p, pt, a_next)
    }

    /// Aggressive level: second PMIS on S²+S, two-stage interpolation.
    /// Returns `None` when the second pass degenerates (falls back to
    /// standard coarsening).
    fn aggressive_level(
        rank: &Rank,
        a: &ParCsr,
        s: &Strength,
        first: &CfSplit,
        config: &AmgConfig,
        seed: u64,
        reuse: &mut AmgReuse,
    ) -> Option<(ParCsr, ParCsr, ParCsr)> {
        let agg = pmis_aggressive(rank, a, s, first, seed);
        let n_final = rank.allreduce_sum(agg.n_coarse_local() as u64);
        if n_final == 0 || n_final == first.coarse_dist.global_n() {
            return None;
        }
        // Stage 1: interpolate to the first-pass C-points (distance-one
        // BAMG-direct weights are standard for the first stage).
        let p1 = build_interpolation(rank, a, s, first, InterpType::BamgDirect, config.trunc_factor);
        let ap1 = reuse.spgemm(rank, a, &p1);
        let p1t = ops::par_transpose(rank, &p1);
        let a1 = reuse.spgemm(rank, &p1t, &ap1);
        // Stage 2: CF-split of the first-pass C-points given by the
        // second PMIS pass, interpolated with the configured (MM-based)
        // operator on the intermediate operator A1.
        let split2 = Self::restrict_split(rank, first, &agg);
        let s1 = Strength::classical(rank, &a1, config.strength_threshold);
        let p2 = build_interpolation(rank, &a1, &s1, &split2, config.interp, config.trunc_factor);
        // P = P1·P2; A_next = P2ᵀ A1 P2 = Pᵀ A P.
        let p = reuse.spgemm(rank, &p1, &p2);
        let ap2 = reuse.spgemm(rank, &a1, &p2);
        let p2t = ops::par_transpose(rank, &p2);
        let a_next = reuse.spgemm(rank, &p2t, &ap2);
        let r = ops::par_transpose(rank, &p);
        Some((p, r, a_next))
    }

    /// Express the composed aggressive splitting relative to the
    /// first-pass coarse points (the rows of A1).
    fn restrict_split(rank: &Rank, first: &CfSplit, agg: &CfSplit) -> CfSplit {
        let me = rank.rank();
        let mut states = Vec::with_capacity(first.n_coarse_local());
        let mut coarse_index = Vec::with_capacity(first.n_coarse_local());
        for i in 0..first.states.len() {
            if first.coarse_index[i].is_some() {
                states.push(agg.states[i]);
                coarse_index.push(agg.coarse_index[i]);
            }
        }
        debug_assert_eq!(
            states.len(),
            first.coarse_dist.local_n(me),
            "restricted split size mismatch"
        );
        CfSplit {
            states,
            coarse_dist: agg.coarse_dist.clone(),
            coarse_index,
        }
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Global rows per level (collective-free: from stored dists).
    pub fn level_sizes(&self) -> Vec<u64> {
        self.levels
            .iter()
            .map(|l| l.a.row_dist().global_n())
            .collect()
    }
}

/// Convenience: how many points ended coarse on this rank.
pub fn count_coarse(states: &[CfState]) -> usize {
    states.iter().filter(|s| **s == CfState::Coarse).count()
}

/// Re-export for benches: build the finest-level distribution of a serial
/// matrix and set up AMG in one call (test/bench helper). Panics on a
/// [`SolveError`] — bench/test inputs are healthy by construction.
pub fn setup_from_serial(
    rank: &Rank,
    serial: &sparse_kit::Csr,
    config: &AmgConfig,
) -> AmgHierarchy {
    let dist = RowDist::block(serial.nrows() as u64, rank.size());
    let a = ParCsr::from_serial(rank, dist.clone(), dist, serial);
    AmgHierarchy::setup(rank, a, config).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;
    use sparse_kit::{Coo, Csr};

    fn laplacian_2d(nx: usize) -> Csr {
        let id = |i: usize, j: usize| (i * nx + j) as u64;
        let mut coo = Coo::new();
        for i in 0..nx {
            for j in 0..nx {
                coo.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    coo.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    coo.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    coo.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    coo.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        let n = nx * nx;
        Csr::from_coo(n, n, &coo)
    }

    #[test]
    fn hierarchy_coarsens_to_small_grid() {
        let serial = laplacian_2d(16); // 256 points
        for p in [1, 2] {
            let s2 = serial.clone();
            let out = Comm::run(p, move |rank| {
                let h = setup_from_serial(rank, &s2, &AmgConfig::standard());
                (h.n_levels(), h.level_sizes(), h.grid_complexity, h.operator_complexity)
            });
            let (nl, sizes, gc, oc) = out[0].clone();
            assert!(nl >= 2, "p={p}: {sizes:?}");
            assert!(*sizes.last().unwrap() <= 40);
            // Sizes strictly decreasing.
            for w in sizes.windows(2) {
                assert!(w[1] < w[0], "{sizes:?}");
            }
            assert!(gc < 2.5, "grid complexity {gc}");
            assert!(oc < 5.0, "operator complexity {oc}");
        }
    }

    #[test]
    fn aggressive_reduces_complexity() {
        let serial = laplacian_2d(20);
        let out = Comm::run(2, move |rank| {
            let std_cfg = AmgConfig::standard();
            let agg_cfg = AmgConfig {
                agg_levels: 2,
                interp: InterpType::MmExt,
                ..AmgConfig::standard()
            };
            let h_std = setup_from_serial(rank, &serial, &std_cfg);
            let h_agg = setup_from_serial(rank, &serial, &agg_cfg);
            (
                h_std.grid_complexity,
                h_agg.grid_complexity,
                h_std.level_sizes(),
                h_agg.level_sizes(),
            )
        });
        let (gc_std, gc_agg, sizes_std, sizes_agg) = out[0].clone();
        assert!(
            gc_agg < gc_std,
            "aggressive {gc_agg} ({sizes_agg:?}) vs standard {gc_std} ({sizes_std:?})"
        );
        // Second level must be much smaller under aggressive coarsening.
        assert!(sizes_agg[1] < sizes_std[1]);
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn setup_with_reuse_replays_bitwise() {
        // Second setup through the same store (values drifted, structure
        // fixed — the Picard scenario) must replay every Galerkin
        // product and produce levels bit-identical to a fresh setup.
        let serial = laplacian_2d(16);
        for cfg in [AmgConfig::standard(), AmgConfig::pressure_default()] {
            let s2 = serial.clone();
            Comm::run(2, move |rank| {
                let dist = RowDist::block(256, rank.size());
                let a = distmat::ParCsr::from_serial(rank, dist.clone(), dist.clone(), &s2);
                let mut reuse = AmgReuse::new();
                let h0 =
                    AmgHierarchy::setup_with_reuse(rank, a.clone(), &cfg, &mut reuse).unwrap();
                let planned = reuse.n_plans();
                assert!(planned >= 2, "expected recorded Galerkin plans");
                let mut a2 = a.clone();
                a2.scale(0.5);
                let h1 = AmgHierarchy::setup_with_reuse(rank, a2.clone(), &cfg, &mut reuse)
                    .unwrap();
                // Uniform scaling preserves the strength pattern, so
                // every plan must have been reused, not re-recorded.
                assert_eq!(reuse.n_plans(), planned);
                let h1_fresh = AmgHierarchy::setup(rank, a2, &cfg).unwrap();
                assert_eq!(h1.n_levels(), h0.n_levels());
                assert_eq!(h1.n_levels(), h1_fresh.n_levels());
                for (lr, lf) in h1.levels.iter().zip(&h1_fresh.levels) {
                    assert_eq!(bits(lr.a.diag.vals()), bits(lf.a.diag.vals()));
                    assert_eq!(bits(lr.a.offd.vals()), bits(lf.a.offd.vals()));
                }
            });
        }
    }

    #[test]
    fn hierarchy_identical_across_rank_counts() {
        let serial = laplacian_2d(12);
        let mut all_sizes = Vec::new();
        for p in [1, 2, 3] {
            let s2 = serial.clone();
            let out = Comm::run(p, move |rank| {
                let h = setup_from_serial(rank, &s2, &AmgConfig::pressure_default());
                h.level_sizes()
            });
            all_sizes.push(out[0].clone());
        }
        assert_eq!(all_sizes[0], all_sizes[1]);
        assert_eq!(all_sizes[0], all_sizes[2]);
    }

    #[test]
    fn galerkin_operators_keep_nullspace_property() {
        // For the Neumann-interior Laplacian rows, the coarse operator
        // applied to constants should vanish on interior coarse points:
        // check ‖A_c·1‖ ≪ ‖A_c‖·‖1‖ (boundary rows contribute).
        let serial = laplacian_2d(12);
        Comm::run(2, move |rank| {
            let h = setup_from_serial(rank, &serial, &AmgConfig::standard());
            if h.n_levels() < 2 {
                return;
            }
            let ac = &h.levels[1].a;
            let ones = distmat::ParVector::from_fn(rank, ac.row_dist().clone(), |_| 1.0);
            let y = ac.spmv(rank, &ones);
            let norm_y = y.norm2(rank);
            // The 2-D Dirichlet Laplacian has row sums ≥ 0 with boundary
            // contributions; the Galerkin operator inherits positive but
            // bounded row sums.
            assert!(norm_y.is_finite());
            let diag_norm: f64 = ac.diagonal().iter().map(|d| d * d).sum::<f64>().sqrt();
            let total_diag = rank.allreduce_sum_f64(diag_norm * diag_norm).sqrt();
            assert!(norm_y < total_diag, "coarse op blew up: {norm_y} vs {total_diag}");
        });
    }

    #[test]
    fn level_stats_cover_every_level() {
        let serial = laplacian_2d(16);
        for (p, cfg) in [
            (2, AmgConfig::standard()),
            // Exhaust max_levels so the coarsest operator is only
            // counted by the post-loop branch.
            (2, AmgConfig { max_levels: 2, ..AmgConfig::standard() }),
        ] {
            let s2 = serial.clone();
            let out = Comm::run(p, move |rank| {
                let h = setup_from_serial(rank, &s2, &cfg);
                (h.level_stats.clone(), h.level_sizes(), h.levels[0].a.global_nnz(rank))
            });
            for (stats, sizes, fine_nnz) in out {
                assert_eq!(stats.len(), sizes.len(), "{stats:?} vs {sizes:?}");
                for (s, n) in stats.iter().zip(&sizes) {
                    assert_eq!(s.rows, *n);
                    assert!(s.nnz > 0);
                }
                assert_eq!(stats[0].nnz, fine_nnz);
            }
        }
    }

    #[test]
    fn non_finite_operator_is_rejected_before_setup() {
        // One NaN coefficient (owned by rank 0 only) must fail setup on
        // EVERY rank with the allreduced count — not just where it lives.
        let mut coo = Coo::new();
        coo.push(0, 0, f64::NAN);
        for i in 1..64u64 {
            coo.push(i, i, 2.0);
        }
        let serial = Csr::from_coo(64, 64, &coo);
        let errs = Comm::run(2, move |rank| {
            let dist = distmat::RowDist::block(64, rank.size());
            let a = distmat::ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            AmgHierarchy::setup(rank, a, &AmgConfig::standard()).unwrap_err()
        });
        for err in errs {
            match err {
                SolveError::NonFiniteCoefficient { count, .. } => assert_eq!(count, 1),
                other => panic!("expected NonFiniteCoefficient, got {other:?}"),
            }
        }
    }

    #[test]
    fn forced_coarsen_stall_is_a_typed_error_on_large_grids() {
        // A `coarsen-stall` fault on a grid far above max_coarse_size
        // must surface as CoarseningStagnation instead of silently
        // truncating the hierarchy into a huge dense coarse solve.
        let serial = laplacian_2d(16); // 256 rows
        let errs = Comm::run(2, move |rank| {
            let plan = resilience::FaultPlan::parse("coarsen-stall@amg").unwrap();
            let _g = plan.install();
            let dist = distmat::RowDist::block(256, rank.size());
            let a = distmat::ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            rank.with_phase("amg setup", || {
                AmgHierarchy::setup(rank, a, &AmgConfig::standard())
            })
            .unwrap_err()
        });
        for err in errs {
            assert!(
                matches!(err, SolveError::CoarseningStagnation { level: 0, rows: 256 }),
                "expected CoarseningStagnation, got {err:?}"
            );
        }
    }

    #[test]
    fn small_matrix_yields_single_level() {
        let serial = laplacian_2d(4); // 16 < max_coarse_size
        Comm::run(1, |rank| {
            let h = setup_from_serial(rank, &serial, &AmgConfig::standard());
            assert_eq!(h.n_levels(), 1);
            assert!(h.levels[0].p.is_none());
        });
    }
}
