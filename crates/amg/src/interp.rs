//! Interpolation operators (§4.1).
//!
//! - [`direct_interpolation`] — classical direct and the BAMG variant:
//!   the interpolatory set of a fine point `i` is its strong C-neighbours,
//!   so the weights come from the i-th equation alone. The BAMG weights
//!   are the closed-form solution of the local optimization problem (1)
//!   for a constant near-nullspace, Eq. (2): strong-F mass is distributed
//!   equally over the strong C-neighbours and weak mass is lumped into
//!   the diagonal, which preserves constants exactly on zero-row-sum
//!   matrices.
//! - [`mm_ext_interpolation`] — the matrix-matrix extended operator
//!   "MM-ext": `W = −[(D_FF + D_γ)⁻¹(Aˢ_FF + D_β)]·[D_β⁻¹ Aˢ_FC]` with
//!   `D_β = diag(Aˢ_FC·1)` and `D_γ = diag(Aʷ_FF·1 + Aʷ_FC·1)`, built
//!   entirely from distributed sparse products and diagonal scalings —
//!   reaching C-points at distance two without any dynamic pattern
//!   negotiation. The "+i" variant adds a constant-preserving row
//!   rescale.

use distmat::{Halo, ParCsr, RowDist};
use parcomm::{KernelKind, Rank};
use rayon::prelude::*;
use sparse_kit::Coo;

use crate::config::InterpType;
use crate::pmis::{CfSplit, CfState};

/// Ext-point info pulled over A's halo: state and coarse id (and, for the
/// MM operators, F id) per external column. All values travel in a single
/// packed exchange so they are mutually consistent by construction.
struct ExtInfo {
    is_coarse: Vec<bool>,
    coarse_id: Vec<u64>,
    f_id: Vec<u64>,
}

fn exchange_ext_info(
    rank: &Rank,
    a: &ParCsr,
    split: &CfSplit,
    f_index: Option<&[Option<u64>]>,
) -> ExtInfo {
    let halo = Halo::new(rank, a.row_dist(), a.col_map_offd.clone());
    // Pack (state, coarse id, f id) into one word triple-exchange: packed
    // as three sequential exchanges over the SAME halo object would also
    // be consistent, but a single packed array removes even the
    // possibility of skew.
    let n = split.states.len();
    let mut packed = vec![0u64; 3 * n];
    for i in 0..n {
        packed[3 * i] = if split.states[i] == CfState::Coarse { 1 } else { 0 };
        packed[3 * i + 1] = split.coarse_index[i].unwrap_or(u64::MAX);
        packed[3 * i + 2] = f_index
            .map(|f| f[i].unwrap_or(u64::MAX))
            .unwrap_or(u64::MAX);
    }
    // Exchange triple-width values by building a halo over a widened view:
    // simplest correct approach — three exchanges over one halo (FIFO per
    // pair on a dedicated tag keeps them aligned).
    let states: Vec<u64> = (0..n).map(|i| packed[3 * i]).collect();
    let cids: Vec<u64> = (0..n).map(|i| packed[3 * i + 1]).collect();
    let fids: Vec<u64> = (0..n).map(|i| packed[3 * i + 2]).collect();
    let ext_states = halo.exchange_u64(rank, &states);
    let ext_cids = halo.exchange_u64(rank, &cids);
    let ext_fids = halo.exchange_u64(rank, &fids);
    // Cross-consistency: a point is Coarse iff it has a coarse id; Fine
    // iff it has an F id (when f ids were provided).
    for c in 0..ext_states.len() {
        let coarse = ext_states[c] == 1;
        assert_eq!(
            coarse,
            ext_cids[c] != u64::MAX,
            "ext point gid {} state/cid mismatch (state={}, cid={})",
            a.global_offd_col(c),
            ext_states[c],
            ext_cids[c],
        );
        if f_index.is_some() {
            assert_eq!(
                !coarse,
                ext_fids[c] != u64::MAX,
                "ext point gid {} state/fid mismatch (state={}, fid={})",
                a.global_offd_col(c),
                ext_states[c],
                ext_fids[c],
            );
        }
    }
    ExtInfo {
        is_coarse: ext_states.iter().map(|&s| s == 1).collect(),
        coarse_id: ext_cids,
        f_id: ext_fids,
    }
}

/// Truncate an interpolation row: drop weights below `factor · max|w|`,
/// then rescale so the row sum is preserved (hypre's truncation).
fn truncate_row(cols: &mut Vec<u64>, vals: &mut Vec<f64>, factor: f64) {
    if factor <= 0.0 || vals.is_empty() {
        return;
    }
    let max_abs = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let cut = factor * max_abs;
    let old_sum: f64 = vals.iter().sum();
    let mut k = 0;
    for i in 0..vals.len() {
        if vals[i].abs() >= cut {
            cols[k] = cols[i];
            vals[k] = vals[i];
            k += 1;
        }
    }
    cols.truncate(k);
    vals.truncate(k);
    let new_sum: f64 = vals.iter().sum();
    if new_sum != 0.0 && old_sum != 0.0 {
        let scale = old_sum / new_sum;
        for v in vals.iter_mut() {
            *v *= scale;
        }
    }
}

/// Build direct (or BAMG-direct) interpolation from a CF splitting.
/// Collective.
pub fn direct_interpolation(
    rank: &Rank,
    a: &ParCsr,
    s: &crate::strength::Strength,
    split: &CfSplit,
    bamg: bool,
    trunc_factor: f64,
) -> ParCsr {
    let me = rank.rank();
    let dist = a.row_dist().clone();
    let start = dist.start(me);
    let n = dist.local_n(me);
    let ext = exchange_ext_info(rank, a, split, None);
    rank.kernel(KernelKind::Stream, a.local_nnz() as u64 * 16, a.local_nnz() as u64);

    // Every interpolation row depends only on row i of A/S and the halo
    // info, so the Eq.-(2) weights are computed in a parallel map; the
    // rows are then emitted in ascending row order for a deterministic
    // operator at any thread count.
    let rows: Vec<Vec<(u64, f64)>> = (0..n)
        .into_par_iter()
        .map(|i| {
        if let Some(ci) = split.coarse_index[i] {
            return vec![(ci, 1.0)];
        }
        // Strong-column membership for this row.
        let (s_dcols, _) = s.sdiag.row(i);
        let (s_ocols, _) = s.soffd.row(i);
        let is_strong_diag = |c: usize| s_dcols.binary_search(&c).is_ok();
        let is_strong_offd = |c: usize| s_ocols.binary_search(&c).is_ok();

        // Pass 1: classify the row.
        let mut a_ii = 0.0;
        let mut sum_weak = 0.0; // Σ over weak neighbours
        let mut sum_strong_f = 0.0; // Σ over strong F-neighbours
        let mut sum_strong_c = 0.0; // Σ over strong C-neighbours
        let mut strong_c: Vec<(u64, f64)> = Vec::new(); // (coarse id, a_ij)
        let (dc, dv) = a.diag.row(i);
        for (&c, &v) in dc.iter().zip(dv) {
            if c == i {
                a_ii = v;
            } else if is_strong_diag(c) {
                if split.states[c] == CfState::Coarse {
                    sum_strong_c += v;
                    strong_c.push((split.coarse_index[c].unwrap(), v));
                } else {
                    sum_strong_f += v;
                }
            } else {
                sum_weak += v;
            }
        }
        let (oc, ov) = a.offd.row(i);
        for (&c, &v) in oc.iter().zip(ov) {
            if is_strong_offd(c) {
                if ext.is_coarse[c] {
                    sum_strong_c += v;
                    strong_c.push((ext.coarse_id[c], v));
                } else {
                    sum_strong_f += v;
                }
            } else {
                sum_weak += v;
            }
        }
        if strong_c.is_empty() {
            return Vec::new(); // PMIS F-point without C-neighbours: zero row.
        }
        // Pass 2: weights.
        let n_cs = strong_c.len() as f64;
        let mut cols: Vec<u64> = Vec::with_capacity(strong_c.len());
        let mut vals: Vec<f64> = Vec::with_capacity(strong_c.len());
        if bamg {
            // Eq. (2): w_ij = −(a_ij + β_i/n_Cs)/(a_ii + Σ_weak a_ik),
            // β_i = strong-F mass.
            let denom = a_ii + sum_weak;
            if denom == 0.0 {
                return Vec::new();
            }
            for (cid, aij) in strong_c {
                cols.push(cid);
                vals.push(-(aij + sum_strong_f / n_cs) / denom);
            }
        } else {
            // Classical direct interpolation (Stüben): w_ij =
            // −α_i·a_ij/a_ii with α = (Σ off-diag)/(Σ strong C).
            if a_ii == 0.0 || sum_strong_c == 0.0 {
                return Vec::new();
            }
            let alpha = (sum_weak + sum_strong_f + sum_strong_c) / sum_strong_c;
            for (cid, aij) in strong_c {
                cols.push(cid);
                vals.push(-alpha * aij / a_ii);
            }
        }
        truncate_row(&mut cols, &mut vals, trunc_factor);
        cols.into_iter().zip(vals).collect()
        })
        .collect();
    let mut coo = Coo::new();
    for (i, row) in rows.into_iter().enumerate() {
        let gi = start + i as u64;
        for (c, v) in row {
            coo.push(gi, c, v);
        }
    }
    ParCsr::from_global_coo(rank, dist, split.coarse_dist.clone(), &coo)
}

/// Build the MM-ext (or MM-ext+i) interpolation operator. Collective.
pub fn mm_ext_interpolation(
    rank: &Rank,
    a: &ParCsr,
    s: &crate::strength::Strength,
    split: &CfSplit,
    plus_i: bool,
    trunc_factor: f64,
) -> ParCsr {
    let me = rank.rank();
    let dist = a.row_dist().clone();
    let start = dist.start(me);
    let n = dist.local_n(me);

    // F-point numbering (contiguous per rank, like the coarse numbering).
    let n_f_local = split.states.iter().filter(|s| **s == CfState::Fine).count();
    let f_dist = RowDist::from_local_size(rank, n_f_local);
    let mut next_f = f_dist.start(me);
    let f_index: Vec<Option<u64>> = split
        .states
        .iter()
        .map(|s| {
            if *s == CfState::Fine {
                let id = next_f;
                next_f += 1;
                Some(id)
            } else {
                None
            }
        })
        .collect();
    let ext = exchange_ext_info(rank, a, split, Some(&f_index));
    let ext_fids = &ext.f_id;

    // Build M1 = (D_FF + D_γ)⁻¹ (Aˢ_FF + D_β) and M2 = D_β⁻¹ Aˢ_FC
    // row by row (all classification and scaling is row-local, hence a
    // parallel map; triples are emitted in row order afterwards).
    rank.kernel(KernelKind::Stream, a.local_nnz() as u64 * 24, a.local_nnz() as u64 * 2);
    type Triples = Vec<(u64, u64, f64)>;
    let m_rows: Vec<(Triples, Triples)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut m1: Triples = Vec::new();
            let mut m2: Triples = Vec::new();
            let Some(fi) = f_index[i] else {
                return (m1, m2);
            };
            let (s_dcols, _) = s.sdiag.row(i);
            let (s_ocols, _) = s.soffd.row(i);
            let is_strong_diag = |c: usize| s_dcols.binary_search(&c).is_ok();
            let is_strong_offd = |c: usize| s_ocols.binary_search(&c).is_ok();

            // Pass 1: D_β, D_γ, D_FF.
            let mut d_ff = 0.0;
            let mut d_beta = 0.0; // Σ strong FC
            let mut d_gamma = 0.0; // Σ weak FF + weak FC
            let (dc, dv) = a.diag.row(i);
            for (&c, &v) in dc.iter().zip(dv) {
                if c == i {
                    d_ff = v;
                } else if is_strong_diag(c) {
                    if split.states[c] == CfState::Coarse {
                        d_beta += v;
                    }
                    // strong FF handled in pass 2
                } else {
                    d_gamma += v;
                }
            }
            let (oc, ov) = a.offd.row(i);
            for (&c, &v) in oc.iter().zip(ov) {
                if is_strong_offd(c) {
                    if ext.is_coarse[c] {
                        d_beta += v;
                    }
                } else {
                    d_gamma += v;
                }
            }
            let m1_denom = d_ff + d_gamma;
            if d_beta == 0.0 || m1_denom == 0.0 {
                return (m1, m2); // no strong C reachable: zero row
            }
            // Pass 2: emit scaled rows.
            // M1 diagonal: D_β/(D_FF + D_γ).
            m1.push((fi, fi, d_beta / m1_denom));
            for (&c, &v) in dc.iter().zip(dv) {
                if c != i && is_strong_diag(c) {
                    if split.states[c] == CfState::Coarse {
                        m2.push((fi, split.coarse_index[c].unwrap(), v / d_beta));
                    } else {
                        m1.push((fi, f_index[c].unwrap(), v / m1_denom));
                    }
                }
            }
            for (&c, &v) in oc.iter().zip(ov) {
                if is_strong_offd(c) {
                    if ext.is_coarse[c] {
                        m2.push((fi, ext.coarse_id[c], v / d_beta));
                    } else {
                        let fj = ext_fids[c];
                        assert_ne!(
                            fj,
                            u64::MAX,
                            "ext col {} (gid {}) classified F but has no F id",
                            c,
                            a.global_offd_col(c)
                        );
                        m1.push((fi, fj, v / m1_denom));
                    }
                }
            }
            (m1, m2)
        })
        .collect();
    let mut m1 = Coo::new();
    let mut m2 = Coo::new();
    for (t1, t2) in &m_rows {
        for &(r, c, v) in t1 {
            m1.push(r, c, v);
        }
        for &(r, c, v) in t2 {
            m2.push(r, c, v);
        }
    }
    let m1 = ParCsr::from_global_coo(rank, f_dist.clone(), f_dist.clone(), &m1);
    let m2 = ParCsr::from_global_coo(rank, f_dist.clone(), split.coarse_dist.clone(), &m2);
    let mut w = distmat::ops::par_spgemm(rank, &m1, &m2);
    w.scale(-1.0);

    // Assemble P: C rows get identity, F rows get their W row (optionally
    // "+i"-rescaled to sum to one, preserving constants exactly).
    let f_locals: Vec<usize> = (0..n).filter(|&i| split.states[i] == CfState::Fine).collect();
    let mut coo = Coo::new();
    for i in 0..n {
        if let Some(ci) = split.coarse_index[i] {
            coo.push(start + i as u64, ci, 1.0);
        }
    }
    let f_rows: Vec<Vec<(u64, f64)>> = (0..f_locals.len())
        .into_par_iter()
        .map(|lf| {
            let mut cols: Vec<u64> = Vec::new();
            let mut vals: Vec<f64> = Vec::new();
            let (wc, wv) = w.diag.row(lf);
            for (&c, &v) in wc.iter().zip(wv) {
                cols.push(w.global_diag_col(c));
                vals.push(v);
            }
            let (wc, wv) = w.offd.row(lf);
            for (&c, &v) in wc.iter().zip(wv) {
                cols.push(w.global_offd_col(c));
                vals.push(v);
            }
            if plus_i {
                let sum: f64 = vals.iter().sum();
                if sum.abs() > 1e-12 {
                    let scale = 1.0 / sum;
                    for v in vals.iter_mut() {
                        *v *= scale;
                    }
                }
            }
            truncate_row(&mut cols, &mut vals, trunc_factor);
            cols.into_iter().zip(vals).collect()
        })
        .collect();
    for (lf, &i) in f_locals.iter().enumerate() {
        let gi = start + i as u64;
        for &(c, v) in &f_rows[lf] {
            coo.push(gi, c, v);
        }
    }
    ParCsr::from_global_coo(rank, dist, split.coarse_dist.clone(), &coo)
}

/// Dispatch on the configured interpolation family. Collective.
pub fn build_interpolation(
    rank: &Rank,
    a: &ParCsr,
    s: &crate::strength::Strength,
    split: &CfSplit,
    interp: InterpType,
    trunc_factor: f64,
) -> ParCsr {
    match interp {
        InterpType::Direct => direct_interpolation(rank, a, s, split, false, trunc_factor),
        InterpType::BamgDirect => direct_interpolation(rank, a, s, split, true, trunc_factor),
        InterpType::MmExt => mm_ext_interpolation(rank, a, s, split, false, trunc_factor),
        InterpType::MmExtI => mm_ext_interpolation(rank, a, s, split, true, trunc_factor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmis::pmis;
    use crate::strength::Strength;
    use parcomm::Comm;
    use sparse_kit::{Coo as SCoo, Csr};

    fn laplacian_2d(nx: usize) -> Csr {
        let id = |i: usize, j: usize| (i * nx + j) as u64;
        let mut coo = SCoo::new();
        for i in 0..nx {
            for j in 0..nx {
                let mut diag = 0.0;
                let push = |r: u64, c: u64, coo: &mut SCoo| {
                    coo.push(r, c, -1.0);
                };
                if i > 0 {
                    push(id(i, j), id(i - 1, j), &mut coo);
                    diag += 1.0;
                }
                if i + 1 < nx {
                    push(id(i, j), id(i + 1, j), &mut coo);
                    diag += 1.0;
                }
                if j > 0 {
                    push(id(i, j), id(i, j - 1), &mut coo);
                    diag += 1.0;
                }
                if j + 1 < nx {
                    push(id(i, j), id(i, j + 1), &mut coo);
                    diag += 1.0;
                }
                coo.push(id(i, j), id(i, j), diag);
            }
        }
        let n = nx * nx;
        Csr::from_coo(n, n, &coo)
    }

    fn build_p(serial: Csr, nranks: usize, interp: InterpType) -> (Csr, Vec<CfState>) {
        let n = serial.nrows() as u64;
        let out = Comm::run(nranks, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let split = pmis(rank, &a, &s, 11);
            let p = build_interpolation(rank, &a, &s, &split, interp, 0.0);
            (p.to_serial(rank), split.states)
        });
        let p = out[0].0.clone();
        let states: Vec<CfState> = out.iter().flat_map(|(_, s)| s.clone()).collect();
        (p, states)
    }

    #[test]
    fn c_rows_are_identity_for_all_interp_types() {
        for interp in [
            InterpType::Direct,
            InterpType::BamgDirect,
            InterpType::MmExt,
            InterpType::MmExtI,
        ] {
            let (p, states) = build_p(laplacian_2d(6), 2, interp);
            let mut coarse_seen = 0;
            for (i, st) in states.iter().enumerate() {
                if *st == CfState::Coarse {
                    let (cols, vals) = p.row(i);
                    assert_eq!(cols.len(), 1, "{interp:?} row {i}");
                    assert_eq!(vals[0], 1.0);
                    coarse_seen += 1;
                }
            }
            assert!(coarse_seen > 0);
            assert_eq!(p.ncols(), coarse_seen);
        }
    }

    #[test]
    fn bamg_rows_sum_to_one_on_zero_rowsum_interior() {
        // Neumann-like zero-row-sum matrix: every F row of P must sum to 1
        // (constants interpolated exactly).
        let (p, states) = build_p(laplacian_2d(8), 2, InterpType::BamgDirect);
        for (i, st) in states.iter().enumerate() {
            if *st == CfState::Fine {
                let sum: f64 = p.row(i).1.iter().sum();
                if !p.row(i).0.is_empty() {
                    assert!((sum - 1.0).abs() < 1e-10, "row {i} sums to {sum}");
                }
            }
        }
    }

    #[test]
    fn mm_ext_plus_i_rows_sum_to_one() {
        let (p, states) = build_p(laplacian_2d(8), 3, InterpType::MmExtI);
        for (i, st) in states.iter().enumerate() {
            if *st == CfState::Fine && !p.row(i).0.is_empty() {
                let sum: f64 = p.row(i).1.iter().sum();
                assert!((sum - 1.0).abs() < 1e-10, "row {i} sums to {sum}");
            }
        }
    }

    #[test]
    fn mm_ext_reaches_distance_two() {
        // MM-ext rows may include C-points at distance 2 (through strong
        // F-F links), so F rows generally have more interpolation points
        // than direct rows.
        let (p_dir, _) = build_p(laplacian_2d(8), 2, InterpType::Direct);
        let (p_ext, _) = build_p(laplacian_2d(8), 2, InterpType::MmExt);
        assert!(
            p_ext.nnz() >= p_dir.nnz(),
            "ext={} dir={}",
            p_ext.nnz(),
            p_dir.nnz()
        );
    }

    #[test]
    fn interpolation_identical_across_rank_counts() {
        for interp in [InterpType::BamgDirect, InterpType::MmExt] {
            let (p1, _) = build_p(laplacian_2d(6), 1, interp);
            let (p3, _) = build_p(laplacian_2d(6), 3, interp);
            let (d1, d3) = (p1.to_dense(), p3.to_dense());
            for (r1, r3) in d1.iter().zip(&d3) {
                for (a, b) in r1.iter().zip(r3) {
                    assert!((a - b).abs() < 1e-12, "{interp:?}");
                }
            }
        }
    }

    #[test]
    fn truncation_drops_small_weights_and_preserves_sums() {
        let mut cols = vec![0u64, 1, 2, 3];
        let mut vals = vec![0.5, 0.45, 0.04, 0.01];
        let before: f64 = vals.iter().sum();
        truncate_row(&mut cols, &mut vals, 0.2);
        assert_eq!(cols, vec![0, 1]);
        let after: f64 = vals.iter().sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn truncation_zero_factor_is_noop() {
        let mut cols = vec![0u64, 1];
        let mut vals = vec![1.0, 1e-9];
        truncate_row(&mut cols, &mut vals, 0.0);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn interpolation_recovers_constant_vector() {
        // P·1_c == 1 on F rows with interpolation (Galerkin consistency).
        let (p, _) = build_p(laplacian_2d(8), 2, InterpType::MmExtI);
        let ones = vec![1.0; p.ncols()];
        let px = p.spmv(&ones);
        for (i, v) in px.iter().enumerate() {
            if !p.row(i).0.is_empty() {
                assert!((v - 1.0).abs() < 1e-10, "row {i}: {v}");
            }
        }
    }
}
