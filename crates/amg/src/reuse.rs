//! Cross-solve reuse of AMG-setup SpGEMM structure.
//!
//! Every Picard iteration re-solves the pressure-Poisson system with an
//! operator whose **values** drift but whose **sparsity** is fixed by
//! the mesh, so each re-setup of the AMG hierarchy repeats the same
//! sequence of Galerkin products over unchanged structures. [`AmgReuse`]
//! keeps one [`ParSpgemmPlan`] per product in setup's (collectively
//! deterministic) call order; a matching structure replays the numeric
//! pass alone, a mismatch falls back to a fresh multiply and re-records
//! the plan at that position.
//!
//! Correctness relies on two invariants:
//!
//! - **Collective agreement**: `ParSpgemmPlan::matches` allreduces the
//!   per-rank verdict, so every rank takes the replay-or-fresh branch
//!   together (the sparse exchanges inside both paths would otherwise
//!   deadlock). The cursor itself advances identically on all ranks
//!   because hierarchy setup makes the same product calls everywhere.
//! - **Bitwise fidelity**: replay reproduces the fresh hash
//!   accumulation order exactly (see `distmat::ops`), so a run with
//!   reuse is bit-identical to one without — `tests/determinism.rs`
//!   holds this across thread counts and transports.

use distmat::ops::{par_spgemm_planned, ParSpgemmPlan};
use distmat::ParCsr;
use parcomm::Rank;

/// A cursor-driven store of SpGEMM plans for one recurring AMG setup
/// (one equation/mesh pair). See the module docs.
#[derive(Clone, Debug, Default)]
pub struct AmgReuse {
    plans: Vec<ParSpgemmPlan>,
    cursor: usize,
}

impl AmgReuse {
    /// Fresh, empty store: the first setup through it plans everything.
    pub fn new() -> AmgReuse {
        AmgReuse::default()
    }

    /// Rewind to the first plan; call at the start of each setup.
    pub fn begin(&mut self) {
        self.cursor = 0;
    }

    /// C = A·B, replaying the recorded plan at the cursor when the
    /// structures still match (collective decision), else multiplying
    /// fresh and re-recording. Collective.
    pub fn spgemm(&mut self, rank: &Rank, a: &ParCsr, b: &ParCsr) -> ParCsr {
        if let Some(plan) = self.plans.get(self.cursor) {
            if plan.matches(rank, a, b) {
                let c = plan.execute(rank, a, b);
                self.cursor += 1;
                return c;
            }
        }
        let (plan, c) = par_spgemm_planned(rank, a, b);
        if self.cursor < self.plans.len() {
            self.plans[self.cursor] = plan;
        } else {
            self.plans.push(plan);
        }
        self.cursor += 1;
        c
    }

    /// Drop plans past the cursor (a shallower hierarchy than last
    /// time); call at the end of a successful setup.
    pub fn finish(&mut self) {
        self.plans.truncate(self.cursor);
    }

    /// Recorded plans (observability/tests).
    pub fn n_plans(&self) -> usize {
        self.plans.len()
    }

    /// Plans consumed (hit or re-recorded) since [`Self::begin`].
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}
