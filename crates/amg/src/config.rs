//! AMG configuration.

/// Interpolation operator family (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpType {
    /// Direct interpolation: weights from the i-th equation alone.
    Direct,
    /// Bootstrap-AMG variant of direct interpolation, closed-form weights
    /// of Eq. (2) for a constant near-nullspace.
    BamgDirect,
    /// Matrix-matrix extended interpolation ("MM-ext").
    MmExt,
    /// MM-ext with the "+i" constant-preserving row rescaling
    /// ("MM-ext+i").
    MmExtI,
}

/// Smoother applied at each level of the V-cycle (the GPU smoother menu
/// of the paper's ref. [41]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmootherType {
    /// Two-stage Gauss-Seidel with Jacobi-Richardson inner iterations
    /// (§4.2, the paper's choice).
    TwoStageGs,
    /// ℓ1-scaled Jacobi: unconditionally convergent, fully parallel.
    L1Jacobi,
    /// Chebyshev polynomial smoothing on D⁻¹A.
    Chebyshev,
}

/// BoomerAMG-style solver options. The defaults mirror the paper's
/// pressure-Poisson configuration: aggressive PMIS coarsening at the
/// first two levels with matrix-based second-stage interpolation, and a
/// two-stage Gauss-Seidel smoother.
#[derive(Clone, Copy, Debug)]
pub struct AmgConfig {
    /// Strength-of-connection threshold θ.
    pub strength_threshold: f64,
    /// Maximum number of levels in the hierarchy.
    pub max_levels: usize,
    /// Stop coarsening when the global size drops below this.
    pub max_coarse_size: usize,
    /// Interpolation family.
    pub interp: InterpType,
    /// Apply A-1 aggressive coarsening (second PMIS on S²+S with
    /// two-stage interpolation) on this many of the finest levels.
    pub agg_levels: usize,
    /// Interpolation truncation: drop weights whose magnitude is below
    /// this fraction of the row's largest weight (0 disables).
    pub trunc_factor: f64,
    /// Pre-/post-smoothing sweeps per V-cycle level.
    pub smooth_sweeps: usize,
    /// Inner Jacobi-Richardson iterations of the two-stage GS smoother
    /// (or the Chebyshev degree when that smoother is selected).
    pub smooth_inner: usize,
    /// Which level smoother to use.
    pub smoother: SmootherType,
    /// Seed for the PMIS random weights (deterministic per global id).
    pub seed: u64,
}

impl Default for AmgConfig {
    fn default() -> Self {
        AmgConfig {
            strength_threshold: 0.25,
            max_levels: 20,
            max_coarse_size: 40,
            interp: InterpType::MmExt,
            agg_levels: 2,
            trunc_factor: 0.0,
            smooth_sweeps: 1,
            smooth_inner: 1,
            smoother: SmootherType::TwoStageGs,
            seed: 0x5EED,
        }
    }
}

impl AmgConfig {
    /// The paper's pressure-Poisson setup: aggressive first two levels,
    /// MM-ext second-stage interpolation, two-stage GS smoothing with a
    /// second inner sweep.
    pub fn pressure_default() -> Self {
        AmgConfig {
            agg_levels: 2,
            interp: InterpType::MmExt,
            smooth_inner: 2,
            // hypre pairs aggressive coarsening with interpolation
            // truncation to bound P's density and the RAP cost. MM-ext
            // with a mild 0.1 truncation is the robust winner across the
            // anisotropic instances swept by the `tune_amg` harness
            // (20-30 GMRES iterations at operator complexity ~1.3,
            // vs ~2.0 complexity for standard BAMG-direct coarsening;
            // the naive +i rescale over-corrects near Dirichlet
            // boundaries on small grids).
            trunc_factor: 0.1,
            ..Default::default()
        }
    }

    /// A conservative configuration for very small or tough problems:
    /// standard (non-aggressive) coarsening with BAMG-direct weights.
    pub fn standard() -> Self {
        AmgConfig {
            agg_levels: 0,
            interp: InterpType::BamgDirect,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = AmgConfig::pressure_default();
        assert_eq!(c.agg_levels, 2);
        assert_eq!(c.interp, InterpType::MmExt);
        assert_eq!(c.smooth_inner, 2);
        assert!(c.strength_threshold > 0.0 && c.strength_threshold < 1.0);
    }

    #[test]
    fn standard_disables_aggressive() {
        assert_eq!(AmgConfig::standard().agg_levels, 0);
    }
}
