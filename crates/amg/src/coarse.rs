//! Coarsest-level direct solve.
//!
//! The coarsest AMG operator is tiny (≤ `max_coarse_size` rows), so every
//! rank gathers it once during setup, factors it with dense partial-pivot
//! LU, and solves redundantly at each V-cycle visit (one allgather of the
//! coarse RHS; no back-communication needed since every rank keeps its
//! own rows of the solution).

use distmat::{ParCsr, ParVector, RowDist};
use parcomm::{KernelKind, Rank};

/// Dense LU factorization with partial pivoting.
#[derive(Clone, Debug)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>, // row-major, L (unit diag, below) and U (on/above)
    piv: Vec<usize>,
}

impl DenseLu {
    /// Factor a dense row-major matrix.
    ///
    /// Near-zero pivots are regularized (the pressure-Poisson coarse
    /// operator can be near-singular for pure Neumann problems).
    pub fn factor(dense: &[Vec<f64>]) -> Self {
        let n = dense.len();
        let mut lu: Vec<f64> = dense.iter().flat_map(|r| r.iter().copied()).collect();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let mut pivot = lu[k * n + k];
            if pivot.abs() < 1e-300 {
                pivot = 1e-300_f64.copysign(if pivot == 0.0 { 1.0 } else { pivot });
                lu[k * n + k] = pivot;
            }
            for i in k + 1..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                for j in k + 1..n {
                    lu[i * n + j] -= m * lu[k * n + j];
                }
            }
        }
        DenseLu { n, lu, piv }
    }

    /// Solve A x = b.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Apply the row permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L, unit diagonal).
        for i in 0..n {
            for j in 0..i {
                let m = self.lu[i * n + j];
                x[i] -= m * x[j];
            }
        }
        // Backward substitution (U).
        for i in (0..n).rev() {
            for j in i + 1..n {
                x[i] -= self.lu[i * n + j] * x[j];
            }
            x[i] /= self.lu[i * n + i];
        }
        x
    }
}

/// Replicated coarse-grid solver for a distributed operator.
#[derive(Clone, Debug)]
pub struct CoarseSolver {
    lu: Option<DenseLu>,
    dist: RowDist,
}

impl CoarseSolver {
    /// Gather `a` on all ranks and factor it. Collective.
    pub fn new(rank: &Rank, a: &ParCsr) -> Self {
        let dist = a.row_dist().clone();
        if dist.global_n() == 0 {
            return CoarseSolver { lu: None, dist };
        }
        let serial = a.to_serial(rank);
        let dense = serial.to_dense();
        let n = dense.len();
        rank.kernel(KernelKind::Other, (n * n * 8) as u64, (2 * n * n * n / 3) as u64);
        CoarseSolver {
            lu: Some(DenseLu::factor(&dense)),
            dist,
        }
    }

    /// Solve A x = b redundantly; returns the local rows of x. Collective.
    pub fn solve(&self, rank: &Rank, b: &ParVector) -> ParVector {
        let Some(lu) = &self.lu else {
            return ParVector::zeros(rank, self.dist.clone());
        };
        let full_b = b.to_serial(rank);
        let n = full_b.len();
        rank.kernel(KernelKind::Other, (n * n * 8) as u64, (2 * n * n) as u64);
        let full_x = lu.solve(&full_b);
        let me = rank.rank();
        let local =
            full_x[self.dist.start(me) as usize..self.dist.end(me) as usize].to_vec();
        ParVector::from_local(rank, self.dist.clone(), local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;
    use sparse_kit::{Coo, Csr};

    #[test]
    fn lu_solves_small_system() {
        let a = vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        let lu = DenseLu::factor(&a);
        let x = lu.solve(&[3.0, 5.0, 3.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_handles_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let lu = DenseLu::factor(&a);
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lu_random_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for n in [1usize, 4, 9] {
            let a: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            let v: f64 = rng.gen_range(-1.0..1.0);
                            if i == j {
                                v + n as f64 // diagonally dominant
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
                .collect();
            let x = DenseLu::factor(&a).solve(&b);
            for (p, q) in x.iter().zip(&x_true) {
                assert!((p - q).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn coarse_solver_distributed() {
        let n = 7u64;
        Comm::run(3, move |rank| {
            let mut coo = Coo::new();
            for i in 0..n {
                coo.push(i, i, 3.0);
                if i > 0 {
                    coo.push(i, i - 1, -1.0);
                }
                if i + 1 < n {
                    coo.push(i, i + 1, -1.0);
                }
            }
            let serial = Csr::from_coo(n as usize, n as usize, &coo);
            let dist = RowDist::block(n, 3);
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &serial);
            let solver = CoarseSolver::new(rank, &a);
            let x_true = ParVector::from_fn(rank, dist.clone(), |g| g as f64);
            let b = a.spmv(rank, &x_true);
            let x = solver.solve(rank, &b);
            let mut e = x;
            e.axpy(rank, -1.0, &x_true);
            assert!(e.norm2(rank) < 1e-11);
        });
    }

    #[test]
    fn empty_coarse_grid_is_noop() {
        Comm::run(2, |rank| {
            let dist = RowDist::block(0, 2);
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &Csr::zeros(0, 0));
            let solver = CoarseSolver::new(rank, &a);
            let b = ParVector::zeros(rank, dist);
            let x = solver.solve(rank, &b);
            assert!(x.local.is_empty());
        });
    }
}
