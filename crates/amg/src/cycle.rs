//! V-cycle solve phase and the GMRES preconditioner wrapper.

use distmat::{ParCsr, ParVector};
use krylov::Preconditioner;
use parcomm::Rank;
use resilience::SolveError;

use crate::config::AmgConfig;
use crate::hierarchy::AmgHierarchy;

impl AmgHierarchy {
    /// One V(ν,ν)-cycle: pre-smooth, restrict, recurse, prolong, correct,
    /// post-smooth; dense solve at the coarsest level. Updates `x` in
    /// place. Collective.
    pub fn vcycle(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, sweeps: usize) {
        self.vcycle_level(rank, 0, b, x, sweeps);
    }

    fn vcycle_level(
        &self,
        rank: &Rank,
        lvl: usize,
        b: &ParVector,
        x: &mut ParVector,
        sweeps: usize,
    ) {
        let level = &self.levels[lvl];
        let Some(p) = &level.p else {
            // Coarsest level: replicated dense solve.
            *x = self.coarse.solve(rank, b);
            return;
        };
        let r_op = level.r.as_ref().expect("level with P must have R");

        // Pre-smooth.
        level.smoother.smooth(rank, b, x, sweeps);
        // Restrict the residual.
        let res = level.a.residual(rank, b, x);
        let rc = r_op.spmv(rank, &res);
        // Recurse from a zero coarse guess.
        let mut ec = ParVector::zeros(rank, rc.dist().clone());
        self.vcycle_level(rank, lvl + 1, &rc, &mut ec, sweeps);
        // Prolong and correct.
        let e = p.spmv(rank, &ec);
        x.axpy(rank, 1.0, &e);
        // Post-smooth.
        level.smoother.smooth(rank, b, x, sweeps);
    }

    /// Relative residual after applying `cycles` V-cycles to `A x = b`
    /// starting from `x` (diagnostic helper).
    pub fn solve_cycles(
        &self,
        rank: &Rank,
        b: &ParVector,
        x: &mut ParVector,
        cycles: usize,
        sweeps: usize,
    ) -> f64 {
        for _ in 0..cycles {
            self.vcycle(rank, b, x, sweeps);
        }
        let r = self.levels[0].a.residual(rank, b, x);
        let bn = b.norm2(rank);
        if bn == 0.0 {
            r.norm2(rank)
        } else {
            r.norm2(rank) / bn
        }
    }
}

/// AMG as a [`Preconditioner`]: one (or more) V-cycles from a zero
/// initial guess — the paper's pressure-Poisson preconditioner.
pub struct AmgPrecond {
    hierarchy: AmgHierarchy,
    /// V-cycles per application.
    pub cycles: usize,
    /// Smoothing sweeps per level per cycle.
    pub sweeps: usize,
}

impl AmgPrecond {
    /// Set up AMG for `a` with `config`. Collective.
    ///
    /// # Errors
    ///
    /// Propagates [`AmgHierarchy::setup`] failures (non-finite
    /// coefficients, coarsening stagnation).
    pub fn setup(rank: &Rank, a: ParCsr, config: &AmgConfig) -> Result<Self, SolveError> {
        Self::setup_with_reuse(rank, a, config, &mut crate::AmgReuse::new())
    }

    /// [`AmgPrecond::setup`] threading a cross-solve [`crate::AmgReuse`]
    /// store through hierarchy construction, so repeated setups over the
    /// same sparsity (Picard re-solves) replay their Galerkin SpGEMMs
    /// numerically. Collective.
    ///
    /// # Errors
    ///
    /// Propagates [`AmgHierarchy::setup`] failures (non-finite
    /// coefficients, coarsening stagnation).
    pub fn setup_with_reuse(
        rank: &Rank,
        a: ParCsr,
        config: &AmgConfig,
        reuse: &mut crate::AmgReuse,
    ) -> Result<Self, SolveError> {
        let hierarchy = AmgHierarchy::setup_with_reuse(rank, a, config, reuse)?;
        Ok(AmgPrecond {
            hierarchy,
            cycles: 1,
            sweeps: config.smooth_sweeps,
        })
    }

    /// Wrap an existing hierarchy.
    pub fn from_hierarchy(hierarchy: AmgHierarchy, cycles: usize, sweeps: usize) -> Self {
        AmgPrecond {
            hierarchy,
            cycles,
            sweeps,
        }
    }

    /// Access the hierarchy (complexities, level sizes).
    pub fn hierarchy(&self) -> &AmgHierarchy {
        &self.hierarchy
    }
}

impl Preconditioner for AmgPrecond {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        for _ in 0..self.cycles {
            self.hierarchy.vcycle(rank, r, &mut z, self.sweeps);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterpType;
    use crate::hierarchy::setup_from_serial;
    use distmat::RowDist;
    use krylov::{Gmres, IdentityPrecond, OrthoStrategy};
    use parcomm::Comm;
    use sparse_kit::{Coo, Csr};

    fn laplacian_2d(nx: usize) -> Csr {
        let id = |i: usize, j: usize| (i * nx + j) as u64;
        let mut coo = Coo::new();
        for i in 0..nx {
            for j in 0..nx {
                coo.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    coo.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    coo.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    coo.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    coo.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        let n = nx * nx;
        Csr::from_coo(n, n, &coo)
    }

    /// Stretched-grid anisotropic Laplacian: the poorly conditioned
    /// matrix class the paper's pressure solves produce.
    fn anisotropic_2d(nx: usize, eps: f64) -> Csr {
        let id = |i: usize, j: usize| (i * nx + j) as u64;
        let mut coo = Coo::new();
        for i in 0..nx {
            for j in 0..nx {
                coo.push(id(i, j), id(i, j), 2.0 + 2.0 * eps);
                if i > 0 {
                    coo.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    coo.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    coo.push(id(i, j), id(i, j - 1), -eps);
                }
                if j + 1 < nx {
                    coo.push(id(i, j), id(i, j + 1), -eps);
                }
            }
        }
        let n = nx * nx;
        Csr::from_coo(n, n, &coo)
    }

    #[test]
    fn vcycle_contracts_error_fast() {
        let serial = laplacian_2d(16);
        for p in [1, 2] {
            let s2 = serial.clone();
            let out = Comm::run(p, move |rank| {
                let h = setup_from_serial(rank, &s2, &AmgConfig::standard());
                let dist = h.levels[0].a.row_dist().clone();
                let b = ParVector::from_fn(rank, dist.clone(), |g| ((g % 7) as f64) - 3.0);
                let mut x = ParVector::zeros(rank, dist);
                let rel4 = h.solve_cycles(rank, &b, &mut x, 4, 1);
                let rel12 = h.solve_cycles(rank, &b, &mut x, 8, 1);
                (rel4, rel12)
            });
            for (rel4, rel12) in out {
                // Mesh-independent contraction: a healthy V-cycle factor
                // for PMIS + direct interpolation is ≈0.2–0.3.
                assert!(rel4 < 0.01, "p={p}: 4 cycles reached only {rel4}");
                assert!(rel12 < 1e-5, "p={p}: 12 cycles stalled at {rel12}");
            }
        }
    }

    #[test]
    fn amg_preconditioned_gmres_beats_unpreconditioned() {
        let serial = anisotropic_2d(16, 0.05);
        let n = serial.nrows() as u64;
        let out = Comm::run(2, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &serial);
            let b = ParVector::from_fn(rank, dist.clone(), |g| (g as f64 * 0.1).sin());
            let gmres = Gmres {
                restart: 60,
                max_iters: 200,
                tol: 1e-8,
                ortho: OrthoStrategy::OneReduce,
            };
            let mut x0 = ParVector::zeros(rank, dist.clone());
            let plain = gmres.solve(rank, &a, &b, &mut x0, &IdentityPrecond).unwrap();

            let amg = AmgPrecond::setup(rank, a.clone(), &AmgConfig::pressure_default()).unwrap();
            let mut x1 = ParVector::zeros(rank, dist);
            let pre = gmres.solve(rank, &a, &b, &mut x1, &amg).unwrap();
            (plain.iters, pre.iters, pre.converged)
        });
        let (plain, pre, converged) = out[0];
        assert!(converged);
        assert!(
            pre * 3 <= plain,
            "AMG should cut iterations ≥3×: {pre} vs {plain}"
        );
        assert!(pre <= 25, "AMG-GMRES took {pre} iterations");
    }

    #[test]
    fn all_interp_types_yield_converging_cycles() {
        let serial = laplacian_2d(12);
        for interp in [
            InterpType::Direct,
            InterpType::BamgDirect,
            InterpType::MmExt,
            InterpType::MmExtI,
        ] {
            let s2 = serial.clone();
            let out = Comm::run(2, move |rank| {
                let cfg = AmgConfig {
                    interp,
                    agg_levels: 0,
                    ..AmgConfig::standard()
                };
                let h = setup_from_serial(rank, &s2, &cfg);
                let dist = h.levels[0].a.row_dist().clone();
                let b = ParVector::from_fn(rank, dist.clone(), |g| (g as f64).cos());
                let mut x = ParVector::zeros(rank, dist);
                h.solve_cycles(rank, &b, &mut x, 10, 1)
            });
            for rel in out {
                assert!(rel < 1e-4, "{interp:?} stalled at {rel}");
            }
        }
    }

    #[test]
    fn aggressive_hierarchy_converges_under_gmres() {
        // Aggressive coarsening trades per-cycle convergence for setup
        // cost and memory — exactly why the paper pairs it with GMRES.
        let serial = laplacian_2d(16);
        let n = serial.nrows() as u64;
        let out = Comm::run(2, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &serial);
            let amg = AmgPrecond::setup(rank, a.clone(), &AmgConfig::pressure_default()).unwrap();
            let b = ParVector::from_fn(rank, dist.clone(), |g| 1.0 + (g % 3) as f64);
            let mut x = ParVector::zeros(rank, dist);
            let gmres = Gmres {
                restart: 50,
                max_iters: 100,
                tol: 1e-8,
                ortho: OrthoStrategy::OneReduce,
            };
            let stats = gmres.solve(rank, &a, &b, &mut x, &amg).unwrap();
            (stats.converged, stats.iters)
        });
        let (converged, iters) = out[0];
        assert!(converged);
        assert!(iters <= 55, "aggressive AMG-GMRES took {iters} iterations");
    }

    #[test]
    fn converged_solution_independent_of_rank_count() {
        // The hybrid smoother makes individual V-cycles rank-dependent
        // (process-local relaxation), but the *converged* solution of
        // AMG-preconditioned GMRES must agree across rank counts.
        let serial = laplacian_2d(10);
        let n = serial.nrows() as u64;
        let mut sols: Vec<Vec<f64>> = Vec::new();
        for p in [1, 2, 4] {
            let s2 = serial.clone();
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(n, rank.size());
                let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &s2);
                let amg = AmgPrecond::setup(rank, a.clone(), &AmgConfig::standard()).unwrap();
                let b = ParVector::from_fn(rank, dist.clone(), |g| (g as f64).sin());
                let mut x = ParVector::zeros(rank, dist);
                Gmres {
                    restart: 40,
                    max_iters: 100,
                    tol: 1e-12,
                    ortho: OrthoStrategy::OneReduce,
                }
                .solve(rank, &a, &b, &mut x, &amg)
                .unwrap();
                x.to_serial(rank)
            });
            sols.push(out[0].clone());
        }
        for s in &sols[1..] {
            for (a, b) in s.iter().zip(&sols[0]) {
                assert!((a - b).abs() < 1e-8, "rank-count dependent solution");
            }
        }
    }

    #[test]
    fn precond_apply_is_deterministic() {
        let serial = laplacian_2d(8);
        Comm::run(2, move |rank| {
            let dist = RowDist::block(64, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &serial);
            let amg = AmgPrecond::setup(rank, a, &AmgConfig::standard()).unwrap();
            let r = ParVector::from_fn(rank, dist, |g| g as f64);
            let z1 = amg.apply(rank, &r);
            let z2 = amg.apply(rank, &r);
            assert_eq!(z1.local, z2.local);
        });
    }
}
