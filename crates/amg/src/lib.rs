//! BoomerAMG-style distributed algebraic multigrid (§4.1 of the paper).
//!
//! The setup phase builds a multilevel hierarchy with:
//!
//! - classical **strength of connection** with threshold θ ([`strength`]),
//! - **PMIS coarsening** (Luby-style random maximal independent set,
//!   massively parallel; seeded deterministic randomness) ([`pmis`]),
//! - **interpolation** operators: direct/BAMG-direct with the closed-form
//!   weights of Eq. (2), and the matrix-matrix-based extended operators
//!   "MM-ext" and "MM-ext+i" built entirely from sparse M-M products and
//!   diagonal scalings with FF/FC submatrices ([`interp`]),
//! - **A-1 aggressive coarsening** on the first levels: a second PMIS on
//!   the `S² + S` pattern of the first-pass C-points, combined with
//!   two-stage interpolation `P = P1·P2` ([`hierarchy`]),
//! - Galerkin **triple products** via distributed hash SpGEMM
//!   ([`distmat::ops::par_rap`]).
//!
//! The solve phase ([`cycle`]) runs V-cycles with the two-stage
//! Gauss-Seidel smoother of §4.2, with a replicated dense LU at the
//! coarsest level, and implements [`krylov::Preconditioner`] so it can
//! precondition the one-reduce GMRES on the pressure-Poisson system.

pub mod coarse;
pub mod config;
pub mod cycle;
pub mod hierarchy;
pub mod interp;
pub mod pmis;
pub mod reuse;
pub mod strength;

pub use config::{AmgConfig, InterpType, SmootherType};
pub use cycle::AmgPrecond;
pub use hierarchy::{AmgHierarchy, AmgLevel, LevelSmoother};
pub use reuse::AmgReuse;
pub use pmis::CfState;
