//! Classical strength of connection.
//!
//! "A strength-of-connection matrix S is typically first computed to
//! indicate directions of algebraic smoothness... The construction of S
//! can be performed efficiently on GPUs, because each row of S can be
//! computed independently by selecting entries in the corresponding row
//! of A with a prescribed threshold value θ." — §4.1. No communication is
//! needed: the S pattern is a row-local subset of A's pattern.

use distmat::ParCsr;
use parcomm::{KernelKind, Rank};
use rayon::prelude::*;
use sparse_kit::Csr;

/// Strength pattern of a distributed operator, aligned with its diag and
/// offd blocks (so the operator's halo/communication structures can be
/// reused). Values are 1.0 — the pattern doubles as a boolean matrix for
/// the `S² + S` product of aggressive coarsening.
#[derive(Clone, Debug)]
pub struct Strength {
    /// Strong connections into locally owned columns.
    pub sdiag: Csr,
    /// Strong connections into external columns (offd numbering).
    pub soffd: Csr,
}

impl Strength {
    /// Compute the classical strength pattern of `a` with threshold
    /// `theta`: j is strong for i when `-sign(a_ii)·a_ij ≥ θ·max_k
    /// (-sign(a_ii)·a_ik)` over off-diagonal k. Row-local; records one
    /// kernel launch.
    pub fn classical(rank: &Rank, a: &ParCsr, theta: f64) -> Strength {
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let n = a.diag.nrows();
        let nnz = a.local_nnz() as u64;
        rank.kernel(KernelKind::Stream, nnz * 16, nnz);

        // Each row of S depends only on the corresponding row of A, so
        // the selection runs as a parallel map; the row results are then
        // concatenated in row order, keeping the pattern identical for
        // any thread count.
        let rows: Vec<(Vec<usize>, Vec<usize>)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let (dc, dv) = a.diag.row(i);
                let (oc, ov) = a.offd.row(i);
                let aii = a.diag.get(i, i);
                let sign = if aii >= 0.0 { 1.0 } else { -1.0 };
                // Max off-diagonal strength measure.
                let mut max_meas = 0.0f64;
                for (&c, &v) in dc.iter().zip(dv) {
                    if c != i {
                        max_meas = max_meas.max(-sign * v);
                    }
                }
                for &v in ov {
                    max_meas = max_meas.max(-sign * v);
                }
                let cut = theta * max_meas;
                let mut d_row = Vec::new();
                let mut o_row = Vec::new();
                if max_meas > 0.0 {
                    for (&c, &v) in dc.iter().zip(dv) {
                        if c != i && -sign * v >= cut && -sign * v > 0.0 {
                            d_row.push(c);
                        }
                    }
                    for (&c, &v) in oc.iter().zip(ov) {
                        if -sign * v >= cut && -sign * v > 0.0 {
                            o_row.push(c);
                        }
                    }
                }
                (d_row, o_row)
            })
            .collect();
        let mut d_indptr = Vec::with_capacity(n + 1);
        let mut d_indices = Vec::new();
        let mut o_indptr = Vec::with_capacity(n + 1);
        let mut o_indices = Vec::new();
        d_indptr.push(0);
        o_indptr.push(0);
        for (d_row, o_row) in &rows {
            d_indices.extend_from_slice(d_row);
            o_indices.extend_from_slice(o_row);
            d_indptr.push(d_indices.len());
            o_indptr.push(o_indices.len());
        }
        let nd = d_indices.len();
        let no = o_indices.len();
        Strength {
            sdiag: Csr::from_parts(n, a.diag.ncols(), d_indptr, d_indices, vec![1.0; nd]),
            soffd: Csr::from_parts(n, a.offd.ncols(), o_indptr, o_indices, vec![1.0; no]),
        }
    }

    /// Number of strong connections of local row `i`.
    pub fn row_count(&self, i: usize) -> usize {
        self.sdiag.row(i).0.len() + self.soffd.row(i).0.len()
    }

    /// Total strong connections on this rank.
    pub fn nnz(&self) -> usize {
        self.sdiag.nnz() + self.soffd.nnz()
    }

    /// Materialize as a distributed boolean matrix with `a`'s
    /// distributions (for the `S² + S` pattern product). Collective.
    pub fn to_parcsr(&self, rank: &Rank, a: &ParCsr) -> ParCsr {
        let mut coo = sparse_kit::Coo::new();
        let start = a.row_dist().start(a.rank_id());
        for i in 0..self.sdiag.nrows() {
            let gi = start + i as u64;
            for &c in self.sdiag.row(i).0 {
                coo.push(gi, a.global_diag_col(c), 1.0);
            }
            for &c in self.soffd.row(i).0 {
                coo.push(gi, a.global_offd_col(c), 1.0);
            }
        }
        ParCsr::from_global_coo(rank, a.row_dist().clone(), a.col_dist().clone(), &coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmat::RowDist;
    use parcomm::Comm;
    use sparse_kit::Coo;

    fn to_parcsr_1rank(rank: &Rank, d: &[Vec<f64>]) -> ParCsr {
        let a = Csr::from_dense(d);
        let dist = RowDist::block(d.len() as u64, rank.size());
        ParCsr::from_serial(rank, dist.clone(), dist, &a)
    }

    #[test]
    fn uniform_laplacian_all_offdiag_strong() {
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(
                rank,
                &[
                    vec![2.0, -1.0, 0.0],
                    vec![-1.0, 2.0, -1.0],
                    vec![0.0, -1.0, 2.0],
                ],
            );
            let s = Strength::classical(rank, &a, 0.25);
            assert_eq!(s.row_count(0), 1);
            assert_eq!(s.row_count(1), 2);
            assert_eq!(s.nnz(), 4);
        });
    }

    #[test]
    fn anisotropy_filters_weak_direction() {
        // Row couples strongly (-10) in one direction, weakly (-0.1) in
        // the other: θ=0.25 keeps only the strong one.
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(
                rank,
                &[
                    vec![10.2, -10.0, -0.1],
                    vec![-10.0, 10.2, -0.1],
                    vec![-0.1, -0.1, 0.3],
                ],
            );
            let s = Strength::classical(rank, &a, 0.25);
            assert_eq!(s.sdiag.row(0).0, &[1]);
            assert_eq!(s.sdiag.row(1).0, &[0]);
            // Row 2: both connections equal → both strong.
            assert_eq!(s.row_count(2), 2);
        });
    }

    #[test]
    fn positive_offdiagonals_are_weak() {
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(
                rank,
                &[vec![2.0, 1.0, -1.0], vec![1.0, 2.0, -1.0], vec![-1.0, -1.0, 2.0]],
            );
            let s = Strength::classical(rank, &a, 0.25);
            // +1.0 entries must not be strong.
            assert_eq!(s.sdiag.row(0).0, &[2]);
            assert_eq!(s.sdiag.row(1).0, &[2]);
        });
    }

    #[test]
    fn negative_diagonal_flips_sign_convention() {
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(rank, &[vec![-2.0, 1.0], vec![1.0, -2.0]]);
            let s = Strength::classical(rank, &a, 0.25);
            // With a_ii < 0, positive off-diagonals are the strong ones.
            assert_eq!(s.nnz(), 2);
        });
    }

    #[test]
    fn diagonal_matrix_has_no_strong_connections() {
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(rank, &[vec![2.0, 0.0], vec![0.0, 3.0]]);
            let s = Strength::classical(rank, &a, 0.25);
            assert_eq!(s.nnz(), 0);
        });
    }

    #[test]
    fn distributed_strength_matches_serial() {
        // 1-D Laplacian across 3 ranks: every interior row has 2 strong
        // neighbours, and offd entries are detected as strong too.
        let n = 9u64;
        let totals = Comm::run(3, move |rank| {
            let mut coo = Coo::new();
            for i in 0..n {
                coo.push(i, i, 2.0);
                if i > 0 {
                    coo.push(i, i - 1, -1.0);
                }
                if i + 1 < n {
                    coo.push(i, i + 1, -1.0);
                }
            }
            let serial = Csr::from_coo(n as usize, n as usize, &coo);
            let dist = RowDist::block(n, 3);
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            s.nnz() as u64
        });
        assert_eq!(totals.iter().sum::<u64>(), 16); // 2n - 2 strong links
    }

    #[test]
    fn to_parcsr_preserves_pattern() {
        Comm::run(2, |rank| {
            let n = 6u64;
            let mut coo = Coo::new();
            for i in 0..n {
                coo.push(i, i, 2.0);
                if i > 0 {
                    coo.push(i, i - 1, -1.0);
                }
                if i + 1 < n {
                    coo.push(i, i + 1, -1.0);
                }
            }
            let serial = Csr::from_coo(n as usize, n as usize, &coo);
            let dist = RowDist::block(n, 2);
            let a = ParCsr::from_serial(rank, dist.clone(), dist, &serial);
            let s = Strength::classical(rank, &a, 0.25);
            let sp = s.to_parcsr(rank, &a);
            let gathered = sp.to_serial(rank);
            // Same as A without its diagonal, with 1.0 values.
            for i in 0..n as usize {
                for j in 0..n as usize {
                    let expected = if i != j && serial.get(i, j) != 0.0 { 1.0 } else { 0.0 };
                    assert_eq!(gathered.get(i, j), expected, "({i},{j})");
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        Comm::run(1, |rank| {
            let a = to_parcsr_1rank(rank, &[vec![1.0]]);
            Strength::classical(rank, &a, 1.5);
        });
    }
}
