//! Property-based AMG tests: invariants must hold for arbitrary
//! M-matrix-like operators and rank counts, not just the hand-built
//! Laplacians of the unit tests.

use amg::{AmgConfig, AmgHierarchy, CfState, InterpType};
use distmat::{ParCsr, ParVector, RowDist};
use parcomm::Comm;
use proptest::prelude::*;
use sparse_kit::{Coo, Csr};

/// Random connected M-matrix: a 1-D Laplacian backbone plus random extra
/// negative couplings, diagonally dominant.
fn random_m_matrix(n: usize, extra: Vec<(usize, usize)>, jitter: Vec<f64>) -> Csr {
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n - 1 {
        pairs.push((i, i + 1, 1.0 + jitter[i % jitter.len()].abs()));
    }
    for &(a, b) in &extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            pairs.push((a.min(b), a.max(b), 0.5));
        }
    }
    let mut coo = Coo::new();
    let mut diag = vec![0.1; n]; // slight dominance → SPD
    for &(a, b, w) in &pairs {
        coo.push(a as u64, b as u64, -w);
        coo.push(b as u64, a as u64, -w);
        diag[a] += w;
        diag[b] += w;
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i as u64, i as u64, d);
    }
    Csr::from_coo(n, n, &coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pmis_split_is_valid_on_random_m_matrices(
        (n, extra, jitter, p) in (20usize..60).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec((0usize..60, 0usize..60), 0..20),
            proptest::collection::vec(0.0f64..2.0, 4),
            1usize..4,
        ))
    ) {
        let a = random_m_matrix(n, extra, jitter);
        let a2 = a.clone();
        let out = Comm::run(p, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let pa = ParCsr::from_serial(rank, dist.clone(), dist, &a2);
            let s = amg::strength::Strength::classical(rank, &pa, 0.25);
            let split = amg::pmis::pmis(rank, &pa, &s, 42);
            (split.states, split.coarse_index)
        });
        // Stitch the global CF vector together.
        let states: Vec<CfState> = out.iter().flat_map(|(s, _)| s.clone()).collect();
        // C/F covers everything; coarse ids are consistent with states.
        for (s, c) in out.iter().flat_map(|(s, c)| s.iter().zip(c)) {
            prop_assert_eq!(*s == CfState::Coarse, c.is_some());
        }
        // No two strongly connected C points (strength ⊆ adjacency, so
        // checking adjacency is sufficient for the 1-D backbone).
        for i in 0..n - 1 {
            let strong_pair =
                states[i] == CfState::Coarse && states[i + 1] == CfState::Coarse;
            // Backbone couplings are always strong at θ=0.25 unless the
            // row has a much stronger other neighbour; C-C adjacency on a
            // strong edge violates the MIS property.
            if strong_pair {
                let (cols_i, vals_i) = a.row(i);
                let aij = cols_i
                    .iter()
                    .zip(vals_i)
                    .find(|(&c, _)| c == i + 1)
                    .map(|(_, &v)| v)
                    .unwrap_or(0.0);
                let max_off = cols_i
                    .iter()
                    .zip(vals_i)
                    .filter(|(&c, _)| c != i)
                    .map(|(_, &v)| -v)
                    .fold(0.0f64, f64::max);
                prop_assert!(
                    -aij < 0.25 * max_off,
                    "strong C-C pair at ({}, {})", i, i + 1
                );
            }
        }
    }

    #[test]
    fn interpolation_rows_partition_unity_on_zero_rowsum_ops(
        (n, jitter) in (16usize..48).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(0.0f64..2.0, 4),
        ))
    ) {
        // Pure-Neumann operator (zero row sums): BAMG-direct P rows must
        // sum to 1 wherever interpolation exists.
        let mut coo = Coo::new();
        let mut diag = vec![0.0; n];
        for i in 0..n - 1 {
            let w = 1.0 + jitter[i % jitter.len()].abs();
            coo.push(i as u64, (i + 1) as u64, -w);
            coo.push((i + 1) as u64, i as u64, -w);
            diag[i] += w;
            diag[i + 1] += w;
        }
        for (i, &d) in diag.iter().enumerate() {
            coo.push(i as u64, i as u64, d);
        }
        let a = Csr::from_coo(n, n, &coo);
        let out = Comm::run(2, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let pa = ParCsr::from_serial(rank, dist.clone(), dist, &a);
            let s = amg::strength::Strength::classical(rank, &pa, 0.25);
            let split = amg::pmis::pmis(rank, &pa, &s, 3);
            let p = amg::interp::build_interpolation(
                rank, &pa, &s, &split, InterpType::BamgDirect, 0.0,
            );
            p.to_serial(rank)
        });
        let p = &out[0];
        for i in 0..p.nrows() {
            let (cols, vals) = p.row(i);
            if !cols.is_empty() {
                let sum: f64 = vals.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", i, sum);
            }
        }
    }

    #[test]
    fn vcycle_reduces_residual_on_random_spd_systems(
        (n, extra, jitter) in (30usize..80).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec((0usize..80, 0usize..80), 0..12),
            proptest::collection::vec(0.0f64..2.0, 4),
        ))
    ) {
        let a = random_m_matrix(n, extra, jitter);
        let out = Comm::run(2, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
            let h = AmgHierarchy::setup(rank, pa, &AmgConfig::standard()).unwrap();
            let b = ParVector::from_fn(rank, dist.clone(), |g| ((g % 5) as f64) - 2.0);
            let mut x = ParVector::zeros(rank, dist);
            h.solve_cycles(rank, &b, &mut x, 6, 1)
        });
        // Six V-cycles must reduce the relative residual substantially on
        // any diagonally dominant M-matrix.
        prop_assert!(out[0] < 0.2, "V-cycles stalled at {}", out[0]);
    }
}
