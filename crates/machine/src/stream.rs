//! Measured host-machine roofline baseline.
//!
//! The presets in this crate model *target* machines (Summit, Eagle);
//! the kernel-perf report instead needs the bandwidth of the machine the
//! run actually executed on, so the "% of achievable bandwidth" column
//! compares like with like. We measure it STREAM-style — a triad
//! `a[i] = b[i] + s·c[i]` over arrays far larger than any cache — once
//! per host, then cache the result:
//!
//! 1. `EXAWIND_STREAM_GBS` env var, when set, short-circuits everything
//!    (CI pins it so the perf-smoke gate never waits on a measurement);
//! 2. a process-wide `OnceLock` avoids re-measuring within a process;
//! 3. a small plain-text cache file (`EXAWIND_BASELINE_CACHE` path, or
//!    `exawind_stream_baseline.txt` in the temp dir) avoids re-measuring
//!    across processes on the same machine.
//!
//! The measurement takes a few tens of milliseconds; best-of-3 after a
//! warm-up pass filters scheduler noise, `std::hint::black_box` keeps
//! the optimizer from deleting the loop.

use std::sync::OnceLock;
use std::time::Instant;

/// Env var that pins the baseline without measuring (GB/s as a float).
pub const ENV_VAR: &str = "EXAWIND_STREAM_GBS";
/// Env var naming the cross-process cache file.
pub const CACHE_ENV_VAR: &str = "EXAWIND_BASELINE_CACHE";

/// Triad array length: 4 Mi doubles × 3 arrays = 96 MiB, far beyond L3.
const N: usize = 1 << 22;
const REPS: usize = 3;

/// Measured machine characteristics of the host this process runs on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostBaseline {
    /// Sustained triad bandwidth in GB/s.
    pub stream_gbs: f64,
}

/// Run the STREAM triad and return sustained bandwidth in GB/s.
/// Unconditional measurement — prefer [`host_baseline`], which caches.
pub fn measure_stream_gbs() -> f64 {
    let mut a = vec![0.0f64; N];
    let b = vec![1.5f64; N];
    let c = vec![2.5f64; N];
    let s = std::hint::black_box(3.0f64);
    let mut best_secs = f64::INFINITY;
    // One extra untimed pass warms pages and caches.
    for rep in 0..=REPS {
        let t0 = Instant::now();
        for i in 0..N {
            a[i] = b[i] + s * c[i];
        }
        std::hint::black_box(&a);
        let secs = t0.elapsed().as_secs_f64();
        if rep > 0 && secs < best_secs {
            best_secs = secs;
        }
    }
    // Triad traffic: read b, read c, write a (stores counted once —
    // the same convention as telemetry::perfmodel).
    let bytes = 3 * N * std::mem::size_of::<f64>();
    bytes as f64 / best_secs / 1e9
}

fn cache_path() -> std::path::PathBuf {
    match std::env::var(CACHE_ENV_VAR) {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => std::env::temp_dir().join("exawind_stream_baseline.txt"),
    }
}

fn read_cache() -> Option<f64> {
    let text = std::fs::read_to_string(cache_path()).ok()?;
    text.trim().parse::<f64>().ok().filter(|v| v.is_finite() && *v > 0.0)
}

fn resolve() -> HostBaseline {
    if let Ok(v) = std::env::var(ENV_VAR) {
        if let Ok(gbs) = v.trim().parse::<f64>() {
            if gbs.is_finite() && gbs > 0.0 {
                return HostBaseline { stream_gbs: gbs };
            }
        }
    }
    if let Some(gbs) = read_cache() {
        return HostBaseline { stream_gbs: gbs };
    }
    let gbs = measure_stream_gbs();
    // Best-effort persist; a read-only temp dir just means we re-measure
    // next process.
    let _ = std::fs::write(cache_path(), format!("{gbs}\n"));
    HostBaseline { stream_gbs: gbs }
}

/// The host baseline, resolved once per process (env override → disk
/// cache → measurement, in that order).
pub fn host_baseline() -> HostBaseline {
    static BASELINE: OnceLock<HostBaseline> = OnceLock::new();
    *BASELINE.get_or_init(resolve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_measures_a_positive_finite_bandwidth() {
        let gbs = measure_stream_gbs();
        assert!(gbs.is_finite() && gbs > 0.0, "{gbs}");
        // Any machine that can run the test suite moves more than
        // 100 MB/s and less than 10 TB/s.
        assert!((0.1..10_000.0).contains(&gbs), "{gbs}");
    }

    #[test]
    fn host_baseline_is_stable_within_a_process() {
        // Whatever source resolves first (env, cache, or measurement),
        // repeated calls must return the identical value.
        let a = host_baseline();
        let b = host_baseline();
        assert_eq!(a, b);
        assert!(a.stream_gbs > 0.0);
    }

    #[test]
    fn cache_file_round_trips() {
        let dir = std::env::temp_dir().join("exawind_stream_cache_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("baseline.txt");
        std::fs::write(&path, "42.5\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.trim().parse::<f64>().unwrap(), 42.5);
        // Garbage or non-positive values must be rejected by the parse
        // guard read_cache applies.
        for bad in ["nan", "-3.0", "0", "banana"] {
            let v = bad.trim().parse::<f64>().ok().filter(|v| v.is_finite() && *v > 0.0);
            assert!(v.is_none(), "{bad}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
