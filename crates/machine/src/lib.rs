//! Machine performance models for Summit- and Eagle-class systems.
//!
//! The repository runs the paper's *algorithms* for real (assembly
//! exchanges, AMG setup products, GMRES reductions, halo messages), but
//! on a laptop-scale in-process runtime. To regenerate the paper's
//! wall-clock figures we convert each rank's recorded operation trace
//! ([`parcomm::Trace`]) into modeled execution time for a target machine:
//!
//! - device kernels cost `launch_overhead + max(bytes/BW, flops/peak)`
//!   (roofline with a fixed launch latency — the paper's §6 emphasizes
//!   that kernel-launch and data-motion overheads, not flops, dominated
//!   their optimization work);
//! - point-to-point messages cost `α + β·bytes` (per paper §5.3, the MPI
//!   implementation is decisive for strong scaling);
//! - collectives cost `⌈log₂ P⌉·(α_coll + β·bytes)` (tree algorithms).
//!
//! Phase time is the **maximum over ranks** (bulk-synchronous execution).
//! Presets are calibrated to the published characteristics of Summit
//! V100/Power9 and Eagle V100 nodes; absolute numbers are indicative, the
//! *shape* comparisons (GPU vs CPU crossover, Summit vs Eagle slopes) are
//! what the harness reproduces.

use parcomm::{PhaseTrace, Trace};

pub mod stream;

pub use stream::{host_baseline, measure_stream_gbs, HostBaseline};

/// Cost model of one rank's execution environment plus its interconnect.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// Effective device/host memory bandwidth per rank (bytes/s).
    pub mem_bw: f64,
    /// Effective floating-point throughput per rank (flop/s), sparse-
    /// workload derated.
    pub flops: f64,
    /// Kernel launch latency (s); zero for host execution.
    pub kernel_launch: f64,
    /// Point-to-point message latency (s).
    pub alpha: f64,
    /// Per-byte transfer cost (s/byte).
    pub beta: f64,
    /// Collective per-stage latency (s).
    pub alpha_coll: f64,
    /// Ranks per node (6 GPUs or 42 cores on Summit, 2 GPUs on Eagle).
    pub ranks_per_node: usize,
}

impl MachineModel {
    /// Summit: one V100 SXM2 GPU rank (6 per node), Spectrum MPI.
    ///
    /// The relatively high α reflects the GPU-direct messaging overheads
    /// the paper measured on Summit (§5.3).
    pub fn summit_v100() -> Self {
        MachineModel {
            name: "Summit V100",
            mem_bw: 450e9,       // 900 GB/s HBM2, ~50% effective on sparse
            flops: 1.0e12,       // 7.8 TF/s peak, sparse-derated
            kernel_launch: 8e-6, // CUDA launch + sync overhead
            alpha: 22e-6,        // Spectrum MPI + GPU buffers
            beta: 1.0 / 10e9,    // effective inter-node
            alpha_coll: 16e-6,
            ranks_per_node: 6,
        }
    }

    /// Summit: one Power9 core rank (42 per node), Spectrum MPI.
    pub fn summit_power9() -> Self {
        MachineModel {
            name: "Summit Power9",
            mem_bw: 8e9,   // share of node's 135 GB/s across 42 ranks
            flops: 4.0e9,  // one core, sparse-derated
            kernel_launch: 0.0,
            alpha: 3e-6,   // host-to-host MPI
            beta: 1.0 / 6e9,
            alpha_coll: 3e-6,
            ranks_per_node: 42,
        }
    }

    /// Eagle: one V100 PCIe GPU rank (2 per node), HPE MPT.
    ///
    /// Slightly lower peak than the SXM2 part, but a markedly leaner MPI
    /// stack — the paper's Fig. 11 shows 72 Eagle GPUs beating 144 Summit
    /// GPUs by ~40% on the same mesh.
    pub fn eagle_v100() -> Self {
        MachineModel {
            name: "Eagle V100",
            mem_bw: 430e9,
            flops: 0.93e12, // PCIe part: reduced double-precision clocks
            kernel_launch: 6e-6,
            alpha: 6e-6, // HPE MPT host-staged messaging
            beta: 1.0 / 11e9,
            alpha_coll: 5e-6,
            ranks_per_node: 2,
        }
    }

    /// Modeled seconds for one rank's trace on a `nranks`-rank job.
    pub fn rank_time(&self, trace: &Trace, nranks: usize) -> f64 {
        let kernels = trace.kernel_launches as f64 * self.kernel_launch
            + trace.kernel_bytes as f64 / self.mem_bw
            + trace.kernel_flops as f64 / self.flops;
        let p2p = trace.msgs as f64 * self.alpha + trace.msg_bytes as f64 * self.beta;
        let stages = (nranks.max(2) as f64).log2().ceil();
        let coll = trace.collectives as f64 * stages * self.alpha_coll
            + trace.collective_bytes as f64 * stages * self.beta;
        kernels + p2p + coll
    }

    /// Modeled seconds of a bulk-synchronous phase: the slowest rank.
    pub fn phase_time(&self, traces: &[Trace]) -> f64 {
        let n = traces.len();
        traces
            .iter()
            .map(|t| self.rank_time(t, n))
            .fold(0.0, f64::max)
    }

    /// Modeled seconds for a named phase across per-rank phase traces.
    pub fn named_phase_time(&self, traces: &[PhaseTrace], phase: &str) -> f64 {
        let per_rank: Vec<Trace> = traces.iter().map(|t| t.phase(phase)).collect();
        self.phase_time(&per_rank)
    }

    /// Modeled seconds summed over every phase (the NLI proxy).
    pub fn total_time(&self, traces: &[PhaseTrace]) -> f64 {
        let mut names: Vec<String> = Vec::new();
        for t in traces {
            names.extend(t.phase_names());
        }
        names.sort();
        names.dedup();
        names
            .iter()
            .map(|name| self.named_phase_time(traces, name))
            .sum()
    }

    /// Node count for a rank count on this machine.
    pub fn nodes(&self, nranks: usize) -> f64 {
        nranks as f64 / self.ranks_per_node as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(launches: u64, bytes: u64, flops: u64, msgs: u64, msg_bytes: u64) -> Trace {
        Trace {
            kernel_launches: launches,
            kernel_bytes: bytes,
            kernel_flops: flops,
            msgs,
            msg_bytes,
            ..Default::default()
        }
    }

    #[test]
    fn more_work_costs_more() {
        let m = MachineModel::summit_v100();
        let small = trace(10, 1 << 20, 1 << 18, 4, 4096);
        let big = trace(10, 1 << 24, 1 << 22, 4, 4096);
        assert!(m.rank_time(&big, 8) > m.rank_time(&small, 8));
    }

    #[test]
    fn gpu_wins_big_loses_small() {
        // The paper's crossover: GPUs win with many DoFs per rank, lose
        // to CPUs when launch overheads dominate tiny kernels.
        let gpu = MachineModel::summit_v100();
        let cpu = MachineModel::summit_power9();
        // Large per-rank workload: 100 MB moved in 100 kernels.
        let large = trace(100, 100 << 20, 50 << 20, 10, 1 << 20);
        assert!(
            gpu.rank_time(&large, 8) < cpu.rank_time(&large, 8),
            "GPU must win the bandwidth-bound regime"
        );
        // Tiny per-rank workload: 2000 kernels over 1 MB total.
        let tiny = trace(2000, 1 << 20, 1 << 18, 200, 1 << 12);
        assert!(
            gpu.rank_time(&tiny, 8) > cpu.rank_time(&tiny, 8),
            "launch+latency overheads must sink the GPU at small sizes"
        );
    }

    #[test]
    fn eagle_beats_summit_on_message_bound_traces() {
        let summit = MachineModel::summit_v100();
        let eagle = MachineModel::eagle_v100();
        // Message-heavy, kernel-light: AMG in the strong-scaling limit.
        let msg_bound = trace(50, 4 << 20, 1 << 20, 4000, 8 << 20);
        assert!(eagle.rank_time(&msg_bound, 64) < 0.75 * summit.rank_time(&msg_bound, 64));
        // Compute-bound traces are nearly identical.
        let compute = trace(10, 400 << 20, 100 << 20, 2, 1 << 10);
        let ratio = eagle.rank_time(&compute, 4) / summit.rank_time(&compute, 4);
        assert!((0.8..1.3).contains(&ratio));
    }

    #[test]
    fn phase_time_is_critical_path() {
        let m = MachineModel::summit_v100();
        let fast = trace(1, 1 << 10, 0, 0, 0);
        let slow = trace(1, 64 << 20, 0, 0, 0);
        let balanced = m.phase_time(&[slow.clone(), slow.clone()]);
        let imbalanced = m.phase_time(&[fast, slow]);
        assert!((balanced - imbalanced).abs() < 1e-12, "max, not sum");
    }

    #[test]
    fn collectives_scale_with_log_ranks() {
        let m = MachineModel::summit_v100();
        let t = Trace {
            collectives: 100,
            ..Trace::default()
        };
        let t8 = m.rank_time(&t, 8);
        let t64 = m.rank_time(&t, 64);
        assert!((t64 / t8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
    }

    #[test]
    fn node_counts_reflect_density() {
        assert_eq!(MachineModel::summit_v100().nodes(12), 2.0);
        assert_eq!(MachineModel::summit_power9().nodes(84), 2.0);
        assert_eq!(MachineModel::eagle_v100().nodes(12), 6.0);
    }

    #[test]
    fn named_phase_lookup_missing_is_zero() {
        let m = MachineModel::eagle_v100();
        let traces = vec![PhaseTrace::default()];
        assert_eq!(m.named_phase_time(&traces, "nope"), 0.0);
        assert_eq!(m.total_time(&traces), 0.0);
    }
}
