//! Property-based tests: distributed operations must agree with their
//! serial references for arbitrary matrices, distributions, and rank
//! counts.

use distmat::{IjMatrix, IjVector, ParCsr, ParVector, RowDist};
use parcomm::Comm;
use proptest::prelude::*;
use sparse_kit::{Coo, Csr};

/// Strategy: a random sparse square matrix of size n with ~30% fill and a
/// guaranteed nonzero diagonal.
fn sparse_square(n: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                7 => Just(0.0),
                3 => (-4.0f64..4.0).prop_map(|v| (v * 4.0).round() / 4.0),
            ],
            n,
        ),
        n,
    )
    .prop_map(move |mut dense| {
        for (i, row) in dense.iter_mut().enumerate() {
            row[i] = 5.0; // nonzero diagonal
        }
        Csr::from_dense(&dense)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_spmv_matches_serial(
        (a, x, p) in (3usize..14).prop_flat_map(|n| (
            sparse_square(n),
            proptest::collection::vec(-2.0f64..2.0, n),
            1usize..4,
        ))
    ) {
        let n = a.nrows();
        let expected = a.spmv(&x);
        let x2 = x.clone();
        let out = Comm::run(p, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
            let px = ParVector::from_fn(rank, dist, |g| x2[g as usize]);
            pa.spmv(rank, &px).to_serial(rank)
        });
        for (got, want) in out[0].iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn ij_assembly_matches_serial_reference(
        (entries, p, n) in (4u64..16, 1usize..4).prop_flat_map(|(n, p)| (
            proptest::collection::vec((0..n, 0..n, -3.0f64..3.0, 0..p), 0..80),
            Just(p),
            Just(n),
        ))
    ) {
        // Each entry is contributed by one specific rank — scattering the
        // same global matrix across contributors arbitrarily.
        let entries2 = entries.clone();
        let out = Comm::run(p, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let mut ij = IjMatrix::new(rank, dist.clone(), dist);
            for &(i, j, v, owner) in &entries2 {
                if owner == rank.rank() {
                    ij.add_value(i, j, v);
                }
            }
            ij.assemble(rank).to_serial(rank)
        });
        let mut coo = Coo::new();
        for &(i, j, v, _) in &entries {
            coo.push(i, j, v);
        }
        let expected = Csr::from_coo(n as usize, n as usize, &coo);
        for i in 0..n as usize {
            for j in 0..n as usize {
                prop_assert!((out[0].get(i, j) - expected.get(i, j)).abs() < 1e-10,
                    "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn ij_vector_assembly_matches_reference(
        (adds, p, n) in (4u64..16, 1usize..4).prop_flat_map(|(n, p)| (
            proptest::collection::vec((0..n, -3.0f64..3.0, 0..p), 0..60),
            Just(p),
            Just(n),
        ))
    ) {
        let adds2 = adds.clone();
        let out = Comm::run(p, move |rank| {
            let dist = RowDist::block(n, rank.size());
            let mut ij = IjVector::new(rank, dist);
            for &(i, v, owner) in &adds2 {
                if owner == rank.rank() {
                    ij.add_value(i, v);
                }
            }
            ij.assemble(rank).to_serial(rank)
        });
        let mut expected = vec![0.0; n as usize];
        for &(i, v, _) in &adds {
            expected[i as usize] += v;
        }
        for (got, want) in out[0].iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn distributed_transpose_and_rap_match_serial(
        (a, p) in (4usize..10).prop_flat_map(|n| (sparse_square(n), 1usize..4))
    ) {
        let n = a.nrows();
        // Interpolation: aggregate pairs of rows.
        let nc = n.div_ceil(2);
        let mut pcoo = Coo::new();
        for i in 0..n as u64 {
            pcoo.push(i, (i / 2).min(nc as u64 - 1), 1.0);
        }
        let p_serial = Csr::from_coo(n, nc, &pcoo);
        let expected_t = p_serial.transpose();
        let expected_rap = sparse_kit::rap::galerkin(&a, &p_serial);

        let (p_ref, a_ref) = (p_serial.clone(), a.clone());
        let out = Comm::run(p, move |rank| {
            let rd = RowDist::block(n as u64, rank.size());
            let cd = RowDist::block(nc as u64, rank.size());
            let pa = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_ref);
            let pp = ParCsr::from_serial(rank, rd, cd, &p_ref);
            let t = distmat::ops::par_transpose(rank, &pp).to_serial(rank);
            let rap = distmat::ops::par_rap(rank, &pa, &pp).to_serial(rank);
            (t, rap)
        });
        let (t, rap) = &out[0];
        for i in 0..expected_t.nrows() {
            for j in 0..expected_t.ncols() {
                prop_assert!((t.get(i, j) - expected_t.get(i, j)).abs() < 1e-10);
            }
        }
        for i in 0..nc {
            for j in 0..nc {
                prop_assert!((rap.get(i, j) - expected_rap.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn halo_exchange_delivers_exactly_owned_values(
        (a, p) in (4usize..12).prop_flat_map(|n| (sparse_square(n), 2usize..4))
    ) {
        let n = a.nrows();
        Comm::run(p, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
            let x: Vec<f64> = (dist.start(rank.rank())..dist.end(rank.rank()))
                .map(|g| g as f64 * 10.0)
                .collect();
            let ext = pa.halo_exchange(rank, &x);
            // Every external value equals 10× its global id.
            for (k, &g) in pa.col_map_offd.iter().enumerate() {
                assert_eq!(ext[k], g as f64 * 10.0);
            }
        });
    }
}
