//! 1-D block-row distributions.

use parcomm::Rank;

/// Describes which rank owns each contiguous block of global row ids:
/// rank `r` owns `starts[r]..starts[r+1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowDist {
    starts: Vec<u64>,
}

impl RowDist {
    /// Build from explicit block starts (length = nranks + 1, monotone).
    ///
    /// # Panics
    ///
    /// Panics if `starts` is not monotone non-decreasing or has < 2 entries.
    pub fn from_starts(starts: Vec<u64>) -> Self {
        assert!(starts.len() >= 2, "need at least one rank");
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "starts must be monotone"
        );
        RowDist { starts }
    }

    /// Build collectively from each rank's local row count.
    pub fn from_local_size(rank: &Rank, local_n: usize) -> Self {
        let counts = rank.allgather(local_n as u64);
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0;
        starts.push(0);
        for c in counts {
            acc += c;
            starts.push(acc);
        }
        RowDist { starts }
    }

    /// Split `n` rows over `p` ranks as evenly as possible (remainder goes
    /// to the first ranks).
    pub fn block(n: u64, p: usize) -> Self {
        let base = n / p as u64;
        let rem = n % p as u64;
        let mut starts = Vec::with_capacity(p + 1);
        let mut acc = 0;
        starts.push(0);
        for r in 0..p as u64 {
            acc += base + u64::from(r < rem);
            starts.push(acc);
        }
        RowDist { starts }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of global rows.
    pub fn global_n(&self) -> u64 {
        *self.starts.last().unwrap()
    }

    /// First global row owned by `rank`.
    pub fn start(&self, rank: usize) -> u64 {
        self.starts[rank]
    }

    /// One past the last global row owned by `rank`.
    pub fn end(&self, rank: usize) -> u64 {
        self.starts[rank + 1]
    }

    /// Number of rows owned by `rank`.
    pub fn local_n(&self, rank: usize) -> usize {
        (self.end(rank) - self.start(rank)) as usize
    }

    /// Owner rank of global row `gid` (binary search).
    ///
    /// # Panics
    ///
    /// Panics if `gid >= global_n()`.
    pub fn owner(&self, gid: u64) -> usize {
        assert!(gid < self.global_n(), "gid {gid} out of range");
        // partition_point returns the first index with starts[i] > gid;
        // the owner is that index - 1.
        self.starts.partition_point(|&s| s <= gid) - 1
    }

    /// Convert a global id owned by `rank` to a local index.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is not owned by `rank`.
    pub fn to_local(&self, rank: usize, gid: u64) -> usize {
        assert!(
            gid >= self.start(rank) && gid < self.end(rank),
            "gid {gid} not owned by rank {rank}"
        );
        (gid - self.start(rank)) as usize
    }

    /// Convert a local index on `rank` to a global id.
    pub fn to_global(&self, rank: usize, lid: usize) -> u64 {
        self.start(rank) + lid as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;

    #[test]
    fn block_distribution_splits_remainder() {
        let d = RowDist::block(10, 3);
        assert_eq!(d.local_n(0), 4);
        assert_eq!(d.local_n(1), 3);
        assert_eq!(d.local_n(2), 3);
        assert_eq!(d.global_n(), 10);
        assert_eq!(d.nranks(), 3);
    }

    #[test]
    fn owner_lookup() {
        let d = RowDist::from_starts(vec![0, 4, 4, 10]);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(4), 2); // rank 1 owns nothing
        assert_eq!(d.owner(9), 2);
        assert_eq!(d.local_n(1), 0);
    }

    #[test]
    fn local_global_round_trip() {
        let d = RowDist::block(9, 2);
        for r in 0..2 {
            for l in 0..d.local_n(r) {
                let g = d.to_global(r, l);
                assert_eq!(d.owner(g), r);
                assert_eq!(d.to_local(r, g), l);
            }
        }
    }

    #[test]
    fn from_local_size_collective() {
        let dists = Comm::run(3, |rank| RowDist::from_local_size(rank, rank.rank() + 1));
        for d in &dists {
            assert_eq!(d.global_n(), 6);
            assert_eq!(d.local_n(0), 1);
            assert_eq!(d.local_n(2), 3);
        }
        assert_eq!(dists[0], dists[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        RowDist::block(4, 2).owner(4);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn to_local_wrong_rank_panics() {
        RowDist::block(4, 2).to_local(0, 3);
    }
}
