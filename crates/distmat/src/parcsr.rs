//! ParCSR matrices: diag/offd-split distributed CSR with halo exchange.

use parcomm::{KernelKind, Rank, Tag, TagClass};
use resilience::faults::{self, FaultKind};
use resilience::SolveError;
use sparse_kit::cost;
use sparse_kit::policy;
use sparse_kit::{Coo, Csr, KernelChoice, SellCs};
use telemetry::perfmodel;

use crate::dist::RowDist;
use crate::vector::ParVector;



/// Communication package: who sends what to whom for a halo exchange of
/// vector values aligned with a matrix's column distribution.
#[derive(Clone, Debug, Default)]
pub struct CommPkg {
    /// `(dst rank, local column ids to pack and send)`, sorted by rank.
    pub sends: Vec<(usize, Vec<usize>)>,
    /// `(src rank, range of positions in col_map_offd)`, sorted by rank.
    pub recvs: Vec<(usize, std::ops::Range<usize>)>,
}

impl CommPkg {
    /// Total number of external values received.
    pub fn n_recv(&self) -> usize {
        self.recvs.iter().map(|(_, r)| r.len()).sum()
    }

    /// Total number of values sent.
    pub fn n_send(&self) -> usize {
        self.sends.iter().map(|(_, s)| s.len()).sum()
    }
}

/// A distributed CSR matrix in hypre's ParCSR layout.
///
/// Rows are distributed by `row_dist`; columns by `col_dist` (equal to
/// `row_dist` for square operators, different for interpolation). The
/// local block splits into `diag` (columns owned by this rank, indexed
/// locally) and `offd` (external columns, indexed into `col_map_offd`,
/// which maps them to sorted global ids).
#[derive(Clone, Debug)]
pub struct ParCsr {
    row_dist: RowDist,
    col_dist: RowDist,
    rank_id: usize,
    /// Local rows × local columns.
    pub diag: Csr,
    /// SELL-C-σ mirror of `diag`, built at construction when the active
    /// [`sparse_kit::KernelPolicy`] selects it for this matrix shape.
    /// Always numerically in sync with `diag` (see [`ParCsr::scale`] and
    /// the plan-replay refresh in `ops`); `spmv_into` dispatches on it.
    diag_sell: Option<SellCs>,
    /// Local rows × external columns (compressed).
    pub offd: Csr,
    /// Sorted global ids of the external columns.
    pub col_map_offd: Vec<u64>,
    comm_pkg: CommPkg,
    /// Tag dedicated to this matrix's halo traffic (a per-object
    /// "communicator": messages of different matrices can never match).
    halo_tag: Tag,
}

impl ParCsr {
    /// Build from a local COO whose rows are *global* ids owned by this
    /// rank and whose columns are global ids anywhere. Collective: builds
    /// the halo communication package.
    ///
    /// # Panics
    ///
    /// Panics if any row is not owned by this rank or any column is out
    /// of range.
    pub fn from_global_coo(
        rank: &Rank,
        row_dist: RowDist,
        col_dist: RowDist,
        coo: &Coo,
    ) -> Self {
        let r = rank.rank();
        let my_cols = col_dist.start(r)..col_dist.end(r);
        let local_rows = row_dist.local_n(r);

        // Split into diag and offd triple sets.
        let mut diag_coo = Coo::new();
        let mut offd_cols_global: Vec<u64> = Vec::new();
        let mut offd_triples: Vec<(u64, u64, f64)> = Vec::new();
        for k in 0..coo.len() {
            let (gi, gj, v) = (coo.rows[k], coo.cols[k], coo.vals[k]);
            let li = row_dist.to_local(r, gi) as u64;
            assert!(gj < col_dist.global_n(), "column {gj} out of range");
            if my_cols.contains(&gj) {
                diag_coo.push(li, gj - col_dist.start(r), v);
            } else {
                offd_cols_global.push(gj);
                offd_triples.push((li, gj, v));
            }
        }

        // Compress external columns to a sorted global map.
        offd_cols_global.sort_unstable();
        offd_cols_global.dedup();
        let col_map_offd = offd_cols_global;
        let mut offd_coo = Coo::new();
        for (li, gj, v) in offd_triples {
            let cj = col_map_offd.binary_search(&gj).unwrap() as u64;
            offd_coo.push(li, cj, v);
        }

        let diag = Csr::from_coo(local_rows, col_dist.local_n(r), &diag_coo);
        let offd = Csr::from_coo(local_rows, col_map_offd.len(), &offd_coo);
        let comm_pkg = build_comm_pkg(rank, &col_dist, &col_map_offd);
        let diag_sell = match policy::current().choose(&diag) {
            KernelChoice::Sellcs => Some(SellCs::from_csr(&diag, policy::sigma_from_env())),
            KernelChoice::Csr => None,
        };
        ParCsr {
            row_dist,
            col_dist,
            rank_id: r,
            diag,
            diag_sell,
            offd,
            col_map_offd,
            comm_pkg,
            halo_tag: rank.alloc_tag_for(TagClass::Halo),
        }
    }

    /// Take this rank's row block of a replicated serial matrix
    /// (tests/generators). Collective.
    pub fn from_serial(rank: &Rank, row_dist: RowDist, col_dist: RowDist, a: &Csr) -> Self {
        assert_eq!(a.nrows() as u64, row_dist.global_n(), "row count mismatch");
        assert_eq!(a.ncols() as u64, col_dist.global_n(), "col count mismatch");
        let r = rank.rank();
        let mut coo = Coo::new();
        for gi in row_dist.start(r)..row_dist.end(r) {
            let (cols, vals) = a.row(gi as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(gi, c as u64, v);
            }
        }
        Self::from_global_coo(rank, row_dist, col_dist, &coo)
    }

    /// Row distribution.
    pub fn row_dist(&self) -> &RowDist {
        &self.row_dist
    }

    /// Column distribution.
    pub fn col_dist(&self) -> &RowDist {
        &self.col_dist
    }

    /// Owning rank id.
    pub fn rank_id(&self) -> usize {
        self.rank_id
    }

    /// Halo communication package.
    pub fn comm_pkg(&self) -> &CommPkg {
        &self.comm_pkg
    }

    /// Rows owned by this rank.
    pub fn local_rows(&self) -> usize {
        self.row_dist.local_n(self.rank_id)
    }

    /// Stored entries on this rank.
    pub fn local_nnz(&self) -> usize {
        self.diag.nnz() + self.offd.nnz()
    }

    /// Total stored entries across ranks. Collective.
    pub fn global_nnz(&self, rank: &Rank) -> u64 {
        rank.allreduce_sum(self.local_nnz() as u64)
    }

    /// Global column id of a local diag column.
    pub fn global_diag_col(&self, j: usize) -> u64 {
        self.col_dist.start(self.rank_id) + j as u64
    }

    /// Global column id of a compressed offd column.
    pub fn global_offd_col(&self, j: usize) -> u64 {
        self.col_map_offd[j]
    }

    /// The global diagonal entries of the locally owned rows (square
    /// operators: the diagonal lives in the diag block).
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(
            self.row_dist, self.col_dist,
            "diagonal requires a square distribution"
        );
        self.diag.diag()
    }

    /// Scale every stored value by `s` (local operation).
    pub fn scale(&mut self, s: f64) {
        self.diag.scale(s);
        if let Some(sell) = &mut self.diag_sell {
            sell.scale(s);
        }
        self.offd.scale(s);
    }

    /// The SELL-C-σ mirror of the diag block, if the active kernel
    /// policy built one.
    pub fn diag_sell(&self) -> Option<&SellCs> {
        self.diag_sell.as_ref()
    }

    /// Re-copy `diag`'s values into the SELL-C-σ mirror (no-op without
    /// one). Callers that overwrite `diag` values in place — numeric
    /// SpGEMM plan replay — must call this before the next SpMV.
    pub fn refresh_diag_sell(&mut self) {
        if let Some(sell) = &mut self.diag_sell {
            sell.refresh_values(&self.diag);
        }
    }

    /// Exchange halo values: returns the external vector aligned with
    /// `col_map_offd`. Collective among neighbouring ranks.
    ///
    /// # Panics
    ///
    /// Panics on a corrupted exchange; see [`ParCsr::try_halo_exchange`]
    /// for the fallible variant.
    pub fn halo_exchange(&self, rank: &Rank, x_local: &[f64]) -> Vec<f64> {
        self.try_halo_exchange(rank, x_local).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ParCsr::halo_exchange`] with decode failures (timeout, payload
    /// type, payload length) surfaced as a typed [`SolveError`]. Hosts
    /// the `halo-nan` fault-injection hook (with a matching spec armed,
    /// the first external value is flipped to NaN after receive, exactly
    /// as a corrupted wire payload would arrive) and the `socket-drop`
    /// hook (the whole exchange aborts before any send, as a vanished
    /// peer would make it).
    pub fn try_halo_exchange(
        &self,
        rank: &Rank,
        x_local: &[f64],
    ) -> Result<Vec<f64>, SolveError> {
        assert_eq!(
            x_local.len(),
            self.col_dist.local_n(self.rank_id),
            "x length does not match column distribution"
        );
        if faults::fire(FaultKind::SocketDrop, || rank.phase_name()) {
            return Err(SolveError::Comm {
                detail: format!("injected socket drop in {}", rank.phase_name()),
            });
        }
        let mut ext = vec![0.0; self.col_map_offd.len()];
        // Pack kernel: gather boundary values into per-destination buffers.
        let packed_total = self.comm_pkg.n_send();
        if packed_total > 0 {
            let (b, f) = cost::blas1(packed_total, 2);
            rank.kernel(KernelKind::Stream, b, f);
        }
        {
            let _k = telemetry::kernel("halo_pack", perfmodel::halo_pack(packed_total));
            for (dst, ids) in &self.comm_pkg.sends {
                let buf: Vec<f64> = ids.iter().map(|&i| x_local[i]).collect();
                rank.send(*dst, self.halo_tag, buf);
            }
        }
        // Receive first (the blocking wait is communication, not unpack
        // work), then copy in a separately timed unpack kernel.
        let mut received: Vec<(std::ops::Range<usize>, Vec<f64>)> =
            Vec::with_capacity(self.comm_pkg.recvs.len());
        for (src, range) in &self.comm_pkg.recvs {
            let buf: Vec<f64> = rank.try_recv(*src, self.halo_tag)?;
            if buf.len() != range.len() {
                return Err(SolveError::HaloCorruption {
                    context: rank.phase_name(),
                    src: *src,
                    detail: format!("expected {} values, got {}", range.len(), buf.len()),
                });
            }
            received.push((range.clone(), buf));
        }
        {
            let _k = telemetry::kernel("halo_unpack", perfmodel::halo_unpack(ext.len()));
            for (range, buf) in received {
                ext[range].copy_from_slice(&buf);
            }
        }
        if !ext.is_empty() && faults::fire(FaultKind::HaloNan, || rank.phase_name()) {
            ext[0] = f64::NAN;
        }
        Ok(ext)
    }

    /// y = A·x distributed: `y_local = diag·x_local + offd·x_ext`.
    /// Collective.
    pub fn spmv(&self, rank: &Rank, x: &ParVector) -> ParVector {
        let mut y = ParVector::zeros(rank, self.row_dist.clone());
        self.spmv_into(rank, x, &mut y);
        y
    }

    /// y = A·x into an existing vector. Collective.
    pub fn spmv_into(&self, rank: &Rank, x: &ParVector, y: &mut ParVector) {
        assert_eq!(
            x.dist(),
            &self.col_dist,
            "x distribution does not match columns"
        );
        let ext = self.halo_exchange(rank, &x.local);
        match &self.diag_sell {
            // Policy chose SELL-C-σ for the diag block: the compact u32
            // index streams shrink the dominant traffic term. The offd
            // block (thin, irregular) stays CSR either way.
            Some(sell) => {
                let mut model =
                    perfmodel::sellcs_spmv(sell.nrows(), sell.n_chunks(), sell.stored(), sell.nnz());
                if self.offd.nnz() > 0 {
                    model = model.plus(perfmodel::csr_spmv(self.local_rows(), self.offd.nnz()));
                }
                let _k = telemetry::kernel("spmv_sellcs", model);
                let (b, f) = cost::sellcs_spmv(sell);
                rank.kernel(KernelKind::SpMV, b, f);
                sell.spmv_into(&x.local, &mut y.local);
                if self.offd.nnz() > 0 {
                    let (b, f) = cost::spmv(&self.offd);
                    rank.kernel(KernelKind::SpMV, b, f);
                    self.offd.spmv_add_into(&ext, &mut y.local);
                }
            }
            None => {
                let _k = telemetry::kernel(
                    "spmv_csr",
                    perfmodel::csr_spmv(self.local_rows(), self.local_nnz()),
                );
                let (b, f) = cost::spmv(&self.diag);
                rank.kernel(KernelKind::SpMV, b, f);
                self.diag.spmv_into(&x.local, &mut y.local);
                if self.offd.nnz() > 0 {
                    let (b, f) = cost::spmv(&self.offd);
                    rank.kernel(KernelKind::SpMV, b, f);
                    self.offd.spmv_add_into(&ext, &mut y.local);
                }
            }
        }
    }

    /// Residual r = b − A·x. Collective.
    pub fn residual(&self, rank: &Rank, b: &ParVector, x: &ParVector) -> ParVector {
        let mut r = self.spmv(rank, x);
        r.scale(rank, -1.0);
        r.axpy(rank, 1.0, b);
        r
    }

    /// Reconstruct the full matrix on every rank (tests only). Collective.
    pub fn to_serial(&self, rank: &Rank) -> Csr {
        let mut triples: Vec<(u64, u64, f64)> = Vec::with_capacity(self.local_nnz());
        let start = self.row_dist.start(self.rank_id);
        for li in 0..self.local_rows() {
            let gi = start + li as u64;
            let (cols, vals) = self.diag.row(li);
            for (&c, &v) in cols.iter().zip(vals) {
                triples.push((gi, self.global_diag_col(c), v));
            }
            let (cols, vals) = self.offd.row(li);
            for (&c, &v) in cols.iter().zip(vals) {
                triples.push((gi, self.global_offd_col(c), v));
            }
        }
        let rows: Vec<u64> = triples.iter().map(|t| t.0).collect();
        let cols: Vec<u64> = triples.iter().map(|t| t.1).collect();
        let vals: Vec<f64> = triples.iter().map(|t| t.2).collect();
        let all_rows: Vec<Vec<u64>> = rank.allgather(rows);
        let all_cols: Vec<Vec<u64>> = rank.allgather(cols);
        let all_vals: Vec<Vec<f64>> = rank.allgather(vals);
        let mut coo = Coo::new();
        for ((rs, cs), vs) in all_rows.iter().zip(&all_cols).zip(&all_vals) {
            for ((&r0, &c0), &v0) in rs.iter().zip(cs).zip(vs) {
                coo.push(r0, c0, v0);
            }
        }
        Csr::from_coo(
            self.row_dist.global_n() as usize,
            self.col_dist.global_n() as usize,
            &coo,
        )
    }
}

/// Build the halo communication package for an external column map:
/// receives are the owner-grouped ranges of `col_map_offd`; sends are
/// learned by exchanging requests with the owners.
pub fn build_comm_pkg(rank: &Rank, col_dist: &RowDist, col_map_offd: &[u64]) -> CommPkg {
    let r = rank.rank();
    // Group the (sorted) external columns by owner → recv ranges.
    let mut recvs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < col_map_offd.len() {
        let owner = col_dist.owner(col_map_offd[i]);
        assert_ne!(owner, r, "own column listed as external");
        let begin = i;
        while i < col_map_offd.len() && col_dist.owner(col_map_offd[i]) == owner {
            i += 1;
        }
        recvs.push((owner, begin..i));
    }
    // Tell each owner which of its columns we need.
    let requests: Vec<(usize, Vec<u64>)> = recvs
        .iter()
        .map(|(owner, range)| (*owner, col_map_offd[range.clone()].to_vec()))
        .collect();
    let received = rank.sparse_exchange(requests);
    let sends: Vec<(usize, Vec<usize>)> = received
        .into_iter()
        .map(|(src, gids)| {
            let lids: Vec<usize> = gids.iter().map(|&g| col_dist.to_local(r, g)).collect();
            (src, lids)
        })
        .collect();
    CommPkg { sends, recvs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;

    /// 1-D Laplacian as a serial CSR.
    fn laplacian(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    #[test]
    fn from_serial_round_trips() {
        let n = 13;
        let a = laplacian(n);
        for p in [1, 2, 3, 4] {
            let a_ref = a.clone();
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(n as u64, rank.size());
                let pa =
                    ParCsr::from_serial(rank, dist.clone(), dist, &a_ref);
                pa.to_serial(rank)
            });
            for gathered in out {
                assert_eq!(gathered.to_dense(), a.to_dense(), "p={p}");
            }
        }
    }

    #[test]
    fn diag_offd_split_is_correct() {
        let n = 6;
        let a = laplacian(n);
        Comm::run(3, move |rank| {
            let dist = RowDist::block(n as u64, 3);
            let pa = ParCsr::from_serial(rank, dist.clone(), dist, &a);
            // Each middle rank has exactly 2 external columns (one on each
            // side); edge ranks have 1.
            let expected_ext = if rank.rank() == 1 { 2 } else { 1 };
            assert_eq!(pa.col_map_offd.len(), expected_ext);
            assert_eq!(pa.diag.nrows(), 2);
            // Diagonal of the Laplacian is all 2s.
            assert_eq!(pa.diagonal(), vec![2.0, 2.0]);
            // col_map_offd is sorted global ids not owned locally.
            let r = rank.rank() as u64;
            for &g in &pa.col_map_offd {
                assert!(!(2 * r..2 * r + 2).contains(&g));
            }
        });
    }

    #[test]
    fn spmv_matches_serial_any_rank_count() {
        let n = 17;
        let a = laplacian(n);
        let x_serial: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y_expected = a.spmv(&x_serial);
        for p in [1, 2, 3, 5] {
            let a_ref = a.clone();
            let x_ref = x_serial.clone();
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(n as u64, rank.size());
                let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a_ref);
                let x = ParVector::from_fn(rank, dist, |g| x_ref[g as usize]);
                pa.spmv(rank, &x).to_serial(rank)
            });
            for y in out {
                for (a, b) in y.iter().zip(&y_expected) {
                    assert!((a - b).abs() < 1e-12, "p={p}");
                }
            }
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        Comm::run(2, |rank| {
            let n = 8;
            let a = laplacian(n);
            let dist = RowDist::block(n as u64, 2);
            let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
            let x = ParVector::from_fn(rank, dist.clone(), |_| 1.0);
            let b = pa.spmv(rank, &x);
            let r = pa.residual(rank, &b, &x);
            assert!(r.norm2(rank) < 1e-14);
        });
    }

    #[test]
    fn comm_pkg_sends_match_recvs() {
        let n = 12;
        let a = laplacian(n);
        let totals = Comm::run(4, move |rank| {
            let dist = RowDist::block(n as u64, 4);
            let pa = ParCsr::from_serial(rank, dist.clone(), dist, &a);
            let pkg = pa.comm_pkg();
            // recvs align exactly with col_map_offd.
            assert_eq!(pkg.n_recv(), pa.col_map_offd.len());
            (pkg.n_send() as u64, pkg.n_recv() as u64)
        });
        let sent: u64 = totals.iter().map(|t| t.0).sum();
        let recvd: u64 = totals.iter().map(|t| t.1).sum();
        assert_eq!(sent, recvd);
        assert!(sent > 0);
    }

    #[test]
    fn rectangular_matrix_spmv() {
        // 4×2 "interpolation" matrix: rows distributed over 2 ranks,
        // columns over 2 ranks (1 each).
        Comm::run(2, |rank| {
            let row_dist = RowDist::block(4, 2);
            let col_dist = RowDist::block(2, 2);
            let p_serial = Csr::from_dense(&[
                vec![1.0, 0.0],
                vec![0.5, 0.5],
                vec![0.0, 1.0],
                vec![0.25, 0.75],
            ]);
            let p = ParCsr::from_serial(rank, row_dist, col_dist.clone(), &p_serial);
            let xc = ParVector::from_fn(rank, col_dist, |g| (g + 1) as f64);
            let y = p.spmv(rank, &xc).to_serial(rank);
            assert_eq!(y, vec![1.0, 1.5, 2.0, 1.75]);
        });
    }

    #[test]
    fn spmv_traffic_is_recorded() {
        let (_, traces) = Comm::run_traced(2, |rank| {
            let n = 10;
            let a = laplacian(n);
            let dist = RowDist::block(n as u64, 2);
            let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
            let x = ParVector::from_fn(rank, dist, |_| 1.0);
            rank.with_phase("spmv", || pa.spmv(rank, &x));
        });
        for t in &traces {
            let spmv = t.phase("spmv");
            assert!(spmv.msgs >= 1, "halo message expected");
            assert!(spmv.kernel_launches >= 2);
            assert_eq!(spmv.msg_bytes, 8); // one boundary f64 each way
        }
    }
}
