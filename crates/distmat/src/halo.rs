//! Generic halo exchange over an arbitrary external column map.
//!
//! [`crate::ParCsr::halo_exchange`] is specialized to a matrix's own
//! column map; AMG setup (PMIS states/weights, coarse numberings) needs
//! the same pattern for other per-point values, over possibly different
//! column sets. `Halo` packages a column map + comm package for repeated
//! exchanges of `f64` or `u64` values.

use parcomm::{Rank, Tag, TagClass};
use resilience::faults::{self, FaultKind};
use resilience::SolveError;

use crate::dist::RowDist;
use crate::parcsr::{build_comm_pkg, CommPkg};

/// A reusable halo-exchange pattern for one external column map.
#[derive(Clone, Debug)]
pub struct Halo {
    col_map: Vec<u64>,
    pkg: CommPkg,
    /// Dedicated tag (per-object "communicator").
    tag: Tag,
}

impl Halo {
    /// Build for a sorted, deduplicated list of external global ids, none
    /// of which may be owned by this rank. Collective.
    pub fn new(rank: &Rank, dist: &RowDist, col_map: Vec<u64>) -> Self {
        debug_assert!(col_map.windows(2).all(|w| w[0] < w[1]), "col_map unsorted");
        let pkg = build_comm_pkg(rank, dist, &col_map);
        Halo {
            col_map,
            pkg,
            tag: rank.alloc_tag_for(TagClass::Halo),
        }
    }

    /// The external global ids, in exchange order.
    pub fn col_map(&self) -> &[u64] {
        &self.col_map
    }

    /// Number of external values.
    pub fn len(&self) -> usize {
        self.col_map.len()
    }

    /// True if there is nothing to exchange on this rank (other ranks may
    /// still request our values, so the exchange itself is collective).
    pub fn is_empty(&self) -> bool {
        self.col_map.is_empty()
    }

    /// Exchange `f64` values: returns the external values aligned with
    /// `col_map`. Collective among neighbours.
    ///
    /// # Panics
    ///
    /// Panics on a corrupted exchange; see [`Halo::try_exchange_f64`]
    /// for the fallible variant.
    pub fn exchange_f64(&self, rank: &Rank, local: &[f64]) -> Vec<f64> {
        self.try_exchange_f64(rank, local).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Halo::exchange_f64`] with decode failures (timeout, payload
    /// type, payload length) surfaced as a typed [`SolveError`]. Hosts
    /// the `halo-nan` and `socket-drop` fault-injection hooks.
    pub fn try_exchange_f64(
        &self,
        rank: &Rank,
        local: &[f64],
    ) -> Result<Vec<f64>, SolveError> {
        // socket-drop fires before any send (see `FaultKind::SocketDrop`).
        if faults::fire(FaultKind::SocketDrop, || rank.phase_name()) {
            return Err(SolveError::Comm {
                detail: format!("injected socket drop in {}", rank.phase_name()),
            });
        }
        let mut ext = vec![0.0; self.col_map.len()];
        for (dst, ids) in &self.pkg.sends {
            let buf: Vec<f64> = ids.iter().map(|&i| local[i]).collect();
            rank.send(*dst, self.tag, buf);
        }
        for (src, range) in &self.pkg.recvs {
            let buf: Vec<f64> = rank.try_recv(*src, self.tag)?;
            if buf.len() != range.len() {
                return Err(SolveError::HaloCorruption {
                    context: rank.phase_name(),
                    src: *src,
                    detail: format!("expected {} values, got {}", range.len(), buf.len()),
                });
            }
            ext[range.clone()].copy_from_slice(&buf);
        }
        if !ext.is_empty() && faults::fire(FaultKind::HaloNan, || rank.phase_name()) {
            ext[0] = f64::NAN;
        }
        Ok(ext)
    }

    /// Exchange `u64` values (states, coarse numberings). Collective.
    ///
    /// # Panics
    ///
    /// Panics on a corrupted exchange; see [`Halo::try_exchange_u64`].
    pub fn exchange_u64(&self, rank: &Rank, local: &[u64]) -> Vec<u64> {
        self.try_exchange_u64(rank, local).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Halo::exchange_u64`] with decode failures surfaced as a typed
    /// [`SolveError`].
    pub fn try_exchange_u64(
        &self,
        rank: &Rank,
        local: &[u64],
    ) -> Result<Vec<u64>, SolveError> {
        if faults::fire(FaultKind::SocketDrop, || rank.phase_name()) {
            return Err(SolveError::Comm {
                detail: format!("injected socket drop in {}", rank.phase_name()),
            });
        }
        let mut ext = vec![0u64; self.col_map.len()];
        for (dst, ids) in &self.pkg.sends {
            let buf: Vec<u64> = ids.iter().map(|&i| local[i]).collect();
            rank.send(*dst, self.tag, buf);
        }
        for (src, range) in &self.pkg.recvs {
            let buf: Vec<u64> = rank.try_recv(*src, self.tag)?;
            if buf.len() != range.len() {
                return Err(SolveError::HaloCorruption {
                    context: rank.phase_name(),
                    src: *src,
                    detail: format!("expected {} values, got {}", range.len(), buf.len()),
                });
            }
            ext[range.clone()].copy_from_slice(&buf);
        }
        Ok(ext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;

    #[test]
    fn exchange_pulls_owned_values() {
        // 3 ranks × 2 rows each; every rank asks for the first row of the
        // next rank.
        Comm::run(3, |rank| {
            let dist = RowDist::block(6, 3);
            let next = (rank.rank() + 1) % 3;
            let want = vec![dist.start(next)];
            let halo = Halo::new(rank, &dist, want);
            let local: Vec<f64> = (0..2)
                .map(|l| (dist.start(rank.rank()) + l) as f64 * 10.0)
                .collect();
            let ext = halo.exchange_f64(rank, &local);
            assert_eq!(ext, vec![dist.start(next) as f64 * 10.0]);

            let local_u: Vec<u64> = local.iter().map(|&v| v as u64).collect();
            let ext_u = halo.exchange_u64(rank, &local_u);
            assert_eq!(ext_u, vec![dist.start(next) * 10]);
        });
    }

    #[test]
    fn empty_halo_is_fine() {
        Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let halo = Halo::new(rank, &dist, vec![]);
            assert!(halo.is_empty());
            let ext = halo.exchange_f64(rank, &[1.0, 2.0]);
            assert!(ext.is_empty());
        });
    }

    #[test]
    fn asymmetric_requests() {
        // Only rank 0 requests; rank 1 requests nothing.
        Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let want = if rank.rank() == 0 { vec![2u64, 3] } else { vec![] };
            let halo = Halo::new(rank, &dist, want);
            let local: Vec<f64> = (0..2)
                .map(|l| (dist.start(rank.rank()) + l) as f64)
                .collect();
            let ext = halo.exchange_f64(rank, &local);
            if rank.rank() == 0 {
                assert_eq!(ext, vec![2.0, 3.0]);
            } else {
                assert!(ext.is_empty());
            }
        });
    }
}
