//! Distributed matrix operations: transpose, SpGEMM, and the Galerkin
//! triple product (hypre's distributed sparse M-M machinery of [28]).

use std::collections::HashMap;

use parcomm::{KernelKind, Rank};
use sparse_kit::cost;
use sparse_kit::spgemm::spgemm_flops;
use sparse_kit::Coo;
use telemetry::perfmodel;

use crate::dist::RowDist;
use crate::ij::{CooBuffers, IjMatrix};
use crate::parcsr::ParCsr;

/// Aᵀ distributed: every local entry is routed to the owner of its global
/// column via the Algorithm-1 assembly. Collective.
pub fn par_transpose(rank: &Rank, a: &ParCsr) -> ParCsr {
    let mut ij = IjMatrix::new(rank, a.col_dist().clone(), a.row_dist().clone());
    let row_start = a.row_dist().start(a.rank_id());
    for li in 0..a.local_rows() {
        let gi = row_start + li as u64;
        let (cols, vals) = a.diag.row(li);
        for (&c, &v) in cols.iter().zip(vals) {
            ij.add_value(a.global_diag_col(c), gi, v);
        }
        let (cols, vals) = a.offd.row(li);
        for (&c, &v) in cols.iter().zip(vals) {
            ij.add_value(a.global_offd_col(c), gi, v);
        }
    }
    let (b, f) = cost::transpose(&a.diag);
    rank.kernel(KernelKind::Sort, b, f);
    ij.assemble(rank)
}

/// Rows of `b` fetched from other ranks, keyed by global row id. Each row
/// is `(global col ids, values)`.
pub type ExtRows = HashMap<u64, (Vec<u64>, Vec<f64>)>;

/// Per-peer (row-entry counts, flattened values) payload of a
/// values-only external-row exchange ([`fetch_external_vals`]).
type ValsPayload = (Vec<u64>, Vec<f64>);

/// Fetch the rows of `b` whose global ids appear in `needed` (all owned by
/// other ranks). Two sparse exchanges: requests out, rows back. Collective.
pub fn fetch_external_rows(rank: &Rank, b: &ParCsr, needed: &[u64]) -> ExtRows {
    let me = rank.rank();
    let dist = b.row_dist().clone();
    // Group requests by owner (needed is sorted: col_map_offd order).
    let mut requests: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut i = 0;
    while i < needed.len() {
        let owner = dist.owner(needed[i]);
        assert_ne!(owner, me, "external row owned locally");
        let begin = i;
        while i < needed.len() && dist.owner(needed[i]) == owner {
            i += 1;
        }
        requests.push((owner, needed[begin..i].to_vec()));
    }
    let incoming = rank.sparse_exchange(requests);

    // Serve each request: flatten the rows as (counts, cols, vals).
    let responses: Vec<(usize, CooBuffers)> = incoming
        .into_iter()
        .map(|(src, gids)| {
            let mut counts = Vec::with_capacity(gids.len());
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for gid in gids {
                let li = dist.to_local(me, gid);
                let (dc, dv) = b.diag.row(li);
                let (oc, ov) = b.offd.row(li);
                counts.push((dc.len() + oc.len()) as u64);
                for (&c, &v) in dc.iter().zip(dv) {
                    cols.push(b.global_diag_col(c));
                    vals.push(v);
                }
                for (&c, &v) in oc.iter().zip(ov) {
                    cols.push(b.global_offd_col(c));
                    vals.push(v);
                }
            }
            (src, (counts, cols, vals))
        })
        .collect();
    let rows_back = rank.sparse_exchange(responses);

    // Reassemble into a map keyed by global row id. Requests were grouped
    // by owner in `needed` order, and each owner answered in that order.
    let mut by_src: HashMap<usize, CooBuffers> = HashMap::new();
    for (src, payload) in rows_back {
        by_src.insert(src, payload);
    }
    let mut out = ExtRows::new();
    let mut cursor: HashMap<usize, (usize, usize)> = HashMap::new(); // src -> (row idx, col offset)
    for &gid in needed {
        let owner = dist.owner(gid);
        let (counts, cols, vals) = by_src
            .get(&owner)
            .unwrap_or_else(|| panic!("missing response from rank {owner}"));
        let entry = cursor.entry(owner).or_insert((0, 0));
        let n = counts[entry.0] as usize;
        let range = entry.1..entry.1 + n;
        out.insert(gid, (cols[range.clone()].to_vec(), vals[range].to_vec()));
        entry.0 += 1;
        entry.1 += n;
    }
    out
}

/// C = A·B distributed, with `a.col_dist() == b.row_dist()`. Gathers the
/// external rows of B referenced by A's offd block, multiplies locally
/// with hash accumulation over global column ids, and reassembles.
/// Collective.
///
/// # Panics
///
/// Panics on distribution mismatch.
pub fn par_spgemm(rank: &Rank, a: &ParCsr, b: &ParCsr) -> ParCsr {
    assert_eq!(
        a.col_dist(),
        b.row_dist(),
        "A columns must be distributed like B rows"
    );
    let ext = fetch_external_rows(rank, b, &a.col_map_offd);
    let me = rank.rank();
    let b_col_start = b.col_dist().start(me);

    let mut coo = Coo::new();
    let row_start = a.row_dist().start(me);
    // Expansion (products computed) is known from the inputs; nnz(C) only
    // after the multiply, so the model is finalized post-loop.
    // `spgemm_flops` counts 2 flops per product — halve it back to the
    // product count the models take.
    let expansion = spgemm_flops(&a.diag, &b.diag) / 2;
    let mut kguard = telemetry::kernel(
        "spgemm",
        perfmodel::spgemm(a.local_rows(), a.local_nnz(), expansion, 0),
    );
    let mut acc: HashMap<u64, f64> = HashMap::new();
    for li in 0..a.local_rows() {
        acc.clear();
        let (dc, dv) = a.diag.row(li);
        for (&k, &av) in dc.iter().zip(dv) {
            // Local row k of B.
            let (bc, bv) = b.diag.row(k);
            for (&j, &bvv) in bc.iter().zip(bv) {
                *acc.entry(b_col_start + j as u64).or_insert(0.0) += av * bvv;
            }
            let (bc, bv) = b.offd.row(k);
            for (&j, &bvv) in bc.iter().zip(bv) {
                *acc.entry(b.global_offd_col(j)).or_insert(0.0) += av * bvv;
            }
        }
        let (oc, ov) = a.offd.row(li);
        for (&k, &av) in oc.iter().zip(ov) {
            let gk = a.global_offd_col(k);
            let (cols, vals) = &ext[&gk];
            for (&gj, &bvv) in cols.iter().zip(vals) {
                *acc.entry(gj).or_insert(0.0) += av * bvv;
            }
        }
        let gi = row_start + li as u64;
        let mut entries: Vec<(u64, f64)> = acc.iter().map(|(&j, &v)| (j, v)).collect();
        entries.sort_unstable_by_key(|&(j, _)| j);
        for (j, v) in entries {
            coo.push(gi, j, v);
        }
    }
    kguard.set_model(perfmodel::spgemm(
        a.local_rows(),
        a.local_nnz(),
        expansion,
        coo.len(),
    ));
    drop(kguard);
    let (bytes, flops) = (
        (coo.len() as u64) * 16,
        2 * (expansion + coo.len() as u64),
    );
    rank.kernel(KernelKind::SpGemm, bytes, flops);
    ParCsr::from_global_coo(rank, a.row_dist().clone(), b.col_dist().clone(), &coo)
}

/// Galerkin coarse operator A_c = Pᵀ·A·P, distributed. Collective.
pub fn par_rap(rank: &Rank, a: &ParCsr, p: &ParCsr) -> ParCsr {
    let ap = par_spgemm(rank, a, p);
    let pt = par_transpose(rank, p);
    par_spgemm(rank, &pt, &ap)
}

/// Fetch only the **values** of external rows of `b`, in exactly the
/// per-row order [`fetch_external_rows`] returns them (diag entries in
/// CSR order, then offd). Used by numeric-only SpGEMM replay, where the
/// column structure is already baked into the plan. Collective.
pub fn fetch_external_vals(rank: &Rank, b: &ParCsr, needed: &[u64]) -> HashMap<u64, Vec<f64>> {
    let me = rank.rank();
    let dist = b.row_dist().clone();
    let mut requests: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut i = 0;
    while i < needed.len() {
        let owner = dist.owner(needed[i]);
        assert_ne!(owner, me, "external row owned locally");
        let begin = i;
        while i < needed.len() && dist.owner(needed[i]) == owner {
            i += 1;
        }
        requests.push((owner, needed[begin..i].to_vec()));
    }
    let incoming = rank.sparse_exchange(requests);

    let responses: Vec<(usize, ValsPayload)> = incoming
        .into_iter()
        .map(|(src, gids)| {
            let mut counts = Vec::with_capacity(gids.len());
            let mut vals = Vec::new();
            for gid in gids {
                let li = dist.to_local(me, gid);
                let (dc, dv) = b.diag.row(li);
                let (oc, ov) = b.offd.row(li);
                counts.push((dc.len() + oc.len()) as u64);
                vals.extend_from_slice(dv);
                vals.extend_from_slice(ov);
            }
            (src, (counts, vals))
        })
        .collect();
    let rows_back = rank.sparse_exchange(responses);

    let mut by_src: HashMap<usize, (Vec<u64>, Vec<f64>)> = HashMap::new();
    for (src, payload) in rows_back {
        by_src.insert(src, payload);
    }
    let mut out: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut cursor: HashMap<usize, (usize, usize)> = HashMap::new();
    for &gid in needed {
        let owner = dist.owner(gid);
        let (counts, vals) = by_src
            .get(&owner)
            .unwrap_or_else(|| panic!("missing response from rank {owner}"));
        let entry = cursor.entry(owner).or_insert((0, 0));
        let n = counts[entry.0] as usize;
        out.insert(gid, vals[entry.1..entry.1 + n].to_vec());
        entry.0 += 1;
        entry.1 += n;
    }
    out
}

/// Structural fingerprint of a [`ParCsr`]: everything that determines a
/// SpGEMM output's sparsity and the expansion order, without the values.
#[derive(Clone, Debug, PartialEq)]
pub struct MatPattern {
    diag_indptr: Vec<usize>,
    diag_indices: Vec<usize>,
    offd_indptr: Vec<usize>,
    offd_indices: Vec<usize>,
    col_map_offd: Vec<u64>,
}

impl MatPattern {
    /// Capture the pattern of `a`.
    pub fn of(a: &ParCsr) -> Self {
        MatPattern {
            diag_indptr: a.diag.indptr().to_vec(),
            diag_indices: a.diag.indices().to_vec(),
            offd_indptr: a.offd.indptr().to_vec(),
            offd_indices: a.offd.indices().to_vec(),
            col_map_offd: a.col_map_offd.clone(),
        }
    }

    /// Does `a` still have exactly this structure?
    pub fn matches(&self, a: &ParCsr) -> bool {
        self.diag_indptr == a.diag.indptr()
            && self.diag_indices == a.diag.indices()
            && self.offd_indptr == a.offd.indptr()
            && self.offd_indices == a.offd.indices()
            && self.col_map_offd == a.col_map_offd
    }
}

/// A recorded symbolic pass of [`par_spgemm`]: the output structure plus
/// one destination slot per expansion product, so later triple products
/// with unchanged structure (every Picard re-solve) replay the numeric
/// pass alone — no hash probing, no per-row sort, no COO assembly, no
/// structural reassembly, and only values on the wire for external rows.
///
/// Bitwise contract: [`par_spgemm`] accumulates each output entry with
/// `*acc.entry(j).or_insert(0.0) += a·b` — the first contribution is
/// added to +0.0 — and replay seeds every slot with +0.0 and adds the
/// products in the identical expansion order, so the float sums are
/// reproduced bit for bit (`tests` prove it on -0.0 hazards too).
#[derive(Clone, Debug)]
pub struct ParSpgemmPlan {
    a_pat: MatPattern,
    b_pat: MatPattern,
    /// Structure of C; values are rewritten by every [`Self::execute`].
    template: ParCsr,
    /// One destination per expansion product, in expansion order:
    /// `(flat value index << 1) | is_offd`.
    slots: Vec<u64>,
    /// Products per replay (the flop/traffic driver).
    expansion: u64,
}

impl ParSpgemmPlan {
    /// Do `a` and `b` still match the recorded patterns **on every
    /// rank**? Collective — all ranks must agree before branching
    /// between replay and a fresh multiply, or the sparse exchanges
    /// deadlock.
    pub fn matches(&self, rank: &Rank, a: &ParCsr, b: &ParCsr) -> bool {
        let ok = self.a_pat.matches(a) && self.b_pat.matches(b);
        rank.allreduce_sum(ok as u64) == rank.size() as u64
    }

    /// Expansion products per replay.
    pub fn expansion(&self) -> u64 {
        self.expansion
    }

    /// Numeric-only replay: C = A·B with A, B holding new values in the
    /// recorded structure. Collective.
    pub fn execute(&self, rank: &Rank, a: &ParCsr, b: &ParCsr) -> ParCsr {
        let ext_vals = fetch_external_vals(rank, b, &a.col_map_offd);
        let c_nnz = self.template.local_nnz();
        let _k = telemetry::kernel(
            "spgemm_numeric",
            perfmodel::spgemm_numeric(a.local_rows(), a.local_nnz(), self.expansion, c_nnz),
        );
        // +0.0 seeds: the fresh path's first contribution per entry is
        // `0.0 + a·b` (see the type-level docs), and replay must repeat
        // that exact operation sequence.
        let mut diag_vals = vec![0.0f64; self.template.diag.nnz()];
        let mut offd_vals = vec![0.0f64; self.template.offd.nnz()];
        let mut scatter = |slot: u64, prod: f64| {
            let idx = (slot >> 1) as usize;
            if slot & 1 == 1 {
                offd_vals[idx] += prod;
            } else {
                diag_vals[idx] += prod;
            }
        };
        let mut cursor = 0usize;
        for li in 0..a.local_rows() {
            let (dc, dv) = a.diag.row(li);
            for (&k, &av) in dc.iter().zip(dv) {
                let (_, bv) = b.diag.row(k);
                for &bvv in bv {
                    scatter(self.slots[cursor], av * bvv);
                    cursor += 1;
                }
                let (_, bv) = b.offd.row(k);
                for &bvv in bv {
                    scatter(self.slots[cursor], av * bvv);
                    cursor += 1;
                }
            }
            let (oc, ov) = a.offd.row(li);
            for (&k, &av) in oc.iter().zip(ov) {
                let gk = a.global_offd_col(k);
                for &bvv in &ext_vals[&gk] {
                    scatter(self.slots[cursor], av * bvv);
                    cursor += 1;
                }
            }
        }
        debug_assert_eq!(cursor, self.slots.len(), "plan is stale for these inputs");
        let mut c = self.template.clone();
        c.diag.vals_mut().copy_from_slice(&diag_vals);
        c.offd.vals_mut().copy_from_slice(&offd_vals);
        c.refresh_diag_sell();
        let (bytes, flops) = (
            (c_nnz as u64) * 16,
            2 * (self.expansion + c_nnz as u64),
        );
        rank.kernel(KernelKind::SpGemm, bytes, flops);
        c
    }
}

/// [`par_spgemm`] plus a recorded plan for numeric-only replays: the
/// fresh multiply runs unchanged, then the expansion is walked once more
/// symbolically to bind every product to its slot in C. Collective.
pub fn par_spgemm_planned(rank: &Rank, a: &ParCsr, b: &ParCsr) -> (ParSpgemmPlan, ParCsr) {
    let c = par_spgemm(rank, a, b);
    let ext = fetch_external_rows(rank, b, &a.col_map_offd);
    let me = rank.rank();
    let b_col_start = b.col_dist().start(me);
    let c_col_start = c.col_dist().start(me);
    let c_col_end = c.col_dist().end(me);

    // (local row, global col) → encoded slot, via binary search in the
    // output structure.
    let slot_of = |li: usize, gj: u64| -> u64 {
        if (c_col_start..c_col_end).contains(&gj) {
            let j = (gj - c_col_start) as usize;
            let (lo, hi) = (c.diag.indptr()[li], c.diag.indptr()[li + 1]);
            let pos = c.diag.indices()[lo..hi]
                .binary_search(&j)
                .unwrap_or_else(|_| panic!("diag slot ({li}, {gj}) missing from product"));
            ((lo + pos) as u64) << 1
        } else {
            let cj = c
                .col_map_offd
                .binary_search(&gj)
                .unwrap_or_else(|_| panic!("offd col {gj} missing from product"));
            let (lo, hi) = (c.offd.indptr()[li], c.offd.indptr()[li + 1]);
            let pos = c.offd.indices()[lo..hi]
                .binary_search(&cj)
                .unwrap_or_else(|_| panic!("offd slot ({li}, {gj}) missing from product"));
            (((lo + pos) as u64) << 1) | 1
        }
    };

    let mut slots = Vec::new();
    for li in 0..a.local_rows() {
        let (dc, _) = a.diag.row(li);
        for &k in dc {
            let (bc, _) = b.diag.row(k);
            for &j in bc {
                slots.push(slot_of(li, b_col_start + j as u64));
            }
            let (bc, _) = b.offd.row(k);
            for &j in bc {
                slots.push(slot_of(li, b.global_offd_col(j)));
            }
        }
        let (oc, _) = a.offd.row(li);
        for &k in oc {
            let gk = a.global_offd_col(k);
            for &gj in &ext[&gk].0 {
                slots.push(slot_of(li, gj));
            }
        }
    }
    let expansion = slots.len() as u64;
    let plan = ParSpgemmPlan {
        a_pat: MatPattern::of(a),
        b_pat: MatPattern::of(b),
        template: c.clone(),
        slots,
        expansion,
    };
    (plan, c)
}

/// Per-rank nonzero counts of a distributed matrix (for the Fig. 5/10
/// balance plots). Collective; every rank receives the full vector.
pub fn nnz_per_rank(rank: &Rank, a: &ParCsr) -> Vec<u64> {
    rank.allgather(a.local_nnz() as u64)
}

/// Build a distribution that assigns contiguous blocks matching an
/// arbitrary partition vector: vertices are renumbered so each part's
/// vertices are contiguous. Returns (dist, old→new permutation).
pub fn dist_from_partition(part: &[usize], nparts: usize) -> (RowDist, Vec<u64>) {
    let mut counts = vec![0u64; nparts];
    for &p in part {
        counts[p] += 1;
    }
    let mut starts = vec![0u64; nparts + 1];
    for p in 0..nparts {
        starts[p + 1] = starts[p] + counts[p];
    }
    let dist = RowDist::from_starts(starts.clone());
    let mut next = starts;
    let mut perm = vec![0u64; part.len()];
    for (v, &p) in part.iter().enumerate() {
        perm[v] = next[p];
        next[p] += 1;
    }
    (dist, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::ParVector;
    use parcomm::Comm;
    use sparse_kit::rap::galerkin;
    use sparse_kit::Csr;

    fn laplacian(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    /// Piecewise-constant interpolation n -> n/2.
    fn half_interp(n: usize) -> Csr {
        let nc = n / 2;
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, (i / 2).min(nc as u64 - 1), 1.0);
        }
        Csr::from_coo(n, nc, &coo)
    }

    #[test]
    fn transpose_matches_serial() {
        let n = 10;
        let p_serial = half_interp(n);
        for nranks in [1, 2, 3] {
            let p_ref = p_serial.clone();
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_transpose(rank, &p).to_serial(rank)
            });
            for t in out {
                assert_eq!(t.to_dense(), p_serial.transpose().to_dense());
            }
        }
    }

    #[test]
    fn spgemm_matches_serial() {
        let n = 12;
        let a_serial = laplacian(n);
        let p_serial = half_interp(n);
        for nranks in [1, 2, 4] {
            let (a_ref, p_ref) = (a_serial.clone(), p_serial.clone());
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_ref);
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_spgemm(rank, &a, &p).to_serial(rank)
            });
            let expected = sparse_kit::spgemm::spgemm_hash(&a_serial, &p_serial);
            for c in out {
                let (cd, ed) = (c.to_dense(), expected.to_dense());
                for (rc, re) in cd.iter().zip(&ed) {
                    for (x, y) in rc.iter().zip(re) {
                        assert!((x - y).abs() < 1e-12, "nranks={nranks}");
                    }
                }
            }
        }
    }

    #[test]
    fn rap_matches_serial_galerkin() {
        let n = 16;
        let a_serial = laplacian(n);
        let p_serial = half_interp(n);
        for nranks in [1, 2, 4] {
            let (a_ref, p_ref) = (a_serial.clone(), p_serial.clone());
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_ref);
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_rap(rank, &a, &p).to_serial(rank)
            });
            let expected = galerkin(&a_serial, &p_serial);
            for c in out {
                let (cd, ed) = (c.to_dense(), expected.to_dense());
                for (rc, re) in cd.iter().zip(&ed) {
                    for (x, y) in rc.iter().zip(re) {
                        assert!((x - y).abs() < 1e-12, "nranks={nranks}");
                    }
                }
            }
        }
    }

    #[test]
    fn rap_spmv_consistency() {
        // (PᵀAP)·x == Pᵀ(A(P·x)) distributed.
        Comm::run(3, |rank| {
            let n = 18u64;
            let a_serial = laplacian(n as usize);
            let p_serial = half_interp(n as usize);
            let rd = RowDist::block(n, 3);
            let cd = RowDist::block(n / 2, 3);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            let p = ParCsr::from_serial(rank, rd.clone(), cd.clone(), &p_serial);
            let ac = par_rap(rank, &a, &p);
            let pt = par_transpose(rank, &p);

            let xc = ParVector::from_fn(rank, cd, |g| (g as f64 * 0.7).cos());
            let lhs = ac.spmv(rank, &xc).to_serial(rank);
            let px = p.spmv(rank, &xc);
            let apx = a.spmv(rank, &px);
            let rhs = pt.spmv(rank, &apx).to_serial(rank);
            for (x, y) in lhs.iter().zip(&rhs) {
                assert!((x - y).abs() < 1e-10);
            }
        });
    }

    /// Bit pattern of a float vector (bitwise comparisons below).
    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn spgemm_plan_replay_is_bitwise_identical_to_fresh() {
        let n = 16;
        for nranks in [1, 2, 3] {
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &laplacian(n));
                let p = ParCsr::from_serial(rank, rd.clone(), cd.clone(), &half_interp(n));
                let (plan, c0) = par_spgemm_planned(rank, &a, &p);
                assert!(plan.matches(rank, &a, &p));
                // Same values: replay must equal the fresh product bit
                // for bit.
                let c1 = plan.execute(rank, &a, &p);
                assert_eq!(bits(c0.diag.vals()), bits(c1.diag.vals()));
                assert_eq!(bits(c0.offd.vals()), bits(c1.offd.vals()));
                // Value-only drift (structure untouched): replay must
                // match a from-scratch multiply bitwise.
                let mut a2 = a.clone();
                a2.scale(1.0 / 3.0);
                let c2 = plan.execute(rank, &a2, &p);
                let c2_fresh = par_spgemm(rank, &a2, &p);
                assert_eq!(bits(c2.diag.vals()), bits(c2_fresh.diag.vals()));
                assert_eq!(bits(c2.offd.vals()), bits(c2_fresh.offd.vals()));
                c2.to_serial(rank)
            });
            for c in out {
                assert_eq!(c.nnz(), sparse_kit::spgemm::spgemm_hash(&laplacian(n), &half_interp(n)).nnz());
            }
        }
    }

    #[test]
    fn spgemm_plan_detects_structure_change_collectively() {
        Comm::run(2, |rank| {
            let n = 12;
            let rd = RowDist::block(n as u64, 2);
            let cd = RowDist::block((n / 2) as u64, 2);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &laplacian(n));
            let p = ParCsr::from_serial(rank, rd.clone(), cd.clone(), &half_interp(n));
            let (plan, _) = par_spgemm_planned(rank, &a, &p);
            // A different-structure A (dense band of width 2) must be
            // rejected on every rank.
            let mut coo = Coo::new();
            for i in 0..n as u64 {
                coo.push(i, i, 1.0);
                if i + 2 < n as u64 {
                    coo.push(i, i + 2, 0.5);
                }
            }
            let wide = Csr::from_coo(n, n, &coo);
            let a2 = ParCsr::from_serial(rank, rd.clone(), rd, &wide);
            assert!(!plan.matches(rank, &a2, &p));
        });
    }

    #[test]
    fn cost_and_perfmodel_spgemm_agree() {
        // Satellite check: the sparse-kit cost estimator and the
        // telemetry perfmodel price SpGEMM identically, on both the
        // fresh path and the numeric-replay path.
        let a = laplacian(20);
        let b = half_interp(20);
        let c = sparse_kit::spgemm::spgemm_hash(&a, &b);
        let expansion = spgemm_flops(&a, &b) / 2;
        let (cost_bytes, cost_flops) = cost::spgemm(&a, &b, &c);
        let model = perfmodel::spgemm(a.nrows(), a.nnz(), expansion, c.nnz());
        assert_eq!(cost_bytes, model.bytes);
        assert_eq!(cost_flops, model.flops);
        let (nb, nf) = cost::spgemm_numeric(a.nnz(), expansion, c.nnz());
        let nmodel = perfmodel::spgemm_numeric(a.nrows(), a.nnz(), expansion, c.nnz());
        assert_eq!(nb, nmodel.bytes);
        assert_eq!(nf, nmodel.flops);
        assert!(nmodel.bytes < model.bytes, "replay must be cheaper");
    }

    #[test]
    fn cost_and_perfmodel_sellcs_spmv_agree() {
        let a = laplacian(64);
        let m = sparse_kit::SellCs::from_csr(&a, 16);
        let (cb, cf) = cost::sellcs_spmv(&m);
        let model = perfmodel::sellcs_spmv(m.nrows(), m.n_chunks(), m.stored(), m.nnz());
        assert_eq!(cb, model.bytes);
        assert_eq!(cf, model.flops);
    }

    #[test]
    fn fetch_external_rows_returns_exact_rows() {
        Comm::run(2, |rank| {
            let n = 6;
            let a_serial = laplacian(n);
            let rd = RowDist::block(n as u64, 2);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            // Rank 0 asks for row 3 (owned by rank 1) and vice versa.
            let want = if rank.rank() == 0 { vec![3u64] } else { vec![0u64] };
            let ext = fetch_external_rows(rank, &a, &want);
            let (cols, vals) = &ext[&want[0]];
            // Rows arrive diag-cols-then-offd-cols; compare sorted pairs.
            let mut pairs: Vec<(u64, f64)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            pairs.sort_by_key(|&(c, _)| c);
            if rank.rank() == 0 {
                assert_eq!(pairs, vec![(2, -1.0), (3, 2.0), (4, -1.0)]);
            } else {
                assert_eq!(pairs, vec![(0, 2.0), (1, -1.0)]);
            }
        });
    }

    #[test]
    fn nnz_per_rank_gathers() {
        let out = Comm::run(3, |rank| {
            let n = 9;
            let a_serial = laplacian(n);
            let rd = RowDist::block(n as u64, 3);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            nnz_per_rank(rank, &a)
        });
        for v in &out {
            assert_eq!(v.iter().sum::<u64>(), 25); // 9*3 - 2
        }
        assert_eq!(out[0], out[2]);
    }

    #[test]
    fn dist_from_partition_renumbers_contiguously() {
        let part = vec![1, 0, 1, 0, 2];
        let (dist, perm) = dist_from_partition(&part, 3);
        assert_eq!(dist.local_n(0), 2);
        assert_eq!(dist.local_n(1), 2);
        assert_eq!(dist.local_n(2), 1);
        // Old vertices 1, 3 (part 0) become global 0, 1.
        assert_eq!(perm[1], 0);
        assert_eq!(perm[3], 1);
        assert_eq!(perm[0], 2);
        assert_eq!(perm[2], 3);
        assert_eq!(perm[4], 4);
        // Permutation is a bijection.
        let mut sorted = perm.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
