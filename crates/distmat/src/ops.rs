//! Distributed matrix operations: transpose, SpGEMM, and the Galerkin
//! triple product (hypre's distributed sparse M-M machinery of [28]).

use std::collections::HashMap;

use parcomm::{KernelKind, Rank};
use sparse_kit::cost;
use sparse_kit::spgemm::spgemm_flops;
use sparse_kit::Coo;
use telemetry::perfmodel;

use crate::dist::RowDist;
use crate::ij::{CooBuffers, IjMatrix};
use crate::parcsr::ParCsr;

/// Aᵀ distributed: every local entry is routed to the owner of its global
/// column via the Algorithm-1 assembly. Collective.
pub fn par_transpose(rank: &Rank, a: &ParCsr) -> ParCsr {
    let mut ij = IjMatrix::new(rank, a.col_dist().clone(), a.row_dist().clone());
    let row_start = a.row_dist().start(a.rank_id());
    for li in 0..a.local_rows() {
        let gi = row_start + li as u64;
        let (cols, vals) = a.diag.row(li);
        for (&c, &v) in cols.iter().zip(vals) {
            ij.add_value(a.global_diag_col(c), gi, v);
        }
        let (cols, vals) = a.offd.row(li);
        for (&c, &v) in cols.iter().zip(vals) {
            ij.add_value(a.global_offd_col(c), gi, v);
        }
    }
    let (b, f) = cost::transpose(&a.diag);
    rank.kernel(KernelKind::Sort, b, f);
    ij.assemble(rank)
}

/// Rows of `b` fetched from other ranks, keyed by global row id. Each row
/// is `(global col ids, values)`.
pub type ExtRows = HashMap<u64, (Vec<u64>, Vec<f64>)>;

/// Fetch the rows of `b` whose global ids appear in `needed` (all owned by
/// other ranks). Two sparse exchanges: requests out, rows back. Collective.
pub fn fetch_external_rows(rank: &Rank, b: &ParCsr, needed: &[u64]) -> ExtRows {
    let me = rank.rank();
    let dist = b.row_dist().clone();
    // Group requests by owner (needed is sorted: col_map_offd order).
    let mut requests: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut i = 0;
    while i < needed.len() {
        let owner = dist.owner(needed[i]);
        assert_ne!(owner, me, "external row owned locally");
        let begin = i;
        while i < needed.len() && dist.owner(needed[i]) == owner {
            i += 1;
        }
        requests.push((owner, needed[begin..i].to_vec()));
    }
    let incoming = rank.sparse_exchange(requests);

    // Serve each request: flatten the rows as (counts, cols, vals).
    let responses: Vec<(usize, CooBuffers)> = incoming
        .into_iter()
        .map(|(src, gids)| {
            let mut counts = Vec::with_capacity(gids.len());
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for gid in gids {
                let li = dist.to_local(me, gid);
                let (dc, dv) = b.diag.row(li);
                let (oc, ov) = b.offd.row(li);
                counts.push((dc.len() + oc.len()) as u64);
                for (&c, &v) in dc.iter().zip(dv) {
                    cols.push(b.global_diag_col(c));
                    vals.push(v);
                }
                for (&c, &v) in oc.iter().zip(ov) {
                    cols.push(b.global_offd_col(c));
                    vals.push(v);
                }
            }
            (src, (counts, cols, vals))
        })
        .collect();
    let rows_back = rank.sparse_exchange(responses);

    // Reassemble into a map keyed by global row id. Requests were grouped
    // by owner in `needed` order, and each owner answered in that order.
    let mut by_src: HashMap<usize, CooBuffers> = HashMap::new();
    for (src, payload) in rows_back {
        by_src.insert(src, payload);
    }
    let mut out = ExtRows::new();
    let mut cursor: HashMap<usize, (usize, usize)> = HashMap::new(); // src -> (row idx, col offset)
    for &gid in needed {
        let owner = dist.owner(gid);
        let (counts, cols, vals) = by_src
            .get(&owner)
            .unwrap_or_else(|| panic!("missing response from rank {owner}"));
        let entry = cursor.entry(owner).or_insert((0, 0));
        let n = counts[entry.0] as usize;
        let range = entry.1..entry.1 + n;
        out.insert(gid, (cols[range.clone()].to_vec(), vals[range].to_vec()));
        entry.0 += 1;
        entry.1 += n;
    }
    out
}

/// C = A·B distributed, with `a.col_dist() == b.row_dist()`. Gathers the
/// external rows of B referenced by A's offd block, multiplies locally
/// with hash accumulation over global column ids, and reassembles.
/// Collective.
///
/// # Panics
///
/// Panics on distribution mismatch.
pub fn par_spgemm(rank: &Rank, a: &ParCsr, b: &ParCsr) -> ParCsr {
    assert_eq!(
        a.col_dist(),
        b.row_dist(),
        "A columns must be distributed like B rows"
    );
    let ext = fetch_external_rows(rank, b, &a.col_map_offd);
    let me = rank.rank();
    let b_col_start = b.col_dist().start(me);

    let mut coo = Coo::new();
    let row_start = a.row_dist().start(me);
    // Expansion (products computed) is known from the inputs; nnz(C) only
    // after the multiply, so the model is finalized post-loop.
    let expansion = spgemm_flops(&a.diag, &b.diag);
    let mut kguard = telemetry::kernel(
        "spgemm",
        perfmodel::spgemm(a.local_rows(), a.local_nnz(), expansion, 0),
    );
    let mut acc: HashMap<u64, f64> = HashMap::new();
    for li in 0..a.local_rows() {
        acc.clear();
        let (dc, dv) = a.diag.row(li);
        for (&k, &av) in dc.iter().zip(dv) {
            // Local row k of B.
            let (bc, bv) = b.diag.row(k);
            for (&j, &bvv) in bc.iter().zip(bv) {
                *acc.entry(b_col_start + j as u64).or_insert(0.0) += av * bvv;
            }
            let (bc, bv) = b.offd.row(k);
            for (&j, &bvv) in bc.iter().zip(bv) {
                *acc.entry(b.global_offd_col(j)).or_insert(0.0) += av * bvv;
            }
        }
        let (oc, ov) = a.offd.row(li);
        for (&k, &av) in oc.iter().zip(ov) {
            let gk = a.global_offd_col(k);
            let (cols, vals) = &ext[&gk];
            for (&gj, &bvv) in cols.iter().zip(vals) {
                *acc.entry(gj).or_insert(0.0) += av * bvv;
            }
        }
        let gi = row_start + li as u64;
        let mut entries: Vec<(u64, f64)> = acc.iter().map(|(&j, &v)| (j, v)).collect();
        entries.sort_unstable_by_key(|&(j, _)| j);
        for (j, v) in entries {
            coo.push(gi, j, v);
        }
    }
    kguard.set_model(perfmodel::spgemm(
        a.local_rows(),
        a.local_nnz(),
        expansion,
        coo.len(),
    ));
    drop(kguard);
    let (bytes, flops) = (
        (coo.len() as u64) * 16,
        2 * (expansion + coo.len() as u64),
    );
    rank.kernel(KernelKind::SpGemm, bytes, flops);
    ParCsr::from_global_coo(rank, a.row_dist().clone(), b.col_dist().clone(), &coo)
}

/// Galerkin coarse operator A_c = Pᵀ·A·P, distributed. Collective.
pub fn par_rap(rank: &Rank, a: &ParCsr, p: &ParCsr) -> ParCsr {
    let ap = par_spgemm(rank, a, p);
    let pt = par_transpose(rank, p);
    par_spgemm(rank, &pt, &ap)
}

/// Per-rank nonzero counts of a distributed matrix (for the Fig. 5/10
/// balance plots). Collective; every rank receives the full vector.
pub fn nnz_per_rank(rank: &Rank, a: &ParCsr) -> Vec<u64> {
    rank.allgather(a.local_nnz() as u64)
}

/// Build a distribution that assigns contiguous blocks matching an
/// arbitrary partition vector: vertices are renumbered so each part's
/// vertices are contiguous. Returns (dist, old→new permutation).
pub fn dist_from_partition(part: &[usize], nparts: usize) -> (RowDist, Vec<u64>) {
    let mut counts = vec![0u64; nparts];
    for &p in part {
        counts[p] += 1;
    }
    let mut starts = vec![0u64; nparts + 1];
    for p in 0..nparts {
        starts[p + 1] = starts[p] + counts[p];
    }
    let dist = RowDist::from_starts(starts.clone());
    let mut next = starts;
    let mut perm = vec![0u64; part.len()];
    for (v, &p) in part.iter().enumerate() {
        perm[v] = next[p];
        next[p] += 1;
    }
    (dist, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::ParVector;
    use parcomm::Comm;
    use sparse_kit::rap::galerkin;
    use sparse_kit::Csr;

    fn laplacian(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    /// Piecewise-constant interpolation n -> n/2.
    fn half_interp(n: usize) -> Csr {
        let nc = n / 2;
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, (i / 2).min(nc as u64 - 1), 1.0);
        }
        Csr::from_coo(n, nc, &coo)
    }

    #[test]
    fn transpose_matches_serial() {
        let n = 10;
        let p_serial = half_interp(n);
        for nranks in [1, 2, 3] {
            let p_ref = p_serial.clone();
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_transpose(rank, &p).to_serial(rank)
            });
            for t in out {
                assert_eq!(t.to_dense(), p_serial.transpose().to_dense());
            }
        }
    }

    #[test]
    fn spgemm_matches_serial() {
        let n = 12;
        let a_serial = laplacian(n);
        let p_serial = half_interp(n);
        for nranks in [1, 2, 4] {
            let (a_ref, p_ref) = (a_serial.clone(), p_serial.clone());
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_ref);
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_spgemm(rank, &a, &p).to_serial(rank)
            });
            let expected = sparse_kit::spgemm::spgemm_hash(&a_serial, &p_serial);
            for c in out {
                let (cd, ed) = (c.to_dense(), expected.to_dense());
                for (rc, re) in cd.iter().zip(&ed) {
                    for (x, y) in rc.iter().zip(re) {
                        assert!((x - y).abs() < 1e-12, "nranks={nranks}");
                    }
                }
            }
        }
    }

    #[test]
    fn rap_matches_serial_galerkin() {
        let n = 16;
        let a_serial = laplacian(n);
        let p_serial = half_interp(n);
        for nranks in [1, 2, 4] {
            let (a_ref, p_ref) = (a_serial.clone(), p_serial.clone());
            let out = Comm::run(nranks, move |rank| {
                let rd = RowDist::block(n as u64, rank.size());
                let cd = RowDist::block((n / 2) as u64, rank.size());
                let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_ref);
                let p = ParCsr::from_serial(rank, rd, cd, &p_ref);
                par_rap(rank, &a, &p).to_serial(rank)
            });
            let expected = galerkin(&a_serial, &p_serial);
            for c in out {
                let (cd, ed) = (c.to_dense(), expected.to_dense());
                for (rc, re) in cd.iter().zip(&ed) {
                    for (x, y) in rc.iter().zip(re) {
                        assert!((x - y).abs() < 1e-12, "nranks={nranks}");
                    }
                }
            }
        }
    }

    #[test]
    fn rap_spmv_consistency() {
        // (PᵀAP)·x == Pᵀ(A(P·x)) distributed.
        Comm::run(3, |rank| {
            let n = 18u64;
            let a_serial = laplacian(n as usize);
            let p_serial = half_interp(n as usize);
            let rd = RowDist::block(n, 3);
            let cd = RowDist::block(n / 2, 3);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            let p = ParCsr::from_serial(rank, rd.clone(), cd.clone(), &p_serial);
            let ac = par_rap(rank, &a, &p);
            let pt = par_transpose(rank, &p);

            let xc = ParVector::from_fn(rank, cd, |g| (g as f64 * 0.7).cos());
            let lhs = ac.spmv(rank, &xc).to_serial(rank);
            let px = p.spmv(rank, &xc);
            let apx = a.spmv(rank, &px);
            let rhs = pt.spmv(rank, &apx).to_serial(rank);
            for (x, y) in lhs.iter().zip(&rhs) {
                assert!((x - y).abs() < 1e-10);
            }
        });
    }

    #[test]
    fn fetch_external_rows_returns_exact_rows() {
        Comm::run(2, |rank| {
            let n = 6;
            let a_serial = laplacian(n);
            let rd = RowDist::block(n as u64, 2);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            // Rank 0 asks for row 3 (owned by rank 1) and vice versa.
            let want = if rank.rank() == 0 { vec![3u64] } else { vec![0u64] };
            let ext = fetch_external_rows(rank, &a, &want);
            let (cols, vals) = &ext[&want[0]];
            // Rows arrive diag-cols-then-offd-cols; compare sorted pairs.
            let mut pairs: Vec<(u64, f64)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            pairs.sort_by_key(|&(c, _)| c);
            if rank.rank() == 0 {
                assert_eq!(pairs, vec![(2, -1.0), (3, 2.0), (4, -1.0)]);
            } else {
                assert_eq!(pairs, vec![(0, 2.0), (1, -1.0)]);
            }
        });
    }

    #[test]
    fn nnz_per_rank_gathers() {
        let out = Comm::run(3, |rank| {
            let n = 9;
            let a_serial = laplacian(n);
            let rd = RowDist::block(n as u64, 3);
            let a = ParCsr::from_serial(rank, rd.clone(), rd.clone(), &a_serial);
            nnz_per_rank(rank, &a)
        });
        for v in &out {
            assert_eq!(v.iter().sum::<u64>(), 25); // 9*3 - 2
        }
        assert_eq!(out[0], out[2]);
    }

    #[test]
    fn dist_from_partition_renumbers_contiguously() {
        let part = vec![1, 0, 1, 0, 2];
        let (dist, perm) = dist_from_partition(&part, 3);
        assert_eq!(dist.local_n(0), 2);
        assert_eq!(dist.local_n(1), 2);
        assert_eq!(dist.local_n(2), 1);
        // Old vertices 1, 3 (part 0) become global 0, 1.
        assert_eq!(perm[1], 0);
        assert_eq!(perm[3], 1);
        assert_eq!(perm[0], 2);
        assert_eq!(perm[2], 3);
        assert_eq!(perm[4], 4);
        // Permutation is a bijection.
        let mut sorted = perm.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
