//! IJ-interface global assembly: the paper's Algorithm 1 (matrix) and
//! Algorithm 2 (vector).
//!
//! Ranks contribute COO entries by *global* ids; entries for rows owned by
//! other ranks are buffered separately (the paper's `A_send`/`RHS_send`),
//! exchanged, and folded into the owned data with
//! `stable_sort_by_key` + `reduce_by_key`. The receive counts are
//! pre-computed with an allreduce so that buffers can be allocated once up
//! front, exactly as §3.3 prescribes. The final step splits the matrix
//! into diag and offd blocks.
//!
//! Mirrors the hypre API sequence
//! `HYPRE_IJMatrixSetValues2` / `AddToValues2` / `Assemble`.

use parcomm::{KernelKind, Rank, Tag};
use resilience::faults::{self, FaultKind};
use resilience::SolveError;
use sparse_kit::cost;
use sparse_kit::prims;
use sparse_kit::Coo;
use telemetry::perfmodel;

use crate::dist::RowDist;
use crate::parcsr::ParCsr;
use crate::vector::ParVector;

/// Bytes of one COO triple on the wire (i, j, value).
const TRIPLE_BYTES: u64 = 24;

/// COO triple arrays `(rows, cols, vals)` as sent on the wire.
pub type CooBuffers = (Vec<u64>, Vec<u64>, Vec<f64>);

/// An in-assembly distributed matrix (the IJ interface).
#[derive(Clone, Debug)]
pub struct IjMatrix {
    row_dist: RowDist,
    col_dist: RowDist,
    rank_id: usize,
    owned: Coo,
    shared: Coo,
}

impl IjMatrix {
    /// New empty IJ matrix over the given distributions.
    pub fn new(rank: &Rank, row_dist: RowDist, col_dist: RowDist) -> Self {
        IjMatrix {
            row_dist,
            col_dist,
            rank_id: rank.rank(),
            owned: Coo::new(),
            shared: Coo::new(),
        }
    }

    /// Add a contribution to global entry `(gi, gj)`; duplicates sum.
    /// Entries whose row is owned elsewhere are buffered for the exchange
    /// (the paper's `AddToValues2` path).
    pub fn add_value(&mut self, gi: u64, gj: u64, v: f64) {
        assert!(gi < self.row_dist.global_n(), "row {gi} out of range");
        assert!(gj < self.col_dist.global_n(), "col {gj} out of range");
        if self.row_dist.owner(gi) == self.rank_id {
            self.owned.push(gi, gj, v);
        } else {
            self.shared.push(gi, gj, v);
        }
    }

    /// (owned, shared) entry counts — `nnz_own` and `nnz_send`.
    pub fn nnz_counts(&self) -> (usize, usize) {
        (self.owned.len(), self.shared.len())
    }

    /// Algorithm 1: exchange off-rank entries, sort + reduce, split into
    /// diag/offd. Collective.
    ///
    /// # Panics
    ///
    /// Panics on a corrupted exchange; see [`IjMatrix::try_assemble`]
    /// for the fallible variant.
    pub fn assemble(self, rank: &Rank) -> ParCsr {
        self.try_assemble(rank).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`IjMatrix::assemble`] with decode failures (timeout, payload
    /// type, receive-count mismatch) surfaced as a typed [`SolveError`].
    /// Hosts the `assembly-nan` fault-injection hook: with a matching
    /// spec armed, one owned COO value is corrupted to NaN before the
    /// exchange — exactly the torn-triple corruption the hypre IJ
    /// interface can see on real hardware.
    pub fn try_assemble(mut self, rank: &Rank) -> Result<ParCsr, SolveError> {
        // Local pre-sort of both buffers (the Nalu-Wind local assembly
        // already guarantees this; duplicates from element contributions
        // combine here).
        let presorted = self.owned.len() + self.shared.len();
        let (bytes, _) = cost::sort(presorted, TRIPLE_BYTES);
        rank.kernel(KernelKind::Sort, bytes, 0);
        {
            let _k = telemetry::kernel(
                "assembly_sort_reduce",
                perfmodel::assembly_sort_reduce(presorted, TRIPLE_BYTES),
            );
            self.owned.sort_and_combine();
            self.shared.sort_and_combine();
        }

        if faults::fire(FaultKind::AssemblyNan, || rank.phase_name()) {
            if let Some(v) = self.owned.vals.first_mut() {
                *v = f64::NAN;
            }
        }
        // socket-drop aborts the whole assembly exchange before any
        // message is in flight (see `FaultKind::SocketDrop`): a retry
        // after recovery re-runs a complete, clean exchange.
        if faults::fire(FaultKind::SocketDrop, || rank.phase_name()) {
            return Err(SolveError::Comm {
                detail: format!("injected socket drop in {}", rank.phase_name()),
            });
        }

        // Pre-compute nnz_recv (paper: MPI_Allreduce after the graph
        // computation) so receive buffers can be sized up front. One
        // collective exchanges the whole sender→receiver count matrix.
        let mut my_counts = vec![0u64; rank.size()];
        for &gi in &self.shared.rows {
            my_counts[self.row_dist.owner(gi)] += 1;
        }
        let count_matrix = rank.allgather(my_counts);
        let tag_mat: Tag = rank.alloc_tag();
        let nnz_recv: usize = count_matrix.iter().map(|row| row[self.rank_id] as usize).sum();

        // Exchange A_send: one message per destination rank.
        let mut by_dst: Vec<(usize, CooBuffers)> = Vec::new();
        {
            let mut k = 0;
            while k < self.shared.len() {
                let dst = self.row_dist.owner(self.shared.rows[k]);
                let begin = k;
                while k < self.shared.len()
                    && self.row_dist.owner(self.shared.rows[k]) == dst
                {
                    k += 1;
                }
                by_dst.push((
                    dst,
                    (
                        self.shared.rows[begin..k].to_vec(),
                        self.shared.cols[begin..k].to_vec(),
                        self.shared.vals[begin..k].to_vec(),
                    ),
                ));
            }
        }
        for (dst, payload) in by_dst {
            rank.send(dst, tag_mat, payload);
        }
        // Stack owned and received into one buffer sized with nnz_recv.
        let mut all = Coo::with_capacity(self.owned.len() + nnz_recv);
        all.extend(&self.owned);
        let mut received = 0usize;
        for (src, src_counts) in count_matrix.iter().enumerate() {
            if src == self.rank_id || src_counts[self.rank_id] == 0 {
                continue;
            }
            let (rows, cols, vals): CooBuffers = rank.try_recv(src, tag_mat)?;
            received += rows.len();
            for ((r0, c0), v0) in rows.into_iter().zip(cols).zip(vals) {
                all.push(r0, c0, v0);
            }
        }
        if received != nnz_recv {
            return Err(SolveError::Comm {
                detail: format!(
                    "assembly receive count mismatch: got {received}, expected {nnz_recv}"
                ),
            });
        }

        // stable_sort_by_key + reduce_by_key over the stacked buffer.
        let (bytes, _) = cost::sort(all.len(), TRIPLE_BYTES);
        rank.kernel(KernelKind::Sort, bytes, 0);
        let (bytes, flops) = cost::reduce(all.len(), TRIPLE_BYTES);
        rank.kernel(KernelKind::Sort, bytes, flops);
        {
            let _k = telemetry::kernel(
                "assembly_sort_reduce",
                perfmodel::assembly_sort_reduce(all.len(), TRIPLE_BYTES),
            );
            all.sort_and_combine();
        }

        // Split into diag/offd and build the ParCSR (records nothing:
        // splitting is a single pass).
        let (bytes, _) = cost::blas1(all.len(), 2);
        rank.kernel(KernelKind::Stream, bytes, 0);
        Ok(ParCsr::from_global_coo(rank, self.row_dist, self.col_dist, &all))
    }

}

/// An in-assembly distributed vector (the IJ interface).
#[derive(Clone, Debug)]
pub struct IjVector {
    dist: RowDist,
    rank_id: usize,
    owned: Vec<f64>,
    shared_ids: Vec<u64>,
    shared_vals: Vec<f64>,
}

impl IjVector {
    /// New zero vector over `dist`.
    pub fn new(rank: &Rank, dist: RowDist) -> Self {
        let n = dist.local_n(rank.rank());
        IjVector {
            dist,
            rank_id: rank.rank(),
            owned: vec![0.0; n],
            shared_ids: Vec::new(),
            shared_vals: Vec::new(),
        }
    }

    /// Add to global entry `gi`; off-rank entries are buffered.
    pub fn add_value(&mut self, gi: u64, v: f64) {
        assert!(gi < self.dist.global_n(), "index {gi} out of range");
        if self.dist.owner(gi) == self.rank_id {
            self.owned[self.dist.to_local(self.rank_id, gi)] += v;
        } else {
            self.shared_ids.push(gi);
            self.shared_vals.push(v);
        }
    }

    /// Number of buffered off-rank entries (`n_send`).
    pub fn n_shared(&self) -> usize {
        self.shared_ids.len()
    }

    /// Algorithm 2: exchange off-rank entries, sort + reduce **only the
    /// received values** (n_recv ≪ n_own), then scatter-add into the owned
    /// array. Collective.
    pub fn assemble(mut self, rank: &Rank) -> ParVector {
        // Group shared entries by owner.
        let mut keys: Vec<u64> = self.shared_ids.clone();
        prims::stable_sort_by_key(&mut keys, &mut self.shared_vals);
        self.shared_ids = keys;

        // Vector entries `(ids, vals)` as sent on the wire.
        type VecBuffers = (Vec<u64>, Vec<f64>);
        let mut msgs: Vec<(usize, VecBuffers)> = Vec::new();
        let mut k = 0;
        while k < self.shared_ids.len() {
            let dst = self.dist.owner(self.shared_ids[k]);
            let begin = k;
            while k < self.shared_ids.len() && self.dist.owner(self.shared_ids[k]) == dst {
                k += 1;
            }
            msgs.push((
                dst,
                (
                    self.shared_ids[begin..k].to_vec(),
                    self.shared_vals[begin..k].to_vec(),
                ),
            ));
        }
        let received = rank.sparse_exchange(msgs);

        // Stack received values only.
        let mut recv_ids: Vec<u64> = Vec::new();
        let mut recv_vals: Vec<f64> = Vec::new();
        for (_, (ids, vals)) in received {
            recv_ids.extend(ids);
            recv_vals.extend(vals);
        }
        // Sort + reduce over the received values only (the paper found
        // this noticeably faster than sorting the whole stacked vector).
        let (bytes, _) = cost::sort(recv_ids.len(), 16);
        rank.kernel(KernelKind::Sort, bytes, 0);
        let (ids, vals) = {
            let _k = telemetry::kernel(
                "assembly_sort_reduce",
                perfmodel::assembly_sort_reduce(recv_ids.len(), 16),
            );
            prims::stable_sort_by_key(&mut recv_ids, &mut recv_vals);
            prims::reduce_by_key(&recv_ids, &recv_vals)
        };

        // RHS[i_new] += RHS_new[i_new].
        let (bytes, flops) = cost::blas1(ids.len(), 2);
        rank.kernel(KernelKind::Stream, bytes, flops);
        for (&gi, &v) in ids.iter().zip(&vals) {
            let li = self.dist.to_local(self.rank_id, gi);
            self.owned[li] += v;
        }
        ParVector::from_local(rank, self.dist, self.owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;
    use sparse_kit::Csr;

    #[test]
    fn matrix_assembly_matches_serial_reference() {
        // Every rank contributes to a global 8×8 tridiagonal matrix,
        // including entries in rows owned by neighbours.
        let n = 8u64;
        for p in [1, 2, 4] {
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(n, rank.size());
                let mut ij = IjMatrix::new(rank, dist.clone(), dist);
                // Each rank assembles "element" contributions for the
                // edges (i, i+1) where i % size == rank — scattering work
                // across ranks irrespective of row ownership.
                for i in 0..n - 1 {
                    if i as usize % rank.size() == rank.rank() {
                        ij.add_value(i, i, 1.0);
                        ij.add_value(i + 1, i + 1, 1.0);
                        ij.add_value(i, i + 1, -1.0);
                        ij.add_value(i + 1, i, -1.0);
                    }
                }
                ij.assemble(rank).to_serial(rank)
            });
            // Serial reference: assemble the same edges on one "rank".
            let mut coo = sparse_kit::Coo::new();
            for i in 0..n - 1 {
                coo.push(i, i, 1.0);
                coo.push(i + 1, i + 1, 1.0);
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
            let expected = Csr::from_coo(n as usize, n as usize, &coo);
            for gathered in out {
                assert_eq!(gathered.to_dense(), expected.to_dense(), "p={p}");
            }
        }
    }

    #[test]
    fn duplicate_cross_rank_contributions_sum() {
        let out = Comm::run(3, |rank| {
            let dist = RowDist::block(3, 3);
            let mut ij = IjMatrix::new(rank, dist.clone(), dist);
            // All ranks hit global (0,0).
            ij.add_value(0, 0, 1.0);
            ij.assemble(rank).to_serial(rank)
        });
        assert_eq!(out[0].get(0, 0), 3.0);
    }

    #[test]
    fn assembly_records_sort_kernels_and_messages() {
        let (_, traces) = Comm::run_traced(2, |rank| {
            let dist = RowDist::block(4, 2);
            let mut ij = IjMatrix::new(rank, dist.clone(), dist);
            rank.with_phase("global assembly", || {
                // Contribute to a row the other rank owns.
                let other_row = if rank.rank() == 0 { 2 } else { 0 };
                ij.add_value(other_row, 0, 1.0);
                ij.add_value(rank.rank() as u64 * 2, 0, 1.0);
                ij.assemble(rank)
            });
        });
        for t in &traces {
            let phase = t.phase("global assembly");
            assert!(phase.msgs >= 1, "expected off-rank COO message");
            assert!(
                phase.launches_by_kind.get(&KernelKind::Sort).copied().unwrap_or(0) >= 2,
                "expected sort kernels"
            );
            assert!(phase.collectives >= 1, "expected nnz_recv allreduce");
        }
    }

    #[test]
    fn vector_assembly_matches_reference() {
        let n = 9u64;
        for p in [1, 3] {
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(n, rank.size());
                let mut ij = IjVector::new(rank, dist);
                for i in 0..n {
                    // every rank adds i+1 to entry i
                    ij.add_value(i, (i + 1) as f64);
                }
                ij.assemble(rank).to_serial(rank)
            });
            for v in out {
                let expected: Vec<f64> =
                    (0..n).map(|i| (i + 1) as f64 * p as f64).collect();
                assert_eq!(v, expected, "p={p}");
            }
        }
    }

    #[test]
    fn vector_off_rank_duplicates_sum() {
        let out = Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let mut ij = IjVector::new(rank, dist);
            if rank.rank() == 1 {
                // Rank 1 contributes twice to rank 0's entry 0.
                ij.add_value(0, 2.0);
                ij.add_value(0, 3.0);
            }
            ij.assemble(rank).to_serial(rank)
        });
        assert_eq!(out[0][0], 5.0);
    }

    #[test]
    fn empty_assembly_yields_zero_structures() {
        Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let a = IjMatrix::new(rank, dist.clone(), dist.clone()).assemble(rank);
            assert_eq!(a.local_nnz(), 0);
            let v = IjVector::new(rank, dist).assemble(rank);
            assert!(v.local.iter().all(|&x| x == 0.0));
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_entry_panics() {
        Comm::run(1, |rank| {
            let dist = RowDist::block(2, 1);
            let mut ij = IjMatrix::new(rank, dist.clone(), dist);
            ij.add_value(5, 0, 1.0);
        });
    }

    use parcomm::KernelKind;
}
