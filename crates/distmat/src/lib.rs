//! Distributed sparse matrices and vectors (the hypre ParCSR stand-in).
//!
//! Matrices and vectors are distributed in 1-D block-row fashion across
//! the ranks of a [`parcomm::Comm`], exactly as hypre distributes them
//! (§3.3 of the paper). Each rank stores:
//!
//! - a **diag** block: local rows × local columns, and
//! - an **offd** block: local rows × external columns, with a
//!   `col_map_offd` array mapping compressed external column ids back to
//!   global ids — "an efficient decomposition for performing a Sparse
//!   Matrix Vector Multiply in parallel".
//!
//! [`ij`] implements the paper's Algorithm 1 (global matrix assembly) and
//! Algorithm 2 (global vector assembly) on top of the Thrust-style
//! primitives, including the `nnz_recv` pre-computation that lets buffers
//! be allocated up front. [`ops`] provides the distributed SpGEMM,
//! transpose, and Galerkin RAP used by AMG setup.

pub mod dist;
pub mod halo;
pub mod ij;
pub mod ops;
pub mod parcsr;
pub mod vector;

pub use dist::RowDist;
pub use halo::Halo;
pub use ij::{IjMatrix, IjVector};
pub use parcsr::{CommPkg, ParCsr};
pub use vector::ParVector;
