//! Distributed vectors in 1-D block-row layout.

use parcomm::{KernelKind, Rank};
use sparse_kit::cost;
use sparse_kit::dense;

use crate::dist::RowDist;

/// A vector distributed like the rows of a [`crate::ParCsr`].
#[derive(Clone, Debug, PartialEq)]
pub struct ParVector {
    dist: RowDist,
    rank_id: usize,
    /// The locally owned slice of the global vector.
    pub local: Vec<f64>,
}

impl ParVector {
    /// Zero vector over `dist` on this rank.
    pub fn zeros(rank: &Rank, dist: RowDist) -> Self {
        let n = dist.local_n(rank.rank());
        ParVector {
            dist,
            rank_id: rank.rank(),
            local: vec![0.0; n],
        }
    }

    /// Build from the local values owned by this rank.
    ///
    /// # Panics
    ///
    /// Panics if `local.len()` differs from the distribution's local size.
    pub fn from_local(rank: &Rank, dist: RowDist, local: Vec<f64>) -> Self {
        assert_eq!(
            local.len(),
            dist.local_n(rank.rank()),
            "local length does not match distribution"
        );
        ParVector {
            dist,
            rank_id: rank.rank(),
            local,
        }
    }

    /// Fill from a function of the global index.
    pub fn from_fn(rank: &Rank, dist: RowDist, f: impl Fn(u64) -> f64) -> Self {
        let r = rank.rank();
        let local = (dist.start(r)..dist.end(r)).map(f).collect();
        ParVector {
            dist,
            rank_id: r,
            local,
        }
    }

    /// The row distribution.
    pub fn dist(&self) -> &RowDist {
        &self.dist
    }

    /// Global length.
    pub fn global_n(&self) -> u64 {
        self.dist.global_n()
    }

    /// Global dot product (local dot + allreduce).
    pub fn dot(&self, rank: &Rank, other: &ParVector) -> f64 {
        assert_eq!(self.local.len(), other.local.len(), "length mismatch");
        let (b, f) = cost::blas1(self.local.len(), 2);
        rank.kernel(KernelKind::Stream, b, f);
        rank.allreduce_sum_f64(dense::dot(&self.local, &other.local))
    }

    /// Global 2-norm.
    pub fn norm2(&self, rank: &Rank) -> f64 {
        self.dot(rank, self).sqrt()
    }

    /// self += a·x (purely local).
    pub fn axpy(&mut self, rank: &Rank, a: f64, x: &ParVector) {
        let (b, f) = cost::blas1(self.local.len(), 3);
        rank.kernel(KernelKind::Stream, b, f);
        dense::axpy(a, &x.local, &mut self.local);
    }

    /// self *= a (purely local).
    pub fn scale(&mut self, rank: &Rank, a: f64) {
        let (b, f) = cost::blas1(self.local.len(), 2);
        rank.kernel(KernelKind::Stream, b, f);
        dense::scale(a, &mut self.local);
    }

    /// Gather the full vector on every rank (tests/diagnostics only).
    pub fn to_serial(&self, rank: &Rank) -> Vec<f64> {
        let pieces = rank.allgather(self.local.clone());
        pieces.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcomm::Comm;

    #[test]
    fn from_fn_and_gather() {
        let out = Comm::run(3, |rank| {
            let dist = RowDist::block(7, 3);
            let v = ParVector::from_fn(rank, dist, |g| g as f64 * 2.0);
            v.to_serial(rank)
        });
        for v in out {
            assert_eq!(v, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
        }
    }

    #[test]
    fn dot_and_norm_match_serial() {
        let out = Comm::run(4, |rank| {
            let dist = RowDist::block(10, 4);
            let x = ParVector::from_fn(rank, dist.clone(), |g| g as f64);
            let y = ParVector::from_fn(rank, dist, |_| 1.0);
            (x.dot(rank, &y), x.norm2(rank))
        });
        let expected_dot = 45.0;
        let expected_norm = (0..10).map(|g| (g * g) as f64).sum::<f64>().sqrt();
        for (d, n) in out {
            assert!((d - expected_dot).abs() < 1e-12);
            assert!((n - expected_norm).abs() < 1e-12);
        }
    }

    #[test]
    fn axpy_scale_local() {
        Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let mut y = ParVector::from_fn(rank, dist.clone(), |_| 1.0);
            let x = ParVector::from_fn(rank, dist, |g| g as f64);
            y.axpy(rank, 2.0, &x);
            y.scale(rank, 0.5);
            let full = y.to_serial(rank);
            assert_eq!(full, vec![0.5, 1.5, 2.5, 3.5]);
        });
    }

    #[test]
    fn zeros_has_distribution_size() {
        Comm::run(3, |rank| {
            let dist = RowDist::block(8, 3);
            let v = ParVector::zeros(rank, dist.clone());
            assert_eq!(v.local.len(), dist.local_n(rank.rank()));
            assert_eq!(v.global_n(), 8);
        });
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bad_local_length_panics() {
        Comm::run(1, |rank| {
            let dist = RowDist::block(4, 1);
            ParVector::from_local(rank, dist, vec![0.0; 3]);
        });
    }
}
