//! Undirected weighted graphs in adjacency (CSR) form.

/// Undirected graph with vertex and edge weights, stored like METIS:
/// `xadj`/`adjncy` adjacency CSR, `vwgt` vertex weights, `adjwgt` edge
/// weights parallel to `adjncy`.
///
/// Invariant: the adjacency is symmetric (if `j ∈ adj(i)` then
/// `i ∈ adj(j)` with the same weight) and has no self loops.
#[derive(Clone, Debug)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
    vwgt: Vec<f64>,
    adjwgt: Vec<f64>,
}

impl Graph {
    /// Build from an edge list (each undirected edge listed once).
    ///
    /// # Panics
    ///
    /// Panics on self loops or out-of-range endpoints.
    pub fn from_edges(nv: usize, edges: &[(usize, usize, f64)], vwgt: Vec<f64>) -> Self {
        assert_eq!(vwgt.len(), nv, "vertex weight length mismatch");
        let mut counts = vec![0usize; nv];
        for &(u, v, _) in edges {
            assert!(u < nv && v < nv, "edge endpoint out of range");
            assert_ne!(u, v, "self loop");
            counts[u] += 1;
            counts[v] += 1;
        }
        let mut xadj = vec![0usize; nv + 1];
        for i in 0..nv {
            xadj[i + 1] = xadj[i] + counts[i];
        }
        let mut next = xadj.clone();
        let mut adjncy = vec![0usize; 2 * edges.len()];
        let mut adjwgt = vec![0.0; 2 * edges.len()];
        for &(u, v, w) in edges {
            adjncy[next[u]] = v;
            adjwgt[next[u]] = w;
            next[u] += 1;
            adjncy[next[v]] = u;
            adjwgt[next[v]] = w;
            next[v] += 1;
        }
        Graph {
            xadj,
            adjncy,
            vwgt,
            adjwgt,
        }
    }

    /// Build with unit vertex weights.
    pub fn from_edges_unit(nv: usize, edges: &[(usize, usize, f64)]) -> Self {
        Self::from_edges(nv, edges, vec![1.0; nv])
    }

    /// Number of vertices.
    pub fn nv(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn ne(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.xadj[u]..self.xadj[u + 1];
        self.adjncy[range.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[range].iter().copied())
    }

    /// Vertex weights.
    pub fn vwgt(&self) -> &[f64] {
        &self.vwgt
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.xadj[u + 1] - self.xadj[u]
    }

    /// Sum of edge weights crossing the partition.
    pub fn edge_cut(&self, part: &[usize]) -> f64 {
        assert_eq!(part.len(), self.nv(), "partition length mismatch");
        let mut cut = 0.0;
        for u in 0..self.nv() {
            for (v, w) in self.neighbors(u) {
                if part[u] != part[v] {
                    cut += w;
                }
            }
        }
        cut / 2.0
    }

    /// Number of connected components among vertices assigned to `p`.
    pub fn components_in_part(&self, part: &[usize], p: usize) -> usize {
        let mut seen = vec![false; self.nv()];
        let mut count = 0;
        for start in 0..self.nv() {
            if part[start] != p || seen[start] {
                continue;
            }
            count += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbors(u) {
                    if part[v] == p && !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2 - 3 path.
    fn path4() -> Graph {
        Graph::from_edges_unit(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = path4();
        assert_eq!(g.nv(), 4);
        assert_eq!(g.ne(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        let n1: Vec<usize> = g.neighbors(1).map(|(v, _)| v).collect();
        assert!(n1.contains(&0) && n1.contains(&2));
    }

    #[test]
    fn edge_cut_counts_crossings_once() {
        let g = path4();
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 3.0);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn weighted_cut() {
        let g = Graph::from_edges_unit(3, &[(0, 1, 2.5), (1, 2, 1.0)]);
        assert_eq!(g.edge_cut(&[0, 0, 1]), 1.0);
        assert_eq!(g.edge_cut(&[0, 1, 1]), 2.5);
    }

    #[test]
    fn components_detects_slivers() {
        // Path 0-1-2-3; assigning {0, 3} to part 0 gives two components
        // (the "disconnected sliver" pathology of the paper's Fig. 4).
        let g = path4();
        assert_eq!(g.components_in_part(&[0, 1, 1, 0], 0), 2);
        assert_eq!(g.components_in_part(&[0, 1, 1, 0], 1), 1);
        assert_eq!(g.components_in_part(&[0, 0, 0, 0], 1), 0);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loops_rejected() {
        Graph::from_edges_unit(2, &[(1, 1, 1.0)]);
    }
}
