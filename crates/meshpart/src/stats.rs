//! Partition-quality statistics.
//!
//! The paper quantifies decomposition quality by the median nonzeros per
//! MPI rank with min/max error bars (Figures 5 and 10); this module
//! computes those statistics for any per-vertex load (nnz, weight, ...).

use crate::graph::Graph;

/// Per-part load statistics for a partition.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Total load per part, indexed by part id.
    pub part_loads: Vec<f64>,
    /// Smallest per-part load.
    pub min: f64,
    /// Median per-part load.
    pub median: f64,
    /// Largest per-part load.
    pub max: f64,
    /// Standard deviation of per-part loads.
    pub std_dev: f64,
    /// max / mean — 1.0 is perfect balance.
    pub imbalance: f64,
}

impl PartitionStats {
    /// Compute statistics of `load` summed per part.
    ///
    /// # Panics
    ///
    /// Panics if `part` and `load` lengths differ, or `nparts == 0`.
    pub fn new(part: &[usize], load: &[f64], nparts: usize) -> Self {
        assert_eq!(part.len(), load.len(), "part/load length mismatch");
        assert!(nparts > 0, "nparts must be positive");
        let mut part_loads = vec![0.0; nparts];
        for (&p, &l) in part.iter().zip(load) {
            assert!(p < nparts, "part id {p} out of range {nparts}");
            part_loads[p] += l;
        }
        let mut sorted = part_loads.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let max = sorted[nparts - 1];
        let median = if nparts % 2 == 1 {
            sorted[nparts / 2]
        } else {
            0.5 * (sorted[nparts / 2 - 1] + sorted[nparts / 2])
        };
        let mean = part_loads.iter().sum::<f64>() / nparts as f64;
        let var =
            part_loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / nparts as f64;
        PartitionStats {
            part_loads,
            min,
            median,
            max,
            std_dev: var.sqrt(),
            imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        }
    }

    /// Spread of the error bars the paper plots: `max - min`.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// Count of disconnected "sliver" components beyond one per part —
/// the pathology visible in the paper's Fig. 4.
pub fn sliver_count(graph: &Graph, part: &[usize], nparts: usize) -> usize {
    (0..nparts)
        .map(|p| graph.components_in_part(part, p).saturating_sub(1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_even_partition() {
        let part = vec![0, 0, 1, 1];
        let load = vec![1.0, 2.0, 1.5, 1.5];
        let s = PartitionStats::new(&part, &load, 2);
        assert_eq!(s.part_loads, vec![3.0, 3.0]);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.spread(), 0.0);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn stats_on_skewed_partition() {
        let part = vec![0, 1, 1, 1];
        let load = vec![1.0, 1.0, 1.0, 1.0];
        let s = PartitionStats::new(&part, &load, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.imbalance, 1.5);
        assert_eq!(s.spread(), 2.0);
    }

    #[test]
    fn median_odd_parts() {
        let part = vec![0, 1, 2];
        let load = vec![1.0, 5.0, 3.0];
        let s = PartitionStats::new(&part, &load, 3);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_part_contributes_zero() {
        let s = PartitionStats::new(&[0, 0], &[1.0, 1.0], 3);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.part_loads[1], 0.0);
    }

    #[test]
    fn slivers_counted() {
        // Path 0-1-2-3 with part 0 = {0, 3}: one extra component.
        let g = Graph::from_edges_unit(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(sliver_count(&g, &[0, 1, 1, 0], 2), 1);
        assert_eq!(sliver_count(&g, &[0, 0, 1, 1], 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_id_panics() {
        PartitionStats::new(&[5], &[1.0], 2);
    }
}
