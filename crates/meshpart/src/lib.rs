//! Mesh/graph partitioning: RCB and a multilevel (METIS-like) k-way method.
//!
//! The paper's §5.1 shows that the original recursive-coordinate-bisection
//! (RCB) decomposition of blade-resolved meshes produces imbalanced,
//! sliver-shaped subdomains, and that switching to ParMETIS rebalancing
//! tightens the per-rank nonzero spread by ~10× (Fig. 5) — while at large
//! rank counts on the refined mesh the spread advantage disappears
//! (Fig. 10). This crate implements both partitioners from scratch:
//!
//! - [`rcb::rcb`] — recursive coordinate bisection by weighted median;
//! - [`multilevel::multilevel_kway`] — heavy-edge-matching coarsening,
//!   greedy growing on the coarsest graph, and boundary FM refinement
//!   during uncoarsening (the classical multilevel scheme ParMETIS uses).
//!
//! [`stats::PartitionStats`] computes the min/median/max nonzeros-per-rank
//! statistics plotted in the paper's Figures 5 and 10.

pub mod graph;
pub mod multilevel;
pub mod rcb;
pub mod stats;

pub use graph::Graph;
pub use multilevel::multilevel_kway;
pub use rcb::rcb;
pub use stats::PartitionStats;
