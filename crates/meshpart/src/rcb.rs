//! Recursive coordinate bisection.
//!
//! The paper's original decomposition: split the bounding box of the
//! vertex cloud along its longest axis at the weighted median, recurse.
//! On stretched blade-resolved meshes this is exactly the algorithm that
//! produces the skewed, occasionally disconnected subdomains of Fig. 4.

/// Partition points into `nparts` by recursive coordinate bisection of
/// the weighted point cloud. Returns a part id per point.
///
/// Non-power-of-two part counts are handled by proportional splits.
///
/// # Panics
///
/// Panics if `nparts == 0` or `weights.len() != coords.len()`.
pub fn rcb(coords: &[[f64; 3]], weights: &[f64], nparts: usize) -> Vec<usize> {
    assert!(nparts > 0, "nparts must be positive");
    assert_eq!(coords.len(), weights.len(), "coords/weights length mismatch");
    let mut part = vec![0usize; coords.len()];
    let ids: Vec<usize> = (0..coords.len()).collect();
    bisect(coords, weights, &ids, 0, nparts, &mut part);
    part
}

fn bisect(
    coords: &[[f64; 3]],
    weights: &[f64],
    ids: &[usize],
    first_part: usize,
    nparts: usize,
    out: &mut [usize],
) {
    if nparts == 1 || ids.is_empty() {
        for &i in ids {
            out[i] = first_part;
        }
        return;
    }
    // Longest axis of the bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids {
        for d in 0..3 {
            lo[d] = lo[d].min(coords[i][d]);
            hi[d] = hi[d].max(coords[i][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();

    // Proportional split: left side receives ceil(nparts/2) parts' worth
    // of weight.
    let left_parts = nparts.div_ceil(2);
    let frac = left_parts as f64 / nparts as f64;
    let total: f64 = ids.iter().map(|&i| weights[i]).sum();

    let mut sorted: Vec<usize> = ids.to_vec();
    sorted.sort_by(|&a, &b| {
        coords[a][axis]
            .partial_cmp(&coords[b][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut acc = 0.0;
    let mut split = sorted.len();
    for (k, &i) in sorted.iter().enumerate() {
        acc += weights[i];
        if acc >= frac * total {
            split = k + 1;
            break;
        }
    }
    // Never create an empty side when both sides need vertices.
    split = split.clamp(1, sorted.len().saturating_sub(1).max(1));

    let (left, right) = sorted.split_at(split);
    bisect(coords, weights, left, first_part, left_parts, out);
    bisect(
        coords,
        weights,
        right,
        first_part + left_parts,
        nparts - left_parts,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<[f64; 3]> {
        // n×n unit grid in the z=0 plane.
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push([i as f64, j as f64, 0.0]);
            }
        }
        pts
    }

    #[test]
    fn two_way_split_is_balanced() {
        let pts = grid(8);
        let w = vec![1.0; pts.len()];
        let part = rcb(&pts, &w, 2);
        let n0 = part.iter().filter(|&&p| p == 0).count();
        assert_eq!(n0, 32);
        // Split must be spatial: along some axis the parts are separated
        // by a plane (which axis is chosen depends on tie-breaking).
        let separated = (0..3).any(|d| {
            let max0 = pts
                .iter()
                .zip(&part)
                .filter(|&(_, &p)| p == 0)
                .map(|(c, _)| c[d])
                .fold(f64::NEG_INFINITY, f64::max);
            let min1 = pts
                .iter()
                .zip(&part)
                .filter(|&(_, &p)| p == 1)
                .map(|(c, _)| c[d])
                .fold(f64::INFINITY, f64::min);
            max0 <= min1
        });
        assert!(separated);
    }

    #[test]
    fn all_parts_nonempty_for_many_counts() {
        let pts = grid(10);
        let w = vec![1.0; pts.len()];
        for nparts in [1, 2, 3, 5, 6, 7, 8, 12, 16] {
            let part = rcb(&pts, &w, nparts);
            for p in 0..nparts {
                assert!(part.contains(&p), "part {p} empty for nparts={nparts}");
            }
            assert!(part.iter().all(|&p| p < nparts));
        }
    }

    #[test]
    fn weighted_median_shifts_split() {
        // Heavy point at x=0 pulls the 2-way split so part 0 is tiny.
        let pts: Vec<[f64; 3]> = (0..10).map(|i| [i as f64, 0.0, 0.0]).collect();
        let mut w = vec![1.0; 10];
        w[0] = 100.0;
        let part = rcb(&pts, &w, 2);
        let n0 = part.iter().filter(|&&p| p == 0).count();
        assert_eq!(n0, 1, "heavy vertex should satisfy half the weight alone");
    }

    #[test]
    fn splits_longest_axis_first() {
        // Points stretched along y: the first cut must be in y.
        let pts: Vec<[f64; 3]> = (0..16).map(|i| [0.5, i as f64 * 10.0, 0.0]).collect();
        let part = rcb(&pts, &[1.0; 16], 2);
        // Lower-y half in one part.
        for i in 0..8 {
            assert_eq!(part[i], part[0]);
        }
        assert_ne!(part[0], part[15]);
    }

    #[test]
    fn unbalanced_counts_proportional() {
        let pts = grid(9); // 81 points
        let part = rcb(&pts, &vec![1.0; 81], 3);
        let counts: Vec<usize> = (0..3).map(|p| part.iter().filter(|&&x| x == p).count()).collect();
        // Each part should get 81/3 = 27 ± a few.
        for &c in &counts {
            assert!((20..=34).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn single_point_many_parts_degenerates_gracefully() {
        let part = rcb(&[[0.0, 0.0, 0.0]], &[1.0], 4);
        assert_eq!(part.len(), 1);
        assert!(part[0] < 4);
    }
}
