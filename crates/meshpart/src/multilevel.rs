//! Multilevel k-way graph partitioning (the ParMETIS stand-in).
//!
//! Classical three-phase scheme: (1) coarsen by heavy-edge matching,
//! (2) greedy graph-growing initial partition on the coarsest graph,
//! (3) project back level by level with boundary FM refinement.
//! Randomness is seeded, so partitions are reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

use crate::graph::Graph;

/// Allowed imbalance: max part weight ≤ (1 + IMBALANCE) · ideal.
const IMBALANCE: f64 = 0.02;
/// Refinement passes per level.
const FM_PASSES: usize = 4;

/// Partition `graph` into `nparts` parts, minimizing edge cut subject to a
/// ±5% vertex-weight balance. Returns a part id per vertex.
///
/// # Panics
///
/// Panics if `nparts == 0` or `nparts > graph.nv()`.
pub fn multilevel_kway(graph: &Graph, nparts: usize, seed: u64) -> Vec<usize> {
    assert!(nparts > 0, "nparts must be positive");
    assert!(
        nparts <= graph.nv(),
        "cannot split {} vertices into {nparts} parts",
        graph.nv()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    if nparts == 1 {
        return vec![0; graph.nv()];
    }

    // --- Coarsening ---------------------------------------------------
    let coarsest_target = (16 * nparts).max(64);
    let mut levels: Vec<Graph> = vec![graph.clone()];
    let mut maps: Vec<Vec<usize>> = Vec::new();
    while levels.last().unwrap().nv() > coarsest_target {
        let current = levels.last().unwrap();
        let (coarse, map) = coarsen_once(current, &mut rng);
        if coarse.nv() as f64 > 0.95 * current.nv() as f64 {
            break; // matching stalled
        }
        levels.push(coarse);
        maps.push(map);
    }

    // --- Initial partition on the coarsest graph ----------------------
    let coarsest = levels.last().unwrap();
    let mut part = grow_initial(coarsest, nparts, &mut rng);
    refine(coarsest, &mut part, nparts, &mut rng);

    // --- Uncoarsen + refine -------------------------------------------
    for lvl in (0..maps.len()).rev() {
        let fine = &levels[lvl];
        let map = &maps[lvl];
        let mut fine_part = vec![0usize; fine.nv()];
        for v in 0..fine.nv() {
            fine_part[v] = part[map[v]];
        }
        part = fine_part;
        refine(fine, &mut part, nparts, &mut rng);
    }
    ensure_nonempty(graph, &mut part, nparts);
    part
}

/// One heavy-edge-matching coarsening step. Returns the coarse graph and
/// the fine→coarse vertex map.
fn coarsen_once(g: &Graph, rng: &mut StdRng) -> (Graph, Vec<usize>) {
    let nv = g.nv();
    let mut order: Vec<usize> = (0..nv).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; nv];
    let mut coarse_id = vec![usize::MAX; nv];
    let mut next_id = 0usize;
    for &u in &order {
        if matched[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best = usize::MAX;
        let mut best_w = f64::NEG_INFINITY;
        for (v, w) in g.neighbors(u) {
            if matched[v] == usize::MAX && v != u && w > best_w {
                best = v;
                best_w = w;
            }
        }
        if best != usize::MAX {
            matched[u] = best;
            matched[best] = u;
            coarse_id[u] = next_id;
            coarse_id[best] = next_id;
        } else {
            matched[u] = u;
            coarse_id[u] = next_id;
        }
        next_id += 1;
    }

    // Coarse vertex weights and combined edges.
    let mut vwgt = vec![0.0; next_id];
    for v in 0..nv {
        vwgt[coarse_id[v]] += g.vwgt()[v];
    }
    let mut edge_map: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for u in 0..nv {
        let cu = coarse_id[u];
        for (v, w) in g.neighbors(u) {
            let cv = coarse_id[v];
            if cu < cv {
                *edge_map.entry((cu, cv)).or_insert(0.0) += w;
            }
        }
    }
    let edges: Vec<(usize, usize, f64)> =
        edge_map.into_iter().map(|((u, v), w)| (u, v, w)).collect();
    (Graph::from_edges(next_id, &edges, vwgt), coarse_id)
}

/// Greedy graph growing: BFS-grow each part to its proportional target
/// weight, assigning vertices as they are *popped* so parts never
/// overshoot by more than one frontier vertex.
fn grow_initial(g: &Graph, nparts: usize, rng: &mut StdRng) -> Vec<usize> {
    let nv = g.nv();
    let mut part = vec![usize::MAX; nv];
    let mut remaining_weight = g.total_vwgt();
    let mut unassigned = nv;
    for p in 0..nparts {
        if unassigned == 0 {
            break;
        }
        if p + 1 == nparts {
            // Last part absorbs everything left.
            for pv in part.iter_mut() {
                if *pv == usize::MAX {
                    *pv = p;
                }
            }
            break;
        }
        let target = remaining_weight / (nparts - p) as f64;
        let mut weight = 0.0;
        let mut queue: VecDeque<usize> = VecDeque::new();
        while weight < target && unassigned > 0 {
            let u = match queue.pop_front() {
                Some(u) if part[u] == usize::MAX => u,
                Some(_) => continue, // claimed since it was queued
                None => {
                    // Empty frontier: restart from a random unassigned
                    // vertex (the unassigned region may be disconnected).
                    let pool: Vec<usize> =
                        (0..nv).filter(|&v| part[v] == usize::MAX).collect();
                    pool[rng.gen_range(0..pool.len())]
                }
            };
            part[u] = p;
            weight += g.vwgt()[u];
            unassigned -= 1;
            let mut nbrs: Vec<(usize, f64)> = g
                .neighbors(u)
                .filter(|&(v, _)| part[v] == usize::MAX)
                .collect();
            // Grow along heavy edges first.
            nbrs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for (v, _) in nbrs {
                queue.push_back(v);
            }
        }
        remaining_weight -= weight;
    }
    part
}

/// Boundary FM refinement: move boundary vertices to the neighbouring part
/// with the largest positive cut gain, subject to the balance constraint.
fn refine(g: &Graph, part: &mut [usize], nparts: usize, rng: &mut StdRng) {
    let nv = g.nv();
    let target = g.total_vwgt() / nparts as f64;
    let max_weight = (1.0 + IMBALANCE) * target;
    let mut weights = vec![0.0; nparts];
    let mut counts = vec![0usize; nparts];
    for v in 0..nv {
        weights[part[v]] += g.vwgt()[v];
        counts[part[v]] += 1;
    }
    let mut order: Vec<usize> = (0..nv).collect();

    // Balance pre-pass: drain overweight parts into their lightest
    // adjacent parts, even at negative cut gain (greedy graph growing can
    // leave the initial partition outside the balance envelope).
    for _ in 0..2 * FM_PASSES {
        if weights.iter().all(|&w| w <= max_weight) {
            break;
        }
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let home = part[v];
            if weights[home] <= max_weight || counts[home] <= 1 {
                continue;
            }
            let mut best: Option<usize> = None;
            for (u, _) in g.neighbors(v) {
                let q = part[u];
                if q != home && best.is_none_or(|b| weights[q] < weights[b]) {
                    best = Some(q);
                }
            }
            if let Some(q) = best {
                if weights[q] + g.vwgt()[v] < weights[home] {
                    weights[home] -= g.vwgt()[v];
                    counts[home] -= 1;
                    weights[q] += g.vwgt()[v];
                    counts[q] += 1;
                    part[v] = q;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }

    // FM passes: positive-gain (or balance-improving zero-gain) moves only.
    for _ in 0..FM_PASSES {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let home = part[v];
            if counts[home] <= 1 {
                continue; // never empty a part
            }
            // Connectivity to each adjacent part (BTreeMap: deterministic
            // iteration, hence deterministic tie-breaking).
            let mut conn: BTreeMap<usize, f64> = BTreeMap::new();
            let mut internal = 0.0;
            for (u, w) in g.neighbors(v) {
                if part[u] == home {
                    internal += w;
                } else {
                    *conn.entry(part[u]).or_insert(0.0) += w;
                }
            }
            if conn.is_empty() {
                continue; // interior vertex
            }
            let (&best_p, &best_conn) = conn
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .unwrap();
            let gain = best_conn - internal;
            let balance_gain = weights[home] - (weights[best_p] + g.vwgt()[v]);
            let fits = weights[best_p] + g.vwgt()[v] <= max_weight;
            let improves = gain > 1e-12 || (gain >= -1e-12 && balance_gain > 1e-12);
            if fits && improves {
                weights[home] -= g.vwgt()[v];
                counts[home] -= 1;
                weights[best_p] += g.vwgt()[v];
                counts[best_p] += 1;
                part[v] = best_p;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Guarantee no empty parts by splitting off boundary vertices of the
/// heaviest parts.
fn ensure_nonempty(g: &Graph, part: &mut [usize], nparts: usize) {
    let mut counts = vec![0usize; nparts];
    for &p in part.iter() {
        counts[p] += 1;
    }
    for p in 0..nparts {
        while counts[p] == 0 {
            // Take a vertex from the most populous part.
            let donor = (0..nparts).max_by_key(|&q| counts[q]).unwrap();
            let v = (0..g.nv()).find(|&v| part[v] == donor).unwrap();
            part[v] = p;
            counts[donor] -= 1;
            counts[p] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// nx × ny grid graph with unit weights.
    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let id = |i: usize, j: usize| i * ny + j;
        let mut edges = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    edges.push((id(i, j), id(i + 1, j), 1.0));
                }
                if j + 1 < ny {
                    edges.push((id(i, j), id(i, j + 1), 1.0));
                }
            }
        }
        Graph::from_edges_unit(nx * ny, &edges)
    }

    #[test]
    fn bisection_of_grid_is_balanced_with_low_cut() {
        let g = grid_graph(16, 16);
        let part = multilevel_kway(&g, 2, 1);
        let n0 = part.iter().filter(|&&p| p == 0).count();
        assert!((108..=148).contains(&n0), "n0={n0}");
        // Optimal cut for a 16×16 grid bisection is 16; allow slack but it
        // must be far below a random split (~240).
        let cut = g.edge_cut(&part);
        assert!(cut <= 40.0, "cut={cut}");
    }

    #[test]
    fn kway_parts_are_nonempty_and_balanced() {
        let g = grid_graph(20, 20);
        for nparts in [3, 4, 6, 8] {
            let part = multilevel_kway(&g, nparts, 7);
            let mut counts = vec![0usize; nparts];
            for &p in &part {
                counts[p] += 1;
            }
            let ideal = 400 / nparts;
            for (p, &c) in counts.iter().enumerate() {
                assert!(c > 0, "part {p} empty (nparts={nparts})");
                assert!(
                    c <= ideal * 2,
                    "part {p} has {c} vs ideal {ideal} (nparts={nparts})"
                );
            }
        }
    }

    #[test]
    fn beats_random_partition_on_cut() {
        let g = grid_graph(24, 24);
        let nparts = 8;
        let part = multilevel_kway(&g, nparts, 3);
        let cut = g.edge_cut(&part);
        // Random baseline.
        let mut rng = StdRng::seed_from_u64(99);
        let random: Vec<usize> = (0..g.nv()).map(|_| rng.gen_range(0..nparts)).collect();
        let random_cut = g.edge_cut(&random);
        assert!(
            cut < random_cut / 3.0,
            "cut={cut} random_cut={random_cut}"
        );
    }

    #[test]
    fn respects_vertex_weights() {
        // Two heavy vertices must land in different parts for balance.
        let mut edges = Vec::new();
        for i in 0..9 {
            edges.push((i, i + 1, 1.0));
        }
        let mut vwgt = vec![1.0; 10];
        vwgt[0] = 50.0;
        vwgt[9] = 50.0;
        let g = Graph::from_edges(10, &edges, vwgt);
        let part = multilevel_kway(&g, 2, 5);
        assert_ne!(part[0], part[9]);
    }

    #[test]
    fn single_part_trivial() {
        let g = grid_graph(4, 4);
        assert_eq!(multilevel_kway(&g, 1, 0), vec![0; 16]);
    }

    #[test]
    fn nparts_equals_nv() {
        let g = grid_graph(2, 2);
        let part = multilevel_kway(&g, 4, 0);
        let mut sorted = part.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(12, 12);
        let a = multilevel_kway(&g, 4, 11);
        let b = multilevel_kway(&g, 4, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_parts_panics() {
        let g = grid_graph(2, 2);
        multilevel_kway(&g, 5, 0);
    }
}
