//! NREL 5-MW turbine case generators (Table 1 of the paper).
//!
//! The paper's three configurations, at a configurable node-count scale:
//!
//! | case            | paper mesh nodes | ratio |
//! |-----------------|------------------|-------|
//! | 1 turbine       |       23,022,027 |  1.0  |
//! | 2 turbines      |       44,233,109 | 1.92  |
//! | 1 turbine refined |    634,469,604 | 27.56 |
//!
//! `scale` multiplies the node budget (default harness runs use
//! `scale ≈ 4e-3`, i.e. ~90k nodes for the low-resolution case). The
//! generated systems preserve what matters to the solvers: ~60% of nodes
//! in the body-fitted, boundary-layer-graded rotor mesh (high aspect
//! ratios → ill-conditioned pressure systems), the rest in the
//! wake-capturing background box, coupled through overset fringes.

use crate::generate::{annulus_mesh, box_mesh, geometric_spacing, uniform_spacing, BoxBc};
use crate::mesh::Mesh;
use crate::overset::{assemble_overset, OversetAssembly};

/// Rotor radius of the NREL 5-MW reference turbine (126 m rotor).
pub const ROTOR_RADIUS: f64 = 63.0;

/// The three evaluation configurations of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NrelCase {
    /// Low-resolution single turbine (23.0M paper nodes).
    SingleLow,
    /// Two turbines in sequence (44.2M paper nodes).
    Dual,
    /// Refined single turbine (634.5M paper nodes).
    SingleRefined,
}

impl NrelCase {
    /// Paper's mesh-node count for this case (Table 1).
    pub fn paper_nodes(self) -> u64 {
        match self {
            NrelCase::SingleLow => 23_022_027,
            NrelCase::Dual => 44_233_109,
            NrelCase::SingleRefined => 634_469_604,
        }
    }

    /// Display name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            NrelCase::SingleLow => "1 Turbine",
            NrelCase::Dual => "2 Turbines",
            NrelCase::SingleRefined => "1 Turbine Refined",
        }
    }

    /// Number of turbines in the case.
    pub fn n_turbines(self) -> usize {
        if self == NrelCase::Dual {
            2
        } else {
            1
        }
    }
}

/// A generated overset turbine system.
#[derive(Clone, Debug)]
pub struct TurbineMeshes {
    /// Which configuration this is.
    pub case: NrelCase,
    /// Mesh 0 is the background; meshes 1.. are rotors.
    pub meshes: Vec<Mesh>,
    /// Overset connectivity for the initial rotor position.
    pub overset: OversetAssembly,
}

impl TurbineMeshes {
    /// Total node count over all meshes.
    pub fn total_nodes(&self) -> usize {
        self.meshes.iter().map(|m| m.n_nodes()).sum()
    }
}

/// Integer cube root-ish helper: largest `n` with `n³ ≤ v`, at least 2.
fn dim_from_budget(budget: f64, shape: [f64; 3]) -> [usize; 3] {
    // dims = shape * t where prod(dims) = budget.
    let prod_shape: f64 = shape.iter().product();
    let t = (budget / prod_shape).cbrt();
    let mut dims = [0usize; 3];
    for d in 0..3 {
        dims[d] = ((shape[d] * t).round() as usize).max(3);
    }
    dims
}

/// Build one rotor annulus mesh centred at `x_center`, with a node
/// budget. Boundary-layer grading at the inner (blade/hub) wall.
fn rotor_mesh(budget: f64, x_center: f64) -> Mesh {
    let r = ROTOR_RADIUS;
    // Aspect of the rotor lattice: θ-heavy like blade meshes.
    let [nx, nr, nt] = dim_from_budget(budget, [0.7, 1.0, 2.2]);
    let xs = uniform_spacing(x_center - 0.5 * r, x_center + 0.5 * r, nx.max(3));
    // Geometric grading from the hub/blade wall out to 1.15R with a fixed
    // ~30× first-to-last cell growth (blade boundary-layer proxy): the
    // per-cell ratio adapts to the radial resolution so refined meshes
    // keep physically meaningful (not astronomically stretched) cells.
    let nr = nr.max(4);
    let growth: f64 = 30.0;
    let ratio = growth.powf(1.0 / (nr as f64 - 2.0).max(1.0));
    let rs = geometric_spacing(0.03 * r, 1.15 * r, nr, ratio);
    annulus_mesh(xs, rs, nt.max(8), [x_center, 0.0, 0.0])
}

/// Build the wake-capturing background box for `n_turbines` with a node
/// budget. Mild grading toward the rotor plane(s).
fn background_mesh(budget: f64, n_turbines: usize) -> Mesh {
    let r = ROTOR_RADIUS;
    let x_extent = if n_turbines == 2 { 16.0 * r } else { 10.0 * r };
    let shape = [x_extent / (4.0 * r), 1.0, 1.0];
    let [nx, ny, nz] = dim_from_budget(budget, shape);
    let xs = uniform_spacing(-3.0 * r, -3.0 * r + x_extent, nx.max(4));
    let ys = uniform_spacing(-2.0 * r, 2.0 * r, ny.max(4));
    let zs = uniform_spacing(-2.0 * r, 2.0 * r, nz.max(4));
    box_mesh(xs, ys, zs, BoxBc::wind_tunnel())
}

/// Generate a Table-1 case at a node-count `scale` (1.0 = paper size;
/// harness runs use ~4e-3). Builds the meshes and the initial overset
/// assembly.
pub fn generate(case: NrelCase, scale: f64) -> TurbineMeshes {
    assert!(scale > 0.0, "scale must be positive");
    let budget = case.paper_nodes() as f64 * scale;
    let n_turb = case.n_turbines();
    // ~60% of nodes in rotor meshes, 40% in the background.
    let rotor_budget = 0.6 * budget / n_turb as f64;
    let bg_budget = 0.4 * budget;

    let mut meshes = vec![background_mesh(bg_budget, n_turb)];
    for t in 0..n_turb {
        let x_center = t as f64 * 7.0 * ROTOR_RADIUS;
        meshes.push(rotor_mesh(rotor_budget, x_center));
    }
    let overset = assemble_overset(&mut meshes, 0.18);
    TurbineMeshes {
        case,
        meshes,
        overset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::NodeStatus;

    #[test]
    fn table1_ratios_preserved() {
        let scale = 2e-4;
        let single = generate(NrelCase::SingleLow, scale);
        let dual = generate(NrelCase::Dual, scale);
        let (ns, nd) = (single.total_nodes() as f64, dual.total_nodes() as f64);
        let ratio = nd / ns;
        let paper_ratio =
            NrelCase::Dual.paper_nodes() as f64 / NrelCase::SingleLow.paper_nodes() as f64;
        assert!(
            (ratio / paper_ratio - 1.0).abs() < 0.35,
            "dual/single ratio {ratio} vs paper {paper_ratio}"
        );
        assert_eq!(dual.meshes.len(), 3);
        assert_eq!(single.meshes.len(), 2);
    }

    #[test]
    fn refined_is_much_larger() {
        let scale = 2e-5;
        let low = generate(NrelCase::SingleLow, scale * 10.0);
        let refined = generate(NrelCase::SingleRefined, scale);
        // At 10× smaller scale the refined case still has ≥ 2× the nodes.
        assert!(refined.total_nodes() as f64 > 2.0 * low.total_nodes() as f64 / 10.0);
    }

    #[test]
    fn node_budget_approximately_met() {
        let scale = 3e-4;
        let tm = generate(NrelCase::SingleLow, scale);
        let target = NrelCase::SingleLow.paper_nodes() as f64 * scale;
        let actual = tm.total_nodes() as f64;
        assert!(
            (actual / target - 1.0).abs() < 0.4,
            "target {target} actual {actual}"
        );
    }

    #[test]
    fn rotor_mesh_is_anisotropic() {
        let tm = generate(NrelCase::SingleLow, 2e-4);
        let rotor = &tm.meshes[1];
        assert!(
            rotor.max_aspect_ratio() > 8.0,
            "blade-resolved proxy should be anisotropic: {}",
            rotor.max_aspect_ratio()
        );
    }

    #[test]
    fn overset_holes_and_fringes_exist() {
        let tm = generate(NrelCase::SingleLow, 1e-3);
        let bg = &tm.meshes[0];
        let holes = bg.status.iter().filter(|s| **s == NodeStatus::Hole).count();
        let fringe = bg
            .status
            .iter()
            .filter(|s| **s == NodeStatus::Fringe)
            .count();
        assert!(holes > 0);
        assert!(fringe > 0);
        assert!(!tm.overset.receptors.is_empty());
    }

    #[test]
    fn dual_case_has_two_separated_rotors() {
        let tm = generate(NrelCase::Dual, 2e-4);
        assert_eq!(tm.case.n_turbines(), 2);
        // Rotor centres 7R apart in x.
        let cx = |m: &Mesh| {
            m.coords.iter().map(|c| c[0]).sum::<f64>() / m.n_nodes() as f64
        };
        let dx = (cx(&tm.meshes[2]) - cx(&tm.meshes[1])).abs();
        assert!((dx - 7.0 * ROTOR_RADIUS).abs() < 1.0, "dx={dx}");
        // Both rotors produce receptors.
        assert!(tm.overset.receptors_of(1).count() > 0);
        assert!(tm.overset.receptors_of(2).count() > 0);
    }

    #[test]
    fn paper_node_counts_match_table1() {
        assert_eq!(NrelCase::SingleLow.paper_nodes(), 23_022_027);
        assert_eq!(NrelCase::Dual.paper_nodes(), 44_233_109);
        assert_eq!(NrelCase::SingleRefined.paper_nodes(), 634_469_604);
    }
}
