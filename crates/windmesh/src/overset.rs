//! TIOGA-style overset assembly: hole cutting, fringe identification,
//! and donor search.
//!
//! Mesh 0 is the background; meshes 1.. are component (rotor) meshes.
//! Background nodes well inside a component's domain are blanked
//! (holes); the active background nodes bordering a hole become fringe
//! receptors interpolating from the component mesh, and the component's
//! outer-boundary nodes become receptors interpolating from the
//! background — the additive-Schwarz coupling surface of [20].

use crate::mesh::{BcKind, Latent, Mesh, NodeStatus};

/// One receptor node and its donor stencil.
#[derive(Clone, Debug)]
pub struct Receptor {
    /// Mesh owning the receptor node.
    pub mesh: usize,
    /// Receptor node id within that mesh.
    pub node: usize,
    /// Mesh the donors come from.
    pub donor_mesh: usize,
    /// Donor element corner nodes.
    pub donor_nodes: [usize; 8],
    /// Trilinear donor weights (sum to 1).
    pub weights: [f64; 8],
}

/// The overset connectivity for one configuration of the meshes.
#[derive(Clone, Debug, Default)]
pub struct OversetAssembly {
    /// All receptor/donor pairs.
    pub receptors: Vec<Receptor>,
}

impl OversetAssembly {
    /// Receptors owned by a given mesh.
    pub fn receptors_of(&self, mesh: usize) -> impl Iterator<Item = &Receptor> {
        self.receptors.iter().filter(move |r| r.mesh == mesh)
    }
}

/// Does the latent domain contain `p` with a fractional interior margin?
fn contains_with_margin(latent: &Latent, p: [f64; 3], frac: f64) -> bool {
    match latent {
        Latent::Box { xs, ys, zs } => {
            let within = |g: &[f64], v: f64| {
                let (lo, hi) = (g[0], *g.last().unwrap());
                let m = frac * (hi - lo);
                v >= lo + m && v <= hi - m
            };
            within(xs, p[0]) && within(ys, p[1]) && within(zs, p[2])
        }
        Latent::Annulus { xs, rs, center, .. } => {
            let (lo_x, hi_x) = (xs[0], *xs.last().unwrap());
            let mx = frac * (hi_x - lo_x);
            if p[0] < lo_x + mx || p[0] > hi_x - mx {
                return false;
            }
            let dy = p[1] - center[1];
            let dz = p[2] - center[2];
            let r = (dy * dy + dz * dz).sqrt();
            let (lo_r, hi_r) = (rs[0], *rs.last().unwrap());
            let mr = frac * (hi_r - lo_r);
            r >= lo_r + mr && r <= hi_r - mr
        }
    }
}

/// Assemble overset connectivity, updating node statuses in place.
/// `hole_margin` is the fractional interior margin used for hole cutting
/// (larger margin → wider fringe band between the meshes).
///
/// # Panics
///
/// Panics if a fringe node has no valid donor (meshes must overlap by
/// more than the margin).
pub fn assemble_overset(meshes: &mut [Mesh], hole_margin: f64) -> OversetAssembly {
    assert!(!meshes.is_empty(), "need at least a background mesh");
    // Reset statuses.
    for m in meshes.iter_mut() {
        for s in &mut m.status {
            *s = NodeStatus::Active;
        }
    }
    let mut receptors = Vec::new();

    // --- Hole cutting on the background --------------------------------
    let (background, components) = meshes.split_first_mut().unwrap();
    for (ci, comp) in components.iter().enumerate() {
        let latent = comp.latent.as_ref().expect("component needs latent");
        for (n, &p) in background.coords.iter().enumerate() {
            if contains_with_margin(latent, p, hole_margin) {
                background.status[n] = NodeStatus::Hole;
            }
        }
        let _ = ci;
    }

    // --- Background fringe: for every hole/active edge, the active side
    // becomes a fringe when it has a donor; otherwise the *hole* side is
    // promoted to fringe instead (it lies inside the component with
    // margin, so a donor is guaranteed). This keeps the invariant that no
    // hole ever touches an active node, regardless of how coarse the
    // background is relative to the overlap margin.
    let locate_in_components =
        |p: [f64; 3], comps: &[Mesh]| -> Option<(usize, [usize; 8], [f64; 8])> {
            for (ci, comp) in comps.iter().enumerate() {
                if let Some((nodes, w)) = comp.locate(p) {
                    return Some((ci + 1, nodes, w));
                }
            }
            None
        };
    let mut is_fringe = vec![false; background.n_nodes()];
    for e in 0..background.edges.len() {
        let (a, b) = (background.edges[e].a, background.edges[e].b);
        for (hole, active) in [(a, b), (b, a)] {
            if background.status[hole] != NodeStatus::Hole
                || background.status[active] != NodeStatus::Active
                || is_fringe[active]
            {
                continue;
            }
            if locate_in_components(background.coords[active], components).is_some() {
                is_fringe[active] = true;
            } else {
                // Retreat the hole boundary: the hole node itself becomes
                // the fringe.
                is_fringe[hole] = true;
            }
        }
    }
    for (n, &f) in is_fringe.iter().enumerate() {
        if !f {
            continue;
        }
        let p = background.coords[n];
        let (donor_mesh, donor_nodes, weights) = locate_in_components(p, components)
            .unwrap_or_else(|| {
                panic!("background fringe node {n} at {p:?} has no donor — overlap too thin")
            });
        background.status[n] = NodeStatus::Fringe;
        receptors.push(Receptor {
            mesh: 0,
            node: n,
            donor_mesh,
            donor_nodes,
            weights,
        });
    }

    // --- Component receptors: outer boundary nodes ----------------------
    for (ci, comp) in components.iter_mut().enumerate() {
        let rec_nodes: Vec<usize> = comp
            .boundary(BcKind::OversetReceptor)
            .map(|p| p.nodes.clone())
            .unwrap_or_default();
        for n in rec_nodes {
            let p = comp.coords[n];
            let (donor_nodes, weights) = background
                .locate(p)
                .unwrap_or_else(|| panic!("component receptor at {p:?} outside background"));
            comp.status[n] = NodeStatus::Fringe;
            receptors.push(Receptor {
                mesh: ci + 1,
                node: n,
                donor_mesh: 0,
                donor_nodes,
                weights,
            });
        }
    }
    OversetAssembly { receptors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{annulus_mesh, box_mesh, uniform_spacing, BoxBc};

    fn two_mesh_system() -> Vec<Mesh> {
        let background = box_mesh(
            uniform_spacing(-2.0, 2.0, 17),
            uniform_spacing(-2.0, 2.0, 17),
            uniform_spacing(-2.0, 2.0, 17),
            BoxBc::wind_tunnel(),
        );
        let rotor = annulus_mesh(
            uniform_spacing(-0.5, 0.5, 5),
            uniform_spacing(0.2, 1.0, 7),
            24,
            [0.0, 0.0, 0.0],
        );
        vec![background, rotor]
    }

    #[test]
    fn hole_fringe_active_partition() {
        let mut meshes = two_mesh_system();
        let asm = assemble_overset(&mut meshes, 0.2);
        let holes = meshes[0]
            .status
            .iter()
            .filter(|s| **s == NodeStatus::Hole)
            .count();
        let fringe = meshes[0]
            .status
            .iter()
            .filter(|s| **s == NodeStatus::Fringe)
            .count();
        assert!(holes > 0, "hole cutting removed nothing");
        assert!(fringe > 0, "no fringe band");
        // Every background fringe has a receptor entry.
        assert_eq!(asm.receptors_of(0).count(), fringe);
        // All rotor outer-boundary nodes are receptors.
        let rotor_rec = asm.receptors_of(1).count();
        let expected = meshes[1]
            .boundary(BcKind::OversetReceptor)
            .unwrap()
            .nodes
            .len();
        assert_eq!(rotor_rec, expected);
    }

    #[test]
    fn donor_weights_are_convex() {
        let mut meshes = two_mesh_system();
        let asm = assemble_overset(&mut meshes, 0.2);
        for r in &asm.receptors {
            let sum: f64 = r.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(r.weights.iter().all(|&w| (-1e-12..=1.0 + 1e-12).contains(&w)));
            assert_ne!(r.mesh, r.donor_mesh);
        }
    }

    #[test]
    fn donors_interpolate_position() {
        let mut meshes = two_mesh_system();
        let asm = assemble_overset(&mut meshes, 0.2);
        for r in &asm.receptors {
            let p = meshes[r.mesh].coords[r.node];
            let donor = &meshes[r.donor_mesh];
            let mut q = [0.0; 3];
            for (n, w) in r.donor_nodes.iter().zip(&r.weights) {
                for (d, qd) in q.iter_mut().enumerate() {
                    *qd += donor.coords[*n][d] * w;
                }
            }
            for d in 0..3 {
                assert!(
                    (q[d] - p[d]).abs() < 0.05,
                    "donor stencil misses receptor: {p:?} vs {q:?}"
                );
            }
        }
    }

    #[test]
    fn no_hole_without_component_overlap() {
        // Rotor moved far outside the background: nothing is cut, and the
        // rotor receptor search must fail loudly.
        let background = box_mesh(
            uniform_spacing(-1.0, 1.0, 5),
            uniform_spacing(-1.0, 1.0, 5),
            uniform_spacing(-1.0, 1.0, 5),
            BoxBc::wind_tunnel(),
        );
        let rotor = annulus_mesh(
            uniform_spacing(10.0, 11.0, 3),
            uniform_spacing(0.2, 0.8, 4),
            12,
            [0.0, 0.0, 0.0],
        );
        let mut meshes = vec![background, rotor];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assemble_overset(&mut meshes, 0.2)
        }));
        assert!(result.is_err(), "receptors outside background must panic");
    }

    #[test]
    fn reassembly_after_rotation_changes_donors() {
        let mut meshes = two_mesh_system();
        let asm0 = assemble_overset(&mut meshes, 0.2);
        crate::motion::rotate_annulus(&mut meshes[1], 0.3);
        let asm1 = assemble_overset(&mut meshes, 0.2);
        // Same receptor sets (geometry of holes unchanged by rotation
        // about the axis), but donor stencils/weights move.
        assert_eq!(asm0.receptors.len(), asm1.receptors.len());
        let changed = asm0
            .receptors
            .iter()
            .zip(&asm1.receptors)
            .any(|(a, b)| a.donor_nodes != b.donor_nodes || a.weights != b.weights);
        assert!(changed, "rotation must update connectivity");
    }

    #[test]
    fn fringe_band_separates_holes_from_active() {
        let mut meshes = two_mesh_system();
        assemble_overset(&mut meshes, 0.2);
        // No edge may connect a Hole directly to an Active node.
        let bg = &meshes[0];
        for e in &bg.edges {
            let (sa, sb) = (bg.status[e.a], bg.status[e.b]);
            let bad = (sa == NodeStatus::Hole && sb == NodeStatus::Active)
                || (sb == NodeStatus::Hole && sa == NodeStatus::Active);
            assert!(!bad, "hole touches active node across edge");
        }
    }
}
