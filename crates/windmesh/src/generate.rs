//! Structured-latent mesh builders (box and annular cylinder) with exact
//! dual-volume/edge-area metrics, plus grid-line spacing utilities
//! (uniform and geometric boundary-layer grading).

use crate::mesh::{BcKind, BoundaryPatch, Edge, Latent, Mesh, NodeStatus};

/// Uniformly spaced grid lines from `a` to `b` with `n` nodes.
pub fn uniform_spacing(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two grid lines");
    (0..n)
        .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Geometrically graded grid lines: first interval `h0` at `a`, each
/// subsequent interval `ratio`× larger, rescaled to end exactly at `b`.
/// This is the boundary-layer grading that produces the high-aspect-ratio
/// cells of blade-resolved meshes.
pub fn geometric_spacing(a: f64, b: f64, n: usize, ratio: f64) -> Vec<f64> {
    assert!(n >= 2, "need at least two grid lines");
    assert!(ratio > 0.0, "ratio must be positive");
    let mut acc = vec![0.0; n];
    let mut h = 1.0;
    for i in 1..n {
        acc[i] = acc[i - 1] + h;
        h *= ratio;
    }
    let total = acc[n - 1];
    acc.iter().map(|&t| a + (b - a) * t / total).collect()
}

/// Half-interval dual widths of a grid-line array.
fn half_widths(g: &[f64]) -> Vec<f64> {
    let n = g.len();
    (0..n)
        .map(|i| {
            let left = if i > 0 { (g[i] - g[i - 1]) / 2.0 } else { 0.0 };
            let right = if i + 1 < n { (g[i + 1] - g[i]) / 2.0 } else { 0.0 };
            left + right
        })
        .collect()
}

/// Boundary kinds of the six faces of a box mesh, in
/// (xmin, xmax, ymin, ymax, zmin, zmax) order.
#[derive(Clone, Copy, Debug)]
pub struct BoxBc {
    /// xmin face.
    pub xmin: BcKind,
    /// xmax face.
    pub xmax: BcKind,
    /// ymin face.
    pub ymin: BcKind,
    /// ymax face.
    pub ymax: BcKind,
    /// zmin face.
    pub zmin: BcKind,
    /// zmax face.
    pub zmax: BcKind,
}

impl BoxBc {
    /// The paper's wind-tunnel setup: inflow/outflow in x, symmetry
    /// elsewhere.
    pub fn wind_tunnel() -> Self {
        BoxBc {
            xmin: BcKind::Inflow,
            xmax: BcKind::Outflow,
            ymin: BcKind::Symmetry,
            ymax: BcKind::Symmetry,
            zmin: BcKind::Symmetry,
            zmax: BcKind::Symmetry,
        }
    }
}

/// Build a tensor-product hex box mesh from grid-line arrays.
pub fn box_mesh(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>, bc: BoxBc) -> Mesh {
    let (nx, ny, nz) = (xs.len(), ys.len(), zs.len());
    assert!(nx >= 2 && ny >= 2 && nz >= 2, "box needs ≥2 lines per axis");
    let id = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;

    let mut coords = Vec::with_capacity(nx * ny * nz);
    for &x in &xs {
        for &y in &ys {
            for &z in &zs {
                coords.push([x, y, z]);
            }
        }
    }
    let mut hexes = Vec::with_capacity((nx - 1) * (ny - 1) * (nz - 1));
    for i in 0..nx - 1 {
        for j in 0..ny - 1 {
            for k in 0..nz - 1 {
                hexes.push([
                    id(i, j, k),
                    id(i + 1, j, k),
                    id(i + 1, j + 1, k),
                    id(i, j + 1, k),
                    id(i, j, k + 1),
                    id(i + 1, j, k + 1),
                    id(i + 1, j + 1, k + 1),
                    id(i, j + 1, k + 1),
                ]);
            }
        }
    }

    let (hx, hy, hz) = (half_widths(&xs), half_widths(&ys), half_widths(&zs));
    let mut node_volume = vec![0.0; coords.len()];
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                node_volume[id(i, j, k)] = hx[i] * hy[j] * hz[k];
            }
        }
    }

    let mut edges = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                if i + 1 < nx {
                    let area = hy[j] * hz[k];
                    let d = xs[i + 1] - xs[i];
                    edges.push(Edge {
                        a: id(i, j, k),
                        b: id(i + 1, j, k),
                        area_vec: [area, 0.0, 0.0],
                        area_over_dist: area / d,
                    });
                }
                if j + 1 < ny {
                    let area = hx[i] * hz[k];
                    let d = ys[j + 1] - ys[j];
                    edges.push(Edge {
                        a: id(i, j, k),
                        b: id(i, j + 1, k),
                        area_vec: [0.0, area, 0.0],
                        area_over_dist: area / d,
                    });
                }
                if k + 1 < nz {
                    let area = hx[i] * hy[j];
                    let d = zs[k + 1] - zs[k];
                    edges.push(Edge {
                        a: id(i, j, k),
                        b: id(i, j, k + 1),
                        area_vec: [0.0, 0.0, area],
                        area_over_dist: area / d,
                    });
                }
            }
        }
    }

    // Boundary patches: each of the six faces.
    let mut boundaries = Vec::new();
    let mut face = |kind: BcKind, nodes: Vec<usize>, normals: Vec<[f64; 3]>| {
        boundaries.push(BoundaryPatch {
            kind,
            nodes,
            normals,
        });
    };
    {
        let (mut n0, mut n1) = (Vec::new(), Vec::new());
        let (mut a0, mut a1) = (Vec::new(), Vec::new());
        for (j, &hyj) in hy.iter().enumerate() {
            for (k, &hzk) in hz.iter().enumerate() {
                let area = hyj * hzk;
                n0.push(id(0, j, k));
                a0.push([-area, 0.0, 0.0]);
                n1.push(id(nx - 1, j, k));
                a1.push([area, 0.0, 0.0]);
            }
        }
        face(bc.xmin, n0, a0);
        face(bc.xmax, n1, a1);
    }
    {
        let (mut n0, mut n1) = (Vec::new(), Vec::new());
        let (mut a0, mut a1) = (Vec::new(), Vec::new());
        for (i, &hxi) in hx.iter().enumerate() {
            for (k, &hzk) in hz.iter().enumerate() {
                let area = hxi * hzk;
                n0.push(id(i, 0, k));
                a0.push([0.0, -area, 0.0]);
                n1.push(id(i, ny - 1, k));
                a1.push([0.0, area, 0.0]);
            }
        }
        face(bc.ymin, n0, a0);
        face(bc.ymax, n1, a1);
    }
    {
        let (mut n0, mut n1) = (Vec::new(), Vec::new());
        let (mut a0, mut a1) = (Vec::new(), Vec::new());
        for (i, &hxi) in hx.iter().enumerate() {
            for (j, &hyj) in hy.iter().enumerate() {
                let area = hxi * hyj;
                n0.push(id(i, j, 0));
                a0.push([0.0, 0.0, -area]);
                n1.push(id(i, j, nz - 1));
                a1.push([0.0, 0.0, area]);
            }
        }
        face(bc.zmin, n0, a0);
        face(bc.zmax, n1, a1);
    }

    let n = coords.len();
    Mesh {
        coords,
        hexes,
        edges,
        node_volume,
        boundaries,
        status: vec![NodeStatus::Active; n],
        latent: Some(Latent::Box { xs, ys, zs }),
    }
}

/// Build an annular cylinder mesh: axis along +x through `center`,
/// radial lines `rs` (inner line = blade/hub wall), axial lines `xs`,
/// `n_theta` circumferential nodes (periodic). The inner ring is tagged
/// `Wall`; the outer ring and both axial ends are `OversetReceptor`.
pub fn annulus_mesh(xs: Vec<f64>, rs: Vec<f64>, n_theta: usize, center: [f64; 3]) -> Mesh {
    let (nx, nr, nt) = (xs.len(), rs.len(), n_theta);
    assert!(nx >= 2 && nr >= 2 && nt >= 3, "degenerate annulus");
    assert!(rs[0] > 0.0, "inner radius must be positive");
    let tau = std::f64::consts::TAU;
    let dth = tau / nt as f64;
    let id = |ix: usize, ir: usize, it: usize| (ix * nr + ir) * nt + it;

    let mut coords = Vec::with_capacity(nx * nr * nt);
    for &x in &xs {
        for &r in &rs {
            for it in 0..nt {
                let th = it as f64 * dth;
                coords.push([x, center[1] + r * th.cos(), center[2] + r * th.sin()]);
            }
        }
    }
    let mut hexes = Vec::with_capacity((nx - 1) * (nr - 1) * nt);
    for ix in 0..nx - 1 {
        for ir in 0..nr - 1 {
            for it in 0..nt {
                let it1 = (it + 1) % nt;
                hexes.push([
                    id(ix, ir, it),
                    id(ix + 1, ir, it),
                    id(ix + 1, ir + 1, it),
                    id(ix, ir + 1, it),
                    id(ix, ir, it1),
                    id(ix + 1, ir, it1),
                    id(ix + 1, ir + 1, it1),
                    id(ix, ir + 1, it1),
                ]);
            }
        }
    }

    let (hx, hr) = (half_widths(&xs), half_widths(&rs));
    let mut node_volume = vec![0.0; coords.len()];
    for ix in 0..nx {
        for ir in 0..nr {
            let v = hx[ix] * hr[ir] * rs[ir] * dth;
            for it in 0..nt {
                node_volume[id(ix, ir, it)] = v;
            }
        }
    }

    let unit = |a: [f64; 3], b: [f64; 3]| -> ([f64; 3], f64) {
        let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        ([d[0] / len, d[1] / len, d[2] / len], len)
    };
    let mut edges = Vec::new();
    for (ix, &hxix) in hx.iter().enumerate() {
        for ir in 0..nr {
            for it in 0..nt {
                let a = id(ix, ir, it);
                // Axial edge.
                if ix + 1 < nx {
                    let b = id(ix + 1, ir, it);
                    let area = hr[ir] * rs[ir] * dth;
                    let (u, len) = unit(coords[a], coords[b]);
                    edges.push(Edge {
                        a,
                        b,
                        area_vec: [u[0] * area, u[1] * area, u[2] * area],
                        area_over_dist: area / len,
                    });
                }
                // Radial edge.
                if ir + 1 < nr {
                    let b = id(ix, ir + 1, it);
                    let r_face = 0.5 * (rs[ir] + rs[ir + 1]);
                    let area = hxix * r_face * dth;
                    let (u, len) = unit(coords[a], coords[b]);
                    edges.push(Edge {
                        a,
                        b,
                        area_vec: [u[0] * area, u[1] * area, u[2] * area],
                        area_over_dist: area / len,
                    });
                }
                // Circumferential edge (wraps).
                {
                    let b = id(ix, ir, (it + 1) % nt);
                    if a < b || (it + 1) % nt == 0 {
                        // emit each wrap edge exactly once
                        let area = hxix * hr[ir];
                        let (u, len) = unit(coords[a], coords[b]);
                        edges.push(Edge {
                            a,
                            b,
                            area_vec: [u[0] * area, u[1] * area, u[2] * area],
                            area_over_dist: area / len,
                        });
                    }
                }
            }
        }
    }

    // Boundaries: inner wall, outer + axial receptor rings.
    let mut wall_nodes = Vec::new();
    let mut wall_normals = Vec::new();
    let mut rec_nodes = Vec::new();
    let mut rec_normals = Vec::new();
    for (ix, &hxix) in hx.iter().enumerate() {
        for it in 0..nt {
            let th = it as f64 * dth;
            // Inner ring: wall, normal pointing inward (−r̂).
            let area_in = hxix * rs[0] * dth;
            wall_nodes.push(id(ix, 0, it));
            wall_normals.push([0.0, -th.cos() * area_in, -th.sin() * area_in]);
            // Outer ring: receptor.
            let area_out = hxix * rs[nr - 1] * dth;
            rec_nodes.push(id(ix, nr - 1, it));
            rec_normals.push([0.0, th.cos() * area_out, th.sin() * area_out]);
        }
    }
    for ir in 0..nr {
        for it in 0..nt {
            let area = hr[ir] * rs[ir] * dth;
            rec_nodes.push(id(0, ir, it));
            rec_normals.push([-area, 0.0, 0.0]);
            rec_nodes.push(id(nx - 1, ir, it));
            rec_normals.push([area, 0.0, 0.0]);
        }
    }

    let n = coords.len();
    Mesh {
        coords,
        hexes,
        edges,
        node_volume,
        boundaries: vec![
            BoundaryPatch {
                kind: BcKind::Wall,
                nodes: wall_nodes,
                normals: wall_normals,
            },
            BoundaryPatch {
                kind: BcKind::OversetReceptor,
                nodes: rec_nodes,
                normals: rec_normals,
            },
        ],
        status: vec![NodeStatus::Active; n],
        latent: Some(Latent::Annulus {
            xs,
            rs,
            n_theta: nt,
            center,
            angle: 0.0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_geometric_spacings() {
        let u = uniform_spacing(0.0, 1.0, 5);
        assert_eq!(u, vec![0.0, 0.25, 0.5, 0.75, 1.0]);

        let g = geometric_spacing(0.0, 1.0, 4, 2.0);
        // Intervals 1:2:4, scaled to sum 1.
        assert!((g[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!((g[2] - 3.0 / 7.0).abs() < 1e-12);
        assert!((g[3] - 1.0).abs() < 1e-12);
        // Grading ratio preserved.
        let h0 = g[1] - g[0];
        let h1 = g[2] - g[1];
        assert!((h1 / h0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_mesh_counts_and_volume() {
        let m = box_mesh(
            uniform_spacing(0.0, 2.0, 3),
            uniform_spacing(0.0, 1.0, 2),
            uniform_spacing(0.0, 1.0, 2),
            BoxBc::wind_tunnel(),
        );
        assert_eq!(m.n_nodes(), 12);
        assert_eq!(m.n_elems(), 2);
        // Edges: x: 2*4, y: 3*2*... count via formula: nx-1)*ny*nz + ...
        assert_eq!(m.edges.len(), 2 * 4 + 3 * 2 + 3 * 2);
        assert!((m.total_volume() - 2.0).abs() < 1e-12);
        assert!(m.max_aspect_ratio() < 2.0 + 1e-9);
    }

    #[test]
    fn box_boundaries_cover_faces() {
        let m = box_mesh(
            uniform_spacing(0.0, 1.0, 3),
            uniform_spacing(0.0, 1.0, 3),
            uniform_spacing(0.0, 1.0, 3),
            BoxBc::wind_tunnel(),
        );
        let inflow = m.boundary(BcKind::Inflow).unwrap();
        assert_eq!(inflow.nodes.len(), 9);
        // Inflow normals point -x and total the face area (1.0).
        let total: f64 = inflow.normals.iter().map(|n| -n[0]).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(inflow.normals.iter().all(|n| n[0] < 0.0));
    }

    #[test]
    fn graded_box_has_high_aspect_ratio() {
        let m = box_mesh(
            geometric_spacing(0.0, 1.0, 12, 1.5),
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            BoxBc::wind_tunnel(),
        );
        assert!(
            m.max_aspect_ratio() > 10.0,
            "grading should produce stretched cells: {}",
            m.max_aspect_ratio()
        );
    }

    #[test]
    fn box_locate_round_trip() {
        let m = box_mesh(
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            uniform_spacing(0.0, 1.0, 4),
            BoxBc::wind_tunnel(),
        );
        let p = [0.4, 0.7, 0.2];
        let (nodes, w) = m.locate(p).unwrap();
        // Interpolating coordinates recovers the point.
        let mut q = [0.0; 3];
        for (n, wt) in nodes.iter().zip(&w) {
            for (d, qd) in q.iter_mut().enumerate() {
                *qd += m.coords[*n][d] * wt;
            }
        }
        for d in 0..3 {
            assert!((q[d] - p[d]).abs() < 1e-12);
        }
        assert!(m.locate([1.5, 0.0, 0.0]).is_none());
        assert!(m.contains([0.0, 0.0, 0.0]));
    }

    #[test]
    fn annulus_counts_and_volume() {
        let m = annulus_mesh(
            uniform_spacing(-1.0, 1.0, 5),
            uniform_spacing(0.5, 1.5, 6),
            16,
            [0.0, 0.0, 0.0],
        );
        assert_eq!(m.n_nodes(), 5 * 6 * 16);
        assert_eq!(m.n_elems(), 4 * 5 * 16);
        // Volume of the annular cylinder: π(R²−r²)L = π(2.25−0.25)*2.
        let exact = std::f64::consts::PI * 2.0 * 2.0;
        let rel = (m.total_volume() - exact).abs() / exact;
        assert!(rel < 0.02, "volume off by {rel}");
    }

    #[test]
    fn annulus_locate_round_trip() {
        let m = annulus_mesh(
            uniform_spacing(-1.0, 1.0, 5),
            uniform_spacing(0.5, 1.5, 6),
            32,
            [0.0, 0.0, 0.0],
        );
        for p in [[0.3, 0.9, 0.4], [-0.5, -0.7, 0.3], [0.0, 0.0, 1.2]] {
            let (nodes, w) = m.locate(p).unwrap();
            let mut q = [0.0; 3];
            for (n, wt) in nodes.iter().zip(&w) {
                for (d, qd) in q.iter_mut().enumerate() {
                    *qd += m.coords[*n][d] * wt;
                }
            }
            // Trilinear-in-latent is only approximately linear in
            // physical space on the curved annulus: tolerance scales with
            // the circumferential resolution.
            for d in 0..3 {
                assert!((q[d] - p[d]).abs() < 0.02, "{p:?} -> {q:?}");
            }
        }
        // Inside the hub hole (r < 0.5): not contained.
        assert!(!m.contains([0.0, 0.1, 0.1]));
        // Outside the outer radius: not contained.
        assert!(!m.contains([0.0, 2.0, 0.0]));
    }

    #[test]
    fn annulus_wall_is_inner_ring() {
        let m = annulus_mesh(
            uniform_spacing(0.0, 1.0, 3),
            uniform_spacing(0.25, 1.0, 4),
            8,
            [0.0, 0.0, 0.0],
        );
        let wall = m.boundary(BcKind::Wall).unwrap();
        assert_eq!(wall.nodes.len(), 3 * 8);
        for &n in &wall.nodes {
            let c = m.coords[n];
            let r = (c[1] * c[1] + c[2] * c[2]).sqrt();
            assert!((r - 0.25).abs() < 1e-12);
        }
        // Receptor patch exists and has outer + end nodes.
        let rec = m.boundary(BcKind::OversetReceptor).unwrap();
        assert_eq!(rec.nodes.len(), 3 * 8 + 2 * 4 * 8);
    }

    #[test]
    fn bl_graded_annulus_is_anisotropic_near_wall() {
        let m = annulus_mesh(
            uniform_spacing(0.0, 4.0, 5),
            geometric_spacing(0.1, 2.0, 14, 1.6),
            24,
            [0.0, 0.0, 0.0],
        );
        assert!(
            m.max_aspect_ratio() > 20.0,
            "boundary-layer grading should be strongly anisotropic: {}",
            m.max_aspect_ratio()
        );
    }
}
