//! Unstructured turbine meshes, overset assembly, and rotor motion.
//!
//! The stand-in for the STK/TIOGA layer of the paper (§2): node-centered
//! unstructured hex meshes with edge-based finite-volume metrics, the
//! blade-resolved-style mesh generators behind Table 1 (graded rotor
//! meshes with high-aspect-ratio boundary-layer cells embedded in a
//! wake-capturing background box), TIOGA-style overset assembly (hole
//! cutting, fringe identification, donor search with trilinear weights),
//! and rigid rotor rotation with per-step connectivity updates.
//!
//! Meshes are *stored* unstructured (node coordinates, hex connectivity,
//! edge list) — the generators additionally retain their latent
//! structured parameterization, which stands in for TIOGA's geometric
//! search structures: donor location inverts the latent map instead of
//! walking an ADT. See DESIGN.md for why this preserves the behaviours
//! the paper measures.

pub mod generate;
pub mod mesh;
pub mod motion;
pub mod overset;
pub mod turbine;

pub use mesh::{BcKind, BoundaryPatch, Edge, Mesh, NodeStatus};
pub use overset::{OversetAssembly, Receptor};
pub use turbine::{NrelCase, TurbineMeshes};
