//! Core unstructured-mesh types with edge-based finite-volume metrics.

/// Boundary-condition kind of a mesh side set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcKind {
    /// Prescribed velocity inflow.
    Inflow,
    /// Pressure outflow.
    Outflow,
    /// Symmetry (slip) plane.
    Symmetry,
    /// No-slip wall (blade/hub surface).
    Wall,
    /// Outer boundary of an overset component mesh: receives its values
    /// from a donor mesh.
    OversetReceptor,
}

/// A mesh edge carrying dual-face finite-volume metrics: the off-diagonal
/// coupling of the node-centered edge-based scheme (≈7–9 nonzeros per
/// matrix row, matching the paper's "on average eight entries per row").
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Dual-face area vector, oriented a → b.
    pub area_vec: [f64; 3],
    /// Dual-face area divided by the edge length (the diffusion metric).
    pub area_over_dist: f64,
}

/// Overset status of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Normal computational node.
    Active,
    /// Blanked by hole cutting: excluded from the discretization.
    Hole,
    /// Receives its value by interpolation from a donor mesh.
    Fringe,
}

/// One boundary side set.
#[derive(Clone, Debug)]
pub struct BoundaryPatch {
    /// What the patch models.
    pub kind: BcKind,
    /// Member nodes.
    pub nodes: Vec<usize>,
    /// Outward area vector per member node.
    pub normals: Vec<[f64; 3]>,
}

/// Latent structured parameterization retained by the generators
/// (stands in for TIOGA's geometric search trees).
#[derive(Clone, Debug)]
pub enum Latent {
    /// Tensor-product box: node (i,j,k) at (xs\[i\], ys\[j\], zs\[k\]).
    Box {
        /// Grid line coordinates per axis.
        xs: Vec<f64>,
        /// Grid line coordinates per axis.
        ys: Vec<f64>,
        /// Grid line coordinates per axis.
        zs: Vec<f64>,
    },
    /// Annular cylinder with axis along +x through `center`, periodic in
    /// θ; `angle` is the current rigid rotation about the axis.
    Annulus {
        /// Axial grid line coordinates.
        xs: Vec<f64>,
        /// Radial grid line coordinates (boundary-layer graded).
        rs: Vec<f64>,
        /// Number of circumferential nodes.
        n_theta: usize,
        /// A point on the rotation axis.
        center: [f64; 3],
        /// Current rotation angle (radians).
        angle: f64,
    },
}

/// A node-centered unstructured hex mesh.
#[derive(Clone, Debug)]
pub struct Mesh {
    /// Node coordinates.
    pub coords: Vec<[f64; 3]>,
    /// Hex connectivity (8 node ids per element).
    pub hexes: Vec<[usize; 8]>,
    /// Edge list with dual metrics.
    pub edges: Vec<Edge>,
    /// Dual (control) volume per node.
    pub node_volume: Vec<f64>,
    /// Boundary side sets.
    pub boundaries: Vec<BoundaryPatch>,
    /// Overset status per node (all `Active` for a standalone mesh).
    pub status: Vec<NodeStatus>,
    /// Latent parameterization (donor search, motion).
    pub latent: Option<Latent>,
}

impl Mesh {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of hex elements.
    pub fn n_elems(&self) -> usize {
        self.hexes.len()
    }

    /// Sum of all dual volumes (= mesh volume).
    pub fn total_volume(&self) -> f64 {
        self.node_volume.iter().sum()
    }

    /// Node-to-node adjacency as an edge list for graph partitioning;
    /// edge weight = dual-face coupling strength.
    pub fn adjacency(&self) -> Vec<(usize, usize, f64)> {
        self.edges
            .iter()
            .map(|e| (e.a, e.b, e.area_over_dist.max(1e-300)))
            .collect()
    }

    /// Largest cell aspect ratio, estimated per node as (longest incident
    /// edge)/(shortest incident edge) — the high-aspect-ratio measure of
    /// blade boundary-layer meshes.
    pub fn max_aspect_ratio(&self) -> f64 {
        let n = self.n_nodes();
        let mut min_len = vec![f64::INFINITY; n];
        let mut max_len = vec![0.0f64; n];
        for e in &self.edges {
            let d = dist(self.coords[e.a], self.coords[e.b]);
            for &v in &[e.a, e.b] {
                min_len[v] = min_len[v].min(d);
                max_len[v] = max_len[v].max(d);
            }
        }
        (0..n)
            .map(|v| {
                if min_len[v] > 0.0 && min_len[v].is_finite() {
                    max_len[v] / min_len[v]
                } else {
                    1.0
                }
            })
            .fold(1.0, f64::max)
    }

    /// The boundary patch of a kind, if present.
    pub fn boundary(&self, kind: BcKind) -> Option<&BoundaryPatch> {
        self.boundaries.iter().find(|p| p.kind == kind)
    }

    /// Whether `p` lies inside the mesh's latent domain.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        self.locate(p).is_some()
    }

    /// Locate the hex containing `p` via the latent map; returns the
    /// element's nodes with trilinear interpolation weights.
    pub fn locate(&self, p: [f64; 3]) -> Option<([usize; 8], [f64; 8])> {
        let latent = self.latent.as_ref()?;
        match latent {
            Latent::Box { xs, ys, zs } => {
                let (i, u) = bracket(xs, p[0])?;
                let (j, v) = bracket(ys, p[1])?;
                let (k, w) = bracket(zs, p[2])?;
                let (ny, nz) = (ys.len(), zs.len());
                let id = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
                let nodes = [
                    id(i, j, k),
                    id(i + 1, j, k),
                    id(i + 1, j + 1, k),
                    id(i, j + 1, k),
                    id(i, j, k + 1),
                    id(i + 1, j, k + 1),
                    id(i + 1, j + 1, k + 1),
                    id(i, j + 1, k + 1),
                ];
                Some((nodes, trilinear(u, v, w)))
            }
            Latent::Annulus {
                xs,
                rs,
                n_theta,
                center,
                angle,
            } => {
                let dy = p[1] - center[1];
                let dz = p[2] - center[2];
                let r = (dy * dy + dz * dz).sqrt();
                let (ix, u) = bracket(xs, p[0])?;
                let (ir, v) = bracket(rs, r)?;
                // θ measured in the unrotated frame.
                let theta = (dz.atan2(dy) - angle).rem_euclid(std::f64::consts::TAU);
                let nt = *n_theta;
                let dt = std::f64::consts::TAU / nt as f64;
                let it = ((theta / dt).floor() as usize).min(nt - 1);
                let w = (theta - it as f64 * dt) / dt;
                let it1 = (it + 1) % nt;
                let nr = rs.len();
                let id = |ix: usize, ir: usize, it: usize| (ix * nr + ir) * nt + it;
                let nodes = [
                    id(ix, ir, it),
                    id(ix + 1, ir, it),
                    id(ix + 1, ir + 1, it),
                    id(ix, ir + 1, it),
                    id(ix, ir, it1),
                    id(ix + 1, ir, it1),
                    id(ix + 1, ir + 1, it1),
                    id(ix, ir + 1, it1),
                ];
                Some((nodes, trilinear(u, v, w)))
            }
        }
    }
}

/// Euclidean distance.
pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
    (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
}

/// Find `i` with `grid[i] <= v <= grid[i+1]`, returning the fractional
/// position; `None` outside the grid.
fn bracket(grid: &[f64], v: f64) -> Option<(usize, f64)> {
    if grid.len() < 2 || v < grid[0] || v > *grid.last().unwrap() {
        return None;
    }
    let i = match grid.binary_search_by(|g| g.partial_cmp(&v).unwrap()) {
        Ok(i) => i.min(grid.len() - 2),
        Err(i) => i - 1,
    };
    let frac = (v - grid[i]) / (grid[i + 1] - grid[i]);
    Some((i, frac.clamp(0.0, 1.0)))
}

/// Trilinear weights for the standard hex corner ordering used here:
/// corners 0..3 at w=0 (u,v CCW), 4..7 at w=1.
fn trilinear(u: f64, v: f64, w: f64) -> [f64; 8] {
    [
        (1.0 - u) * (1.0 - v) * (1.0 - w),
        u * (1.0 - v) * (1.0 - w),
        u * v * (1.0 - w),
        (1.0 - u) * v * (1.0 - w),
        (1.0 - u) * (1.0 - v) * w,
        u * (1.0 - v) * w,
        u * v * w,
        (1.0 - u) * v * w,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_finds_interval() {
        let grid = [0.0, 1.0, 3.0, 6.0];
        assert_eq!(bracket(&grid, 0.5), Some((0, 0.5)));
        assert_eq!(bracket(&grid, 2.0), Some((1, 0.5)));
        assert_eq!(bracket(&grid, 6.0), Some((2, 1.0)));
        assert_eq!(bracket(&grid, 0.0), Some((0, 0.0)));
        assert!(bracket(&grid, -0.1).is_none());
        assert!(bracket(&grid, 6.1).is_none());
    }

    #[test]
    fn trilinear_weights_partition_unity() {
        for &(u, v, w) in &[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (0.3, 0.7, 0.2)] {
            let wts = trilinear(u, v, w);
            let sum: f64 = wts.iter().sum();
            assert!((sum - 1.0).abs() < 1e-14);
            assert!(wts.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // Corner (0,0,0) puts all weight on node 0.
        assert_eq!(trilinear(0.0, 0.0, 0.0)[0], 1.0);
        assert_eq!(trilinear(1.0, 1.0, 1.0)[6], 1.0);
    }

    #[test]
    fn dist_is_euclidean() {
        assert_eq!(dist([0.0; 3], [3.0, 4.0, 0.0]), 5.0);
    }
}
