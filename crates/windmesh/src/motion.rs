//! Rigid rotor motion.
//!
//! "The Nalu-Wind meshes are, in general, moving with the turbine through
//! rotor rotation. Meshes are coupled through the overset method, for
//! which connectivity must be continually updated as the meshes move."
//! (§2). Rotation is rigid about the annulus axis (+x): coordinates,
//! boundary normals, and edge area vectors rotate; dual volumes and the
//! scalar diffusion metrics are invariant.

use crate::mesh::{Latent, Mesh};

/// Rotate an annulus mesh by `dangle` radians about its axis. Updates the
/// latent angle so donor search stays consistent.
///
/// # Panics
///
/// Panics if the mesh has no annulus latent.
pub fn rotate_annulus(mesh: &mut Mesh, dangle: f64) {
    let center = match mesh.latent.as_mut() {
        Some(Latent::Annulus { center, angle, .. }) => {
            *angle += dangle;
            *center
        }
        _ => panic!("rotate_annulus requires an annulus mesh"),
    };
    let (s, c) = dangle.sin_cos();
    let rot_point = |p: &mut [f64; 3]| {
        let dy = p[1] - center[1];
        let dz = p[2] - center[2];
        p[1] = center[1] + c * dy - s * dz;
        p[2] = center[2] + s * dy + c * dz;
    };
    let rot_vec = |v: &mut [f64; 3]| {
        let (vy, vz) = (v[1], v[2]);
        v[1] = c * vy - s * vz;
        v[2] = s * vy + c * vz;
    };
    for p in &mut mesh.coords {
        rot_point(p);
    }
    for e in &mut mesh.edges {
        rot_vec(&mut e.area_vec);
    }
    for patch in &mut mesh.boundaries {
        for n in &mut patch.normals {
            rot_vec(n);
        }
    }
}

/// Current rotation angle of an annulus mesh.
pub fn rotor_angle(mesh: &Mesh) -> f64 {
    match &mesh.latent {
        Some(Latent::Annulus { angle, .. }) => *angle,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{annulus_mesh, uniform_spacing};

    fn rotor() -> Mesh {
        annulus_mesh(
            uniform_spacing(-0.5, 0.5, 3),
            uniform_spacing(0.3, 1.0, 4),
            12,
            [0.0, 0.0, 0.0],
        )
    }

    #[test]
    fn rotation_preserves_volumes_and_radii() {
        let mut m = rotor();
        let vol0 = m.total_volume();
        let radii0: Vec<f64> = m
            .coords
            .iter()
            .map(|c| (c[1] * c[1] + c[2] * c[2]).sqrt())
            .collect();
        rotate_annulus(&mut m, 0.37);
        assert!((m.total_volume() - vol0).abs() < 1e-12);
        for (c, &r0) in m.coords.iter().zip(&radii0) {
            let r = (c[1] * c[1] + c[2] * c[2]).sqrt();
            assert!((r - r0).abs() < 1e-12);
        }
        assert!((rotor_angle(&m) - 0.37).abs() < 1e-15);
    }

    #[test]
    fn full_turn_returns_to_start() {
        let mut m = rotor();
        let coords0 = m.coords.clone();
        for _ in 0..8 {
            rotate_annulus(&mut m, std::f64::consts::TAU / 8.0);
        }
        for (c, c0) in m.coords.iter().zip(&coords0) {
            for d in 0..3 {
                assert!((c[d] - c0[d]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn locate_tracks_rotation() {
        let mut m = rotor();
        // A point fixed in space stays locatable as the mesh rotates, and
        // interpolating coordinates still recovers it.
        let p = [0.0, 0.65, 0.0];
        for _ in 0..5 {
            rotate_annulus(&mut m, 0.21);
            let (nodes, w) = m.locate(p).expect("point inside annulus");
            let mut q = [0.0; 3];
            for (n, wt) in nodes.iter().zip(&w) {
                for (d, qd) in q.iter_mut().enumerate() {
                    *qd += m.coords[*n][d] * wt;
                }
            }
            for d in 0..3 {
                assert!((q[d] - p[d]).abs() < 0.05, "{q:?} vs {p:?}");
            }
        }
    }

    #[test]
    fn edge_metrics_rotate_rigidly() {
        let mut m = rotor();
        let mags0: Vec<f64> = m
            .edges
            .iter()
            .map(|e| {
                (e.area_vec[0] * e.area_vec[0]
                    + e.area_vec[1] * e.area_vec[1]
                    + e.area_vec[2] * e.area_vec[2])
                    .sqrt()
            })
            .collect();
        let aod0: Vec<f64> = m.edges.iter().map(|e| e.area_over_dist).collect();
        rotate_annulus(&mut m, 1.1);
        for (e, (&m0, &a0)) in m.edges.iter().zip(mags0.iter().zip(&aod0)) {
            let mag = (e.area_vec[0] * e.area_vec[0]
                + e.area_vec[1] * e.area_vec[1]
                + e.area_vec[2] * e.area_vec[2])
                .sqrt();
            assert!((mag - m0).abs() < 1e-12);
            assert_eq!(e.area_over_dist, a0);
        }
    }

    #[test]
    #[should_panic(expected = "annulus")]
    fn box_mesh_cannot_rotate() {
        let mut m = crate::generate::box_mesh(
            uniform_spacing(0.0, 1.0, 2),
            uniform_spacing(0.0, 1.0, 2),
            uniform_spacing(0.0, 1.0, 2),
            crate::generate::BoxBc::wind_tunnel(),
        );
        rotate_annulus(&mut m, 0.1);
    }
}
