//! The preconditioner interface shared by smoothers, AMG, and GMRES.

use distmat::ParVector;
use parcomm::Rank;

/// Approximately applies M⁻¹ to a residual. All implementations must be
/// collective-safe: every rank calls `apply` together.
pub trait Preconditioner {
    /// z ≈ M⁻¹ r.
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector;
}

/// No preconditioning: z = r.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, _rank: &Rank, r: &ParVector) -> ParVector {
        r.clone()
    }
}

/// Diagonal (Jacobi) preconditioning: z = ω D⁻¹ r.
#[derive(Clone, Debug)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
    omega: f64,
}

impl JacobiPrecond {
    /// Build from a matrix diagonal.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal entry is zero.
    pub fn new(diag: &[f64], omega: f64) -> Self {
        let inv_diag = diag
            .iter()
            .map(|&d| {
                assert!(d != 0.0, "zero diagonal entry");
                1.0 / d
            })
            .collect();
        JacobiPrecond { inv_diag, omega }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = r.clone();
        let (b, f) = sparse_kit::cost::blas1(z.local.len(), 3);
        rank.kernel(parcomm::KernelKind::Stream, b, f);
        for (zi, &di) in z.local.iter_mut().zip(&self.inv_diag) {
            *zi *= self.omega * di;
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmat::RowDist;
    use parcomm::Comm;

    #[test]
    fn identity_returns_input() {
        Comm::run(2, |rank| {
            let dist = RowDist::block(4, 2);
            let r = ParVector::from_fn(rank, dist, |g| g as f64);
            let z = IdentityPrecond.apply(rank, &r);
            assert_eq!(z.local, r.local);
        });
    }

    #[test]
    fn jacobi_scales_by_inverse_diagonal() {
        Comm::run(1, |rank| {
            let dist = RowDist::block(3, 1);
            let r = ParVector::from_fn(rank, dist, |_| 6.0);
            let p = JacobiPrecond::new(&[2.0, 3.0, 6.0], 1.0);
            let z = p.apply(rank, &r);
            assert_eq!(z.local, vec![3.0, 2.0, 1.0]);
        });
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn jacobi_rejects_zero_diag() {
        JacobiPrecond::new(&[1.0, 0.0], 1.0);
    }
}
