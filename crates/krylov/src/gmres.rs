//! Restarted, right-preconditioned GMRES with classical and one-reduce
//! orthogonalization.
//!
//! The Nalu-Wind time integrator uses the *one-reduce* GMRES of
//! Świrydowicz/Langou/Ananthan/Yang/Thomas [39]: per iteration, all
//! Gram-Schmidt inner products and the norm of the new basis vector are
//! folded into a single global reduction, instead of the `j+2`
//! reductions classical MGS needs. On thousands of GPUs the collective
//! count is the scaling bottleneck, which is what the machine model
//! prices.

use distmat::{ParCsr, ParVector};
use parcomm::{KernelKind, Rank};
use resilience::SolveError;
use sparse_kit::cost;

use crate::precond::Preconditioner;

/// A restart cycle must shrink the residual by at least this factor or
/// the solve is declared [stagnated](SolveError::GmresStagnation).
const STAGNATION_FACTOR: f64 = 0.999;

/// Orthogonalization strategy for the Arnoldi basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrthoStrategy {
    /// Modified Gram-Schmidt: one global reduction per basis vector,
    /// plus one for the norm (`j+2` per iteration).
    ClassicalMgs,
    /// Low-synchronization one-reduce MGS: a single fused reduction per
    /// iteration delivering all inner products and the norm (Pythagorean
    /// update).
    OneReduce,
}

/// GMRES configuration.
#[derive(Clone, Copy, Debug)]
pub struct Gmres {
    /// Restart length m.
    pub restart: usize,
    /// Maximum total iterations.
    pub max_iters: usize,
    /// Relative residual tolerance ‖r‖/‖b‖.
    pub tol: f64,
    /// Orthogonalization strategy.
    pub ortho: OrthoStrategy,
}

impl Default for Gmres {
    fn default() -> Self {
        Gmres {
            restart: 50,
            max_iters: 200,
            tol: 1e-8,
            ortho: OrthoStrategy::OneReduce,
        }
    }
}

/// Convergence report.
#[derive(Clone, Debug)]
pub struct GmresStats {
    /// Iterations performed.
    pub iters: usize,
    /// Final relative residual (‖b − Ax‖/‖b‖, from the recurrence).
    pub rel_residual: f64,
    /// Per-iteration relative residual history.
    pub history: Vec<f64>,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

impl Gmres {
    /// Solve A·x = b with right preconditioning, updating `x` in place.
    /// Collective.
    ///
    /// # Errors
    ///
    /// Fails fast with a typed [`SolveError`] instead of burning
    /// iterations on a poisoned recurrence:
    ///
    /// - [`SolveError::NonFiniteResidual`] — the residual recurrence went
    ///   NaN/Inf (a single NaN in A, b, or a halo payload poisons the
    ///   very first norm).
    /// - [`SolveError::GmresBreakdown`] — a zero or non-finite Hessenberg
    ///   pivot while the residual is still above tolerance (happy
    ///   breakdown at tolerance still converges normally).
    /// - [`SolveError::GmresStagnation`] — a full restart cycle shrank
    ///   the residual by less than 0.1%.
    ///
    /// All triggering quantities come from allreduced reductions, so
    /// every rank takes the same branch. Exhausting `max_iters` is *not*
    /// an error: it returns `Ok` with `converged: false`, as before.
    pub fn solve(
        &self,
        rank: &Rank,
        a: &ParCsr,
        b: &ParVector,
        x: &mut ParVector,
        m: &dyn Preconditioner,
    ) -> Result<GmresStats, SolveError> {
        let b_norm = b.norm2(rank);
        let b_norm = if b_norm == 0.0 { 1.0 } else { b_norm };
        let mut history = Vec::new();
        let mut total_iters = 0usize;
        let mut prev_restart_rel: Option<f64> = None;
        // Stagnation is only judged after a cycle that ran the full
        // restart length: a cycle that broke early on the *recurrence*
        // tolerance can leave a larger true residual (recurrence drift
        // near machine precision) and legitimately recovers on restart.
        let mut last_cycle_full = false;

        loop {
            // Arnoldi basis V and preconditioned basis Z (right precond).
            let mut r = a.residual(rank, b, x);
            let beta = r.norm2(rank);
            let rel = beta / b_norm;
            if !rel.is_finite() {
                return Err(SolveError::NonFiniteResidual {
                    context: rank.phase_name(),
                    iter: total_iters,
                });
            }
            if history.is_empty() {
                history.push(rel);
            }
            if rel <= self.tol || total_iters >= self.max_iters {
                let stats = GmresStats {
                    iters: total_iters,
                    rel_residual: rel,
                    converged: rel <= self.tol,
                    history,
                };
                self.emit_telemetry(rank, &stats);
                return Ok(stats);
            }
            if last_cycle_full {
                if let Some(prev) = prev_restart_rel {
                    if rel >= STAGNATION_FACTOR * prev {
                        return Err(SolveError::GmresStagnation {
                            iters: total_iters,
                            rel,
                        });
                    }
                }
            }
            prev_restart_rel = Some(rel);
            r.scale(rank, 1.0 / beta);
            let mut v: Vec<ParVector> = vec![r];
            let mut z: Vec<ParVector> = Vec::new();
            // Hessenberg in column-major: h[j] has j+2 entries.
            let mut h: Vec<Vec<f64>> = Vec::new();
            // Givens rotations and the rotated RHS.
            let mut cs: Vec<f64> = Vec::new();
            let mut sn: Vec<f64> = Vec::new();
            let mut g = vec![0.0; self.restart + 1];
            g[0] = beta;

            let mut j = 0;
            let mut broke_early = false;
            while j < self.restart && total_iters < self.max_iters {
                let zj = m.apply(rank, &v[j]);
                let mut w = a.spmv(rank, &zj);
                z.push(zj);

                let mut hj = match self.ortho {
                    OrthoStrategy::ClassicalMgs => self.mgs(rank, &v, &mut w, j),
                    OrthoStrategy::OneReduce => self.one_reduce(rank, &v, &mut w, j),
                };
                let hlast = hj[j + 1];
                if !hlast.is_finite() {
                    return Err(SolveError::GmresBreakdown {
                        iter: total_iters,
                        pivot: hlast,
                    });
                }
                if hlast > 0.0 {
                    w.scale(rank, 1.0 / hlast);
                }
                v.push(w);

                // Apply accumulated Givens rotations to the new column.
                for i in 0..j {
                    let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                    hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                    hj[i] = t;
                }
                let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
                let (c, s) = if denom == 0.0 {
                    (1.0, 0.0)
                } else {
                    (hj[j] / denom, hj[j + 1] / denom)
                };
                cs.push(c);
                sn.push(s);
                hj[j] = c * hj[j] + s * hj[j + 1];
                hj[j + 1] = 0.0;
                g[j + 1] = -s * g[j];
                g[j] *= c;
                h.push(hj);

                total_iters += 1;
                j += 1;
                let rel = g[j].abs() / b_norm;
                history.push(rel);
                if !rel.is_finite() {
                    return Err(SolveError::NonFiniteResidual {
                        context: rank.phase_name(),
                        iter: total_iters,
                    });
                }
                if rel <= self.tol {
                    broke_early = true;
                    break;
                }
                if hlast == 0.0 {
                    // Krylov space exhausted with the residual still above
                    // tolerance: a genuine (non-happy) breakdown.
                    return Err(SolveError::GmresBreakdown {
                        iter: total_iters,
                        pivot: 0.0,
                    });
                }
            }

            last_cycle_full = !broke_early;

            // Back substitution: y = H⁻¹ g.
            let mut y = vec![0.0; j];
            for i in (0..j).rev() {
                let mut acc = g[i];
                for k in i + 1..j {
                    acc -= h[k][i] * y[k];
                }
                y[i] = acc / h[i][i];
            }
            // x += Z y (right preconditioning: correction in Z space).
            for (k, yk) in y.iter().enumerate() {
                x.axpy(rank, *yk, &z[k]);
            }
            // Loop continues: recompute the true residual and restart or
            // exit at the top.
        }
    }

    /// Record the finished solve on this rank's telemetry dispatcher.
    /// No-op (one thread-local read) when telemetry is disabled, so the
    /// solve path is unperturbed in normal runs.
    fn emit_telemetry(&self, rank: &Rank, stats: &GmresStats) {
        let tel = telemetry::current();
        if !tel.is_enabled() {
            return;
        }
        tel.observe("gmres.iters", stats.iters as f64);
        tel.record(telemetry::Event::Gmres {
            rank: rank.rank(),
            path: tel.current_path(),
            iters: stats.iters,
            final_rel: stats.rel_residual,
            converged: stats.converged,
            history: stats.history.clone(),
        });
    }

    /// Classical modified Gram-Schmidt: j+1 dot-product reductions plus a
    /// norm reduction.
    fn mgs(&self, rank: &Rank, v: &[ParVector], w: &mut ParVector, j: usize) -> Vec<f64> {
        let mut hj = vec![0.0; j + 2];
        for (i, vi) in v.iter().enumerate().take(j + 1) {
            let hij = w.dot(rank, vi); // one allreduce each
            hj[i] = hij;
            w.axpy(rank, -hij, vi);
        }
        hj[j + 1] = w.norm2(rank); // one more allreduce
        hj
    }

    /// One-reduce MGS: all inner products and ‖w‖² in a single fused
    /// reduction; the new norm comes from the Pythagorean identity.
    fn one_reduce(
        &self,
        rank: &Rank,
        v: &[ParVector],
        w: &mut ParVector,
        j: usize,
    ) -> Vec<f64> {
        // Local fused dot products: [wᵀv_0, ..., wᵀv_j, wᵀw].
        let n = w.local.len();
        let mut local = vec![0.0; j + 2];
        for (i, vi) in v.iter().enumerate().take(j + 1) {
            local[i] = sparse_kit::dense::dot(&w.local, &vi.local);
        }
        local[j + 1] = sparse_kit::dense::dot(&w.local, &w.local);
        let (bytes, flops) = cost::blas1(n, (j + 2) as u64);
        rank.kernel(KernelKind::Stream, bytes, flops);
        let fused = rank.allreduce_vec_sum(local); // the ONE reduce

        let mut hj = vec![0.0; j + 2];
        hj[..j + 1].copy_from_slice(&fused[..j + 1]);
        // w ← w − Σ h_i v_i.
        for (i, vi) in v.iter().enumerate().take(j + 1) {
            w.axpy(rank, -hj[i], vi);
        }
        // ‖w_new‖² = ‖w‖² − Σ h_i² (exact in exact arithmetic).
        let ww = fused[j + 1];
        let reduction: f64 = hj[..j + 1].iter().map(|h| h * h).sum();
        hj[j + 1] = (ww - reduction).max(0.0).sqrt();
        hj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use crate::smoothers::Sgs2;
    use distmat::RowDist;
    use parcomm::Comm;
    use sparse_kit::{Coo, Csr};

    fn laplacian(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    /// Nonsymmetric advection-diffusion operator.
    fn advection_diffusion(n: usize, peclet: f64) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0 + peclet);
            if i > 0 {
                coo.push(i, i - 1, -1.0 - peclet);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    fn solve_and_check(
        p: usize,
        a_serial: Csr,
        ortho: OrthoStrategy,
        precond: &str,
        tol: f64,
    ) -> Vec<(bool, usize, f64)> {
        let n = a_serial.nrows();
        Comm::run(p, move |rank| {
            let dist = RowDist::block(n as u64, rank.size());
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a_serial);
            let x_true = ParVector::from_fn(rank, dist.clone(), |g| ((g * g) as f64).cos());
            let b = a.spmv(rank, &x_true);
            let mut x = ParVector::zeros(rank, dist.clone());
            let gmres = Gmres {
                restart: 64,
                max_iters: 300,
                tol,
                ortho,
            };
            let m: Box<dyn Preconditioner> = match precond {
                "jacobi" => Box::new(JacobiPrecond::new(&a.diagonal(), 1.0)),
                "sgs2" => Box::new(Sgs2::new(&a)),
                _ => Box::new(IdentityPrecond),
            };
            let stats = gmres.solve(rank, &a, &b, &mut x, m.as_ref()).expect("solve");
            // True forward error:
            let mut e = x.clone();
            e.axpy(rank, -1.0, &x_true);
            (stats.converged, stats.iters, e.norm2(rank) / x_true.norm2(rank))
        })
    }

    #[test]
    fn unpreconditioned_gmres_solves_laplacian() {
        for p in [1, 2] {
            for ortho in [OrthoStrategy::ClassicalMgs, OrthoStrategy::OneReduce] {
                let out = solve_and_check(p, laplacian(32), ortho, "none", 1e-10);
                for (converged, iters, err) in out {
                    assert!(converged, "p={p} {ortho:?}");
                    assert!(err < 1e-7, "p={p} err={err}");
                    assert!(iters <= 64);
                }
            }
        }
    }

    #[test]
    fn one_reduce_matches_classical_iterations() {
        // On a well-conditioned system the two strategies should converge
        // in (nearly) the same number of iterations.
        let a = advection_diffusion(40, 0.5);
        let classical = solve_and_check(2, a.clone(), OrthoStrategy::ClassicalMgs, "none", 1e-8);
        let onereduce = solve_and_check(2, a, OrthoStrategy::OneReduce, "none", 1e-8);
        let (ci, oi) = (classical[0].1 as i64, onereduce[0].1 as i64);
        assert!((ci - oi).abs() <= 2, "classical={ci} one-reduce={oi}");
    }

    #[test]
    fn sgs2_preconditioning_cuts_iterations() {
        let a = advection_diffusion(64, 1.0);
        let plain = solve_and_check(2, a.clone(), OrthoStrategy::OneReduce, "none", 1e-8);
        let pre = solve_and_check(2, a, OrthoStrategy::OneReduce, "sgs2", 1e-8);
        assert!(pre[0].0, "preconditioned solve must converge");
        assert!(
            pre[0].1 * 2 <= plain[0].1,
            "SGS2 should at least halve iterations: {} vs {}",
            pre[0].1,
            plain[0].1
        );
    }

    #[test]
    fn one_reduce_uses_fewer_collectives() {
        let a = laplacian(48);
        let mut colls = Vec::new();
        for ortho in [OrthoStrategy::ClassicalMgs, OrthoStrategy::OneReduce] {
            let a2 = a.clone();
            let (_, traces) = Comm::run_traced(2, move |rank| {
                let dist = RowDist::block(48, 2);
                let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a2);
                let b = ParVector::from_fn(rank, dist.clone(), |_| 1.0);
                let mut x = ParVector::zeros(rank, dist);
                let gmres = Gmres {
                    restart: 20,
                    max_iters: 20,
                    tol: 1e-30, // force full restart cycle
                    ortho,
                };
                rank.with_phase("solve", || {
                    gmres.solve(rank, &pa, &b, &mut x, &IdentityPrecond).unwrap()
                });
            });
            colls.push(traces[0].phase("solve").collectives);
        }
        assert!(
            colls[1] * 2 < colls[0],
            "one-reduce {} vs classical {}",
            colls[1],
            colls[0]
        );
    }

    #[test]
    fn restart_still_converges() {
        let gmres_restart = solve_and_check(1, laplacian(40), OrthoStrategy::OneReduce, "none", 1e-9);
        assert!(gmres_restart[0].0);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        Comm::run(1, |rank| {
            let dist = RowDist::block(8, 1);
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &laplacian(8));
            let b = ParVector::zeros(rank, dist.clone());
            let mut x = ParVector::zeros(rank, dist);
            let stats = Gmres::default()
                .solve(rank, &a, &b, &mut x, &IdentityPrecond)
                .unwrap();
            assert!(stats.converged);
            assert_eq!(stats.iters, 0);
            assert!(x.local.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn nan_rhs_fails_fast_with_nonfinite_residual() {
        // A single NaN (on one rank only) poisons the allreduced norm on
        // every rank: the solve must terminate at iteration 0 with a
        // typed error instead of burning max_iters.
        Comm::run(2, |rank| {
            let dist = RowDist::block(16, 2);
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &laplacian(16));
            let mut b = ParVector::from_fn(rank, dist.clone(), |_| 1.0);
            if rank.rank() == 0 {
                b.local[0] = f64::NAN;
            }
            let mut x = ParVector::zeros(rank, dist);
            let err = Gmres::default()
                .solve(rank, &a, &b, &mut x, &IdentityPrecond)
                .unwrap_err();
            match err {
                SolveError::NonFiniteResidual { iter, .. } => assert_eq!(iter, 0),
                other => panic!("expected NonFiniteResidual, got {other:?}"),
            }
        });
    }

    #[test]
    fn stagnated_restart_cycle_is_a_typed_error() {
        // GMRES(1) on a 2×2 rotation makes exactly zero progress per
        // restart cycle: the second cycle must detect stagnation instead
        // of looping to max_iters.
        Comm::run(1, |rank| {
            let a_serial = Csr::from_dense(&[vec![0.0, 1.0], vec![-1.0, 0.0]]);
            let dist = RowDist::block(2, 1);
            let a = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a_serial);
            let b = ParVector::from_fn(rank, dist.clone(), |g| if g == 0 { 1.0 } else { 0.0 });
            let mut x = ParVector::zeros(rank, dist);
            let gmres = Gmres {
                restart: 1,
                max_iters: 100,
                tol: 1e-10,
                ortho: OrthoStrategy::ClassicalMgs,
            };
            let err = gmres.solve(rank, &a, &b, &mut x, &IdentityPrecond).unwrap_err();
            assert!(
                matches!(err, SolveError::GmresStagnation { .. }),
                "expected GmresStagnation, got {err:?}"
            );
        });
    }

    #[test]
    fn solution_independent_of_rank_count() {
        let a = advection_diffusion(36, 0.8);
        let mut solutions: Vec<Vec<f64>> = Vec::new();
        for p in [1, 2, 3] {
            let a2 = a.clone();
            let out = Comm::run(p, move |rank| {
                let dist = RowDist::block(36, rank.size());
                let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a2);
                let b = ParVector::from_fn(rank, dist.clone(), |g| (g as f64).sin());
                let mut x = ParVector::zeros(rank, dist);
                Gmres {
                    tol: 1e-12,
                    ..Default::default()
                }
                .solve(rank, &pa, &b, &mut x, &IdentityPrecond)
                .unwrap();
                x.to_serial(rank)
            });
            solutions.push(out[0].clone());
        }
        for s in &solutions[1..] {
            for (x, y) in s.iter().zip(&solutions[0]) {
                assert!((x - y).abs() < 1e-8);
            }
        }
    }
}
