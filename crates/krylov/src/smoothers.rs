//! Hybrid and two-stage Gauss-Seidel smoothers (§4.2 of the paper).
//!
//! All three smoothers share the *hybrid* structure of hypre's parallel
//! Gauss-Seidel [41]: neighbouring ranks first exchange boundary values of
//! the iterate, then each rank relaxes **locally** (off-rank couplings use
//! the frozen halo values). They differ in how the local triangular solve
//! is performed:
//!
//! - [`HybridGs`] — exact local forward/backward triangular sweep
//!   (the CPU baseline; sequential within a rank).
//! - [`TwoStageGs`] — the triangular solve is replaced by `s`
//!   Jacobi-Richardson inner iterations, Eqs. (5)–(7): fully
//!   data-parallel, which is why the paper uses it on GPUs. With `s = 0`
//!   it degenerates to Jacobi-Richardson, as the paper notes.
//! - [`Sgs2`] — the compact two-stage *symmetric* GS of Eqs. (11)–(14):
//!   an approximate forward solve followed by an approximate backward
//!   solve, used as the momentum-equation preconditioner.

use distmat::{ParCsr, ParVector};
use parcomm::{KernelKind, Rank};
use sparse_kit::cost;
use sparse_kit::dense;
use sparse_kit::Csr;
use telemetry::perfmodel;

use crate::precond::Preconditioner;

/// Precomputed local splitting A_diag = L + D + U used by every smoother.
#[derive(Clone, Debug)]
struct LocalSplit {
    l: Csr,
    u: Csr,
    diag: Vec<f64>,
    inv_diag: Vec<f64>,
}

impl LocalSplit {
    fn new(a: &ParCsr) -> Self {
        let diag = a.diag.diag();
        let inv_diag = diag
            .iter()
            .map(|&d| {
                assert!(d != 0.0, "smoother requires nonzero diagonal");
                1.0 / d
            })
            .collect();
        LocalSplit {
            l: a.diag.strict_lower(),
            u: a.diag.strict_upper(),
            diag,
            inv_diag,
        }
    }
}

/// Local residual r = b − A_diag·x − A_offd·x_ext.
fn local_residual(a: &ParCsr, b: &[f64], x: &[f64], ext: &[f64], out: &mut [f64]) {
    let _k = telemetry::kernel(
        "spmv_csr",
        perfmodel::csr_spmv(a.local_rows(), a.local_nnz())
            .plus(perfmodel::blas1(b.len(), 2, 1)),
    );
    a.diag.spmv_into(x, out);
    if a.offd.nnz() > 0 {
        a.offd.spmv_add_into(ext, out);
    }
    for (o, &bi) in out.iter_mut().zip(b) {
        *o = bi - *o;
    }
}

// ---------------------------------------------------------------------------

/// Hybrid Gauss-Seidel with an exact local triangular sweep.
#[derive(Clone, Debug)]
pub struct HybridGs {
    a: ParCsr,
    split: LocalSplit,
    /// Local relaxation sweeps per halo exchange.
    pub local_sweeps: usize,
    /// Forward (true) or backward (false) sweeps.
    pub forward: bool,
}

impl HybridGs {
    /// Build a smoother for `a`.
    pub fn new(a: &ParCsr) -> Self {
        HybridGs {
            split: LocalSplit::new(a),
            a: a.clone(),
            local_sweeps: 1,
            forward: true,
        }
    }

    /// One round of halo exchange + `local_sweeps` local GS sweeps,
    /// repeated `rounds` times. Collective.
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        telemetry::counter("smoother.hybrid_gs.rounds", rounds as u64);
        let n = x.local.len();
        for _ in 0..rounds {
            let ext = self.a.halo_exchange(rank, &x.local);
            for _ in 0..self.local_sweeps {
                // Exact local sweep: sequential dependence within the rank.
                let (bytes, flops) = cost::spmv(&self.a.diag);
                rank.kernel(KernelKind::SpMV, bytes, flops);
                let rows: Box<dyn Iterator<Item = usize>> = if self.forward {
                    Box::new(0..n)
                } else {
                    Box::new((0..n).rev())
                };
                for i in rows {
                    let (cols, vals) = self.a.diag.row(i);
                    let mut acc = b.local[i];
                    for (&j, &v) in cols.iter().zip(vals) {
                        if j != i {
                            acc -= v * x.local[j];
                        }
                    }
                    let (ocols, ovals) = self.a.offd.row(i);
                    for (&j, &v) in ocols.iter().zip(ovals) {
                        acc -= v * ext[j];
                    }
                    x.local[i] = acc * self.split.inv_diag[i];
                }
            }
        }
    }
}

impl Preconditioner for HybridGs {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        self.smooth(rank, r, &mut z, 1);
        z
    }
}

// ---------------------------------------------------------------------------

/// Two-stage Gauss-Seidel: hybrid GS whose local triangular solve is
/// approximated by Jacobi-Richardson inner iterations (Eqs. 4–7).
#[derive(Clone, Debug)]
pub struct TwoStageGs {
    a: ParCsr,
    split: LocalSplit,
    /// Number of inner Jacobi-Richardson iterations `s` (0 = Jacobi).
    pub inner: usize,
    /// Number of outer iterations per [`Preconditioner::apply`].
    pub outer: usize,
}

impl TwoStageGs {
    /// Build with `inner` JR iterations and `outer` outer iterations.
    pub fn new(a: &ParCsr, inner: usize, outer: usize) -> Self {
        TwoStageGs {
            split: LocalSplit::new(a),
            a: a.clone(),
            inner,
            outer,
        }
    }

    /// Approximate (L+D)⁻¹r by the degree-`s` Neumann expansion:
    /// g⁰ = D⁻¹r, gʲ⁺¹ = D⁻¹(r − L gʲ)   (Eqs. 5–7).
    fn forward_solve(&self, rank: &Rank, r: &[f64]) -> Vec<f64> {
        let n = r.len();
        let mut g = vec![0.0; n];
        dense::diag_scale(&self.split.inv_diag, r, &mut g);
        // Fused sweeps: each inner iteration is one matrix pass
        // (`Csr::jr_sweep_fused`), double-buffered so the sweep stays a
        // Jacobi update (in-place would silently turn it into GS).
        let mut next = vec![0.0; n];
        for _ in 0..self.inner {
            let _k = telemetry::kernel(
                "jr_sweep_fused",
                perfmodel::jr_sweep_fused(n, self.split.l.nnz()),
            );
            let (bytes, flops) = cost::jr_sweep_fused(&self.split.l);
            rank.kernel(KernelKind::SpMV, bytes, flops);
            self.split
                .l
                .jr_sweep_fused(r, &self.split.inv_diag, &g, &mut next);
            std::mem::swap(&mut g, &mut next);
        }
        g
    }

    /// One outer two-stage GS iteration: x̂ₖ₊₁ = x̂ₖ + M̃⁻¹(b − A x̂ₖ).
    /// Collective (computes a distributed residual).
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        telemetry::counter("smoother.two_stage_gs.rounds", rounds as u64);
        let n = x.local.len();
        let mut r = vec![0.0; n];
        for _ in 0..rounds {
            let ext = self.a.halo_exchange(rank, &x.local);
            let (bytes, flops) = cost::spmv(&self.a.diag);
            rank.kernel(KernelKind::SpMV, bytes, flops);
            local_residual(&self.a, &b.local, &x.local, &ext, &mut r);
            let g = self.forward_solve(rank, &r);
            let (bytes, flops) = cost::blas1(n, 3);
            rank.kernel(KernelKind::Stream, bytes, flops);
            dense::axpy(1.0, &g, &mut x.local);
        }
    }
}

impl Preconditioner for TwoStageGs {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        self.smooth(rank, r, &mut z, self.outer);
        z
    }
}

// ---------------------------------------------------------------------------

/// Compact two-stage symmetric Gauss-Seidel (SGS2, Eqs. 11–14): an
/// approximate forward (L+D) solve, diagonal rescale, then an approximate
/// backward (D+U) solve, each via Jacobi-Richardson inner iterations.
///
/// "Two outer and two inner iterations often leads to rapid convergence
/// in less than five preconditioned GMRES iterations." — §4.2.
#[derive(Clone, Debug)]
pub struct Sgs2 {
    a: ParCsr,
    split: LocalSplit,
    /// Inner Jacobi-Richardson iterations per triangular stage.
    pub inner: usize,
    /// Outer iterations per [`Preconditioner::apply`].
    pub outer: usize,
}

impl Sgs2 {
    /// Build with the paper's default of two inner and two outer sweeps.
    pub fn new(a: &ParCsr) -> Self {
        Self::with_sweeps(a, 2, 2)
    }

    /// Build with explicit sweep counts.
    pub fn with_sweeps(a: &ParCsr, inner: usize, outer: usize) -> Self {
        Sgs2 {
            split: LocalSplit::new(a),
            a: a.clone(),
            inner,
            outer,
        }
    }

    /// z ≈ M⁻¹ r where M = (L+D) D⁻¹ (D+U) (local symmetric GS), both
    /// triangular solves approximated by JR iterations.
    fn apply_local(&self, rank: &Rank, r: &[f64]) -> Vec<f64> {
        let n = r.len();
        // Forward stage: y ≈ (L+D)⁻¹ r (JR inner sweeps, element-wise
        // parallel — see DESIGN.md, "Threading model").
        let mut y = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        {
            let _k = telemetry::kernel(
                "sgs2_forward_fused",
                perfmodel::sgs2_stage_fused(n, self.split.l.nnz(), self.inner),
            );
            dense::diag_scale(&self.split.inv_diag, r, &mut y);
            for _ in 0..self.inner {
                let (bytes, flops) = cost::jr_sweep_fused(&self.split.l);
                rank.kernel(KernelKind::SpMV, bytes, flops);
                self.split
                    .l
                    .jr_sweep_fused(r, &self.split.inv_diag, &y, &mut tmp);
                std::mem::swap(&mut y, &mut tmp);
            }
        }
        // Rescale: t = D y.
        let mut t = vec![0.0; n];
        dense::diag_scale(&self.split.diag, &y, &mut t);
        // Backward stage: z ≈ (D+U)⁻¹ t.
        let mut z = vec![0.0; n];
        {
            let _k = telemetry::kernel(
                "sgs2_backward_fused",
                perfmodel::sgs2_stage_fused(n, self.split.u.nnz(), self.inner),
            );
            dense::diag_scale(&self.split.inv_diag, &t, &mut z);
            for _ in 0..self.inner {
                let (bytes, flops) = cost::jr_sweep_fused(&self.split.u);
                rank.kernel(KernelKind::SpMV, bytes, flops);
                self.split
                    .u
                    .jr_sweep_fused(&t, &self.split.inv_diag, &z, &mut tmp);
                std::mem::swap(&mut z, &mut tmp);
            }
        }
        z
    }

    /// Stationary iteration with the SGS2 preconditioner. Collective.
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        telemetry::counter("smoother.sgs2.rounds", rounds as u64);
        let n = x.local.len();
        let mut r = vec![0.0; n];
        for _ in 0..rounds {
            let ext = self.a.halo_exchange(rank, &x.local);
            let (bytes, flops) = cost::spmv(&self.a.diag);
            rank.kernel(KernelKind::SpMV, bytes, flops);
            local_residual(&self.a, &b.local, &x.local, &ext, &mut r);
            let z = self.apply_local(rank, &r);
            dense::axpy(1.0, &z, &mut x.local);
        }
    }
}

impl Preconditioner for Sgs2 {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        self.smooth(rank, r, &mut z, self.outer);
        z
    }
}

// ---------------------------------------------------------------------------

/// ℓ1-Jacobi smoother (Baker/Falgout/Kolev/Yang, the paper's ref. [41]):
/// `x ← x + D_ℓ1⁻¹ (b − A x)` with `(D_ℓ1)_ii = a_ii + Σ_offd |a_ij|`.
/// Unconditionally convergent for SPD matrices and fully data-parallel —
/// the safest GPU smoother in BoomerAMG's menu.
#[derive(Clone, Debug)]
pub struct L1Jacobi {
    a: ParCsr,
    inv_d_l1: Vec<f64>,
    /// Outer iterations per [`Preconditioner::apply`].
    pub outer: usize,
}

impl L1Jacobi {
    /// Build for `a`. The ℓ1 correction uses the off-rank (offd) entries,
    /// which is what makes the hybrid iteration robust at any rank count.
    pub fn new(a: &ParCsr) -> Self {
        let n = a.local_rows();
        let mut d = a.diag.diag();
        assert_eq!(d.len(), n);
        for (i, di) in d.iter_mut().enumerate() {
            let (_, vals) = a.offd.row(i);
            *di += vals.iter().map(|v| v.abs()).sum::<f64>();
        }
        let inv_d_l1 = d
            .iter()
            .map(|&v| {
                assert!(v != 0.0, "ℓ1 diagonal must be nonzero");
                1.0 / v
            })
            .collect();
        L1Jacobi {
            a: a.clone(),
            inv_d_l1,
            outer: 1,
        }
    }

    /// `rounds` damped-Jacobi iterations with the ℓ1 diagonal. Collective.
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        telemetry::counter("smoother.l1_jacobi.rounds", rounds as u64);
        let n = x.local.len();
        let mut r = vec![0.0; n];
        for _ in 0..rounds {
            let ext = self.a.halo_exchange(rank, &x.local);
            let (bytes, flops) = cost::spmv(&self.a.diag);
            rank.kernel(KernelKind::SpMV, bytes, flops);
            local_residual(&self.a, &b.local, &x.local, &ext, &mut r);
            let (bytes, flops) = cost::blas1(n, 3);
            rank.kernel(KernelKind::Stream, bytes, flops);
            for (i, &ri) in r.iter().enumerate() {
                x.local[i] += self.inv_d_l1[i] * ri;
            }
        }
    }
}

impl Preconditioner for L1Jacobi {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        self.smooth(rank, r, &mut z, self.outer);
        z
    }
}

// ---------------------------------------------------------------------------

/// Chebyshev polynomial smoother of degree `degree` on the diagonally
/// scaled operator `D⁻¹A`, with the spectral radius estimated by power
/// iteration at construction — another standard GPU smoother: no
/// triangular solves, no inner recurrences, only SpMVs.
#[derive(Clone, Debug)]
pub struct Chebyshev {
    a: ParCsr,
    inv_diag: Vec<f64>,
    lambda_max: f64,
    lambda_min: f64,
    /// Polynomial degree per application.
    pub degree: usize,
}

impl Chebyshev {
    /// Build with a power-iteration estimate of λmax(D⁻¹A). Collective.
    pub fn new(rank: &Rank, a: &ParCsr, degree: usize) -> Self {
        let inv_diag: Vec<f64> = a
            .diagonal()
            .iter()
            .map(|&d| {
                assert!(d != 0.0, "Chebyshev requires a nonzero diagonal");
                1.0 / d
            })
            .collect();
        // Power iteration on D⁻¹A (deterministic start vector).
        let mut v = ParVector::from_fn(rank, a.row_dist().clone(), |g| {
            1.0 + ((g % 7) as f64) * 0.1
        });
        let mut lambda = 1.0;
        for _ in 0..12 {
            let mut w = a.spmv(rank, &v);
            for (wi, di) in w.local.iter_mut().zip(&inv_diag) {
                *wi *= di;
            }
            let norm = w.norm2(rank);
            if norm == 0.0 {
                break;
            }
            lambda = norm / v.norm2(rank).max(1e-300);
            w.scale(rank, 1.0 / norm);
            v = w;
        }
        // Standard smoothing bracket: damp the upper 2/3 of the spectrum.
        let lambda_max = 1.1 * lambda;
        Chebyshev {
            a: a.clone(),
            inv_diag,
            lambda_max,
            lambda_min: lambda_max / 3.0,
            degree: degree.max(1),
        }
    }

    /// Estimated λmax of D⁻¹A.
    pub fn lambda_max(&self) -> f64 {
        self.lambda_max
    }

    /// One degree-`degree` Chebyshev application per round (the classic
    /// three-term recurrence on the preconditioned residual). Collective.
    pub fn smooth(&self, rank: &Rank, b: &ParVector, x: &mut ParVector, rounds: usize) {
        telemetry::counter("smoother.chebyshev.rounds", rounds as u64);
        let n = x.local.len();
        let theta = 0.5 * (self.lambda_max + self.lambda_min);
        let delta = 0.5 * (self.lambda_max - self.lambda_min);
        let mut r = vec![0.0; n];
        for _ in 0..rounds {
            // d: current correction direction; standard Chebyshev setup.
            let ext = self.a.halo_exchange(rank, &x.local);
            let (bytes, flops) = cost::spmv(&self.a.diag);
            rank.kernel(KernelKind::SpMV, bytes, flops);
            local_residual(&self.a, &b.local, &x.local, &ext, &mut r);
            let mut d: Vec<f64> = (0..n)
                .map(|i| self.inv_diag[i] * r[i] / theta)
                .collect();
            let mut sigma = theta / delta;
            for (i, &di) in d.iter().enumerate() {
                x.local[i] += di;
            }
            for _ in 1..self.degree {
                let ext = self.a.halo_exchange(rank, &x.local);
                let (bytes, flops) = cost::spmv(&self.a.diag);
                rank.kernel(KernelKind::SpMV, bytes, flops);
                local_residual(&self.a, &b.local, &x.local, &ext, &mut r);
                let sigma_new = 1.0 / (2.0 * theta / delta - sigma);
                let rho = sigma * sigma_new;
                for i in 0..n {
                    d[i] = rho * d[i]
                        + 2.0 * sigma_new / delta * self.inv_diag[i] * r[i];
                    x.local[i] += d[i];
                }
                sigma = sigma_new;
            }
        }
    }
}

impl Preconditioner for Chebyshev {
    fn apply(&self, rank: &Rank, r: &ParVector) -> ParVector {
        let mut z = ParVector::zeros(rank, r.dist().clone());
        self.smooth(rank, r, &mut z, 1);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distmat::RowDist;
    use parcomm::Comm;
    use sparse_kit::Coo;

    fn laplacian(n: usize) -> Csr {
        let mut coo = Coo::new();
        for i in 0..n as u64 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n as u64 {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(n, n, &coo)
    }

    fn setup(rank: &Rank, n: usize) -> (ParCsr, ParVector, ParVector) {
        let a = laplacian(n);
        let dist = RowDist::block(n as u64, rank.size());
        let pa = ParCsr::from_serial(rank, dist.clone(), dist.clone(), &a);
        let x_true = ParVector::from_fn(rank, dist.clone(), |g| ((g as f64) * 0.3).sin());
        let b = pa.spmv(rank, &x_true);
        (pa, b, x_true)
    }

    fn error_norm(rank: &Rank, x: &ParVector, x_true: &ParVector) -> f64 {
        let mut e = x.clone();
        e.axpy(rank, -1.0, x_true);
        e.norm2(rank)
    }

    #[test]
    fn hybrid_gs_converges_on_laplacian() {
        for p in [1, 2, 4] {
            let out = Comm::run(p, |rank| {
                let (a, b, x_true) = setup(rank, 12);
                let gs = HybridGs::new(&a);
                let mut x = ParVector::zeros(rank, b.dist().clone());
                let e0 = error_norm(rank, &x, &x_true);
                gs.smooth(rank, &b, &mut x, 80);
                let e1 = error_norm(rank, &x, &x_true);
                (e0, e1)
            });
            for (e0, e1) in out {
                // GS convergence factor on the 12-point 1-D Laplacian is
                // cos²(π/13) ≈ 0.943; 80 sweeps ≈ 0.009.
                assert!(e1 < 0.05 * e0, "p={p}: e0={e0} e1={e1}");
            }
        }
    }

    #[test]
    fn single_rank_hybrid_gs_is_exact_gs() {
        // On one rank, hybrid GS == classical GS; after enough sweeps on a
        // small SPD system it converges to machine precision.
        Comm::run(1, |rank| {
            let (a, b, x_true) = setup(rank, 8);
            let gs = HybridGs::new(&a);
            let mut x = ParVector::zeros(rank, b.dist().clone());
            gs.smooth(rank, &b, &mut x, 400);
            assert!(error_norm(rank, &x, &x_true) < 1e-10);
        });
    }

    #[test]
    fn two_stage_gs_converges_and_inner_sweeps_help() {
        let out = Comm::run(2, |rank| {
            let (a, b, x_true) = setup(rank, 24);
            let mut errors = Vec::new();
            for inner in [0usize, 1, 2] {
                let ts = TwoStageGs::new(&a, inner, 1);
                let mut x = ParVector::zeros(rank, b.dist().clone());
                ts.smooth(rank, &b, &mut x, 30);
                errors.push(error_norm(rank, &x, &x_true));
            }
            errors
        });
        for errors in out {
            // More inner iterations → closer to true GS → smaller error.
            assert!(errors[1] < errors[0], "{errors:?}");
            assert!(errors[2] < errors[1], "{errors:?}");
        }
    }

    #[test]
    fn two_stage_approaches_hybrid_gs_with_many_inner() {
        // With many inner JR iterations the Neumann series converges and
        // two-stage GS matches the exact local triangular solve.
        Comm::run(1, |rank| {
            let (a, b, _) = setup(rank, 10);
            let gs = HybridGs::new(&a);
            let ts = TwoStageGs::new(&a, 12, 1); // n=10: series exact at 10
            let mut xg = ParVector::zeros(rank, b.dist().clone());
            let mut xt = ParVector::zeros(rank, b.dist().clone());
            gs.smooth(rank, &b, &mut xg, 3);
            ts.smooth(rank, &b, &mut xt, 3);
            for (p, q) in xg.local.iter().zip(&xt.local) {
                assert!((p - q).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn sgs2_converges_on_laplacian() {
        for p in [1, 3] {
            let out = Comm::run(p, |rank| {
                let (a, b, x_true) = setup(rank, 12);
                let sgs = Sgs2::new(&a);
                let mut x = ParVector::zeros(rank, b.dist().clone());
                let e0 = error_norm(rank, &x, &x_true);
                sgs.smooth(rank, &b, &mut x, 60);
                (e0, error_norm(rank, &x, &x_true))
            });
            for (e0, e1) in out {
                assert!(e1 < 0.04 * e0, "p={p}: e0={e0} e1={e1}");
            }
        }
    }

    #[test]
    fn preconditioner_apply_is_linearish() {
        // apply(αr) == α·apply(r) for these linear stationary methods.
        Comm::run(2, |rank| {
            let (a, b, _) = setup(rank, 16);
            for precond in [&Sgs2::new(&a) as &dyn Preconditioner] {
                let z1 = precond.apply(rank, &b);
                let mut b2 = b.clone();
                b2.scale(rank, 3.0);
                let z2 = precond.apply(rank, &b2);
                for (p, q) in z1.local.iter().zip(&z2.local) {
                    assert!((3.0 * p - q).abs() < 1e-10);
                }
            }
        });
    }

    #[test]
    fn smoothers_record_kernels_and_halo_traffic() {
        let (_, traces) = Comm::run_traced(2, |rank| {
            let (a, b, _) = setup(rank, 16);
            let ts = TwoStageGs::new(&a, 2, 1);
            let mut x = ParVector::zeros(rank, b.dist().clone());
            rank.with_phase("smooth", || ts.smooth(rank, &b, &mut x, 2));
        });
        for t in &traces {
            let ph = t.phase("smooth");
            assert!(ph.msgs >= 2, "halo per round");
            assert!(ph.kernel_launches > 4);
        }
    }

    #[test]
    fn l1_jacobi_converges_on_laplacian() {
        for p in [1, 2] {
            let out = Comm::run(p, |rank| {
                let (a, b, x_true) = setup(rank, 12);
                let l1 = L1Jacobi::new(&a);
                let mut x = ParVector::zeros(rank, b.dist().clone());
                let e0 = error_norm(rank, &x, &x_true);
                l1.smooth(rank, &b, &mut x, 200);
                (e0, error_norm(rank, &x, &x_true))
            });
            for (e0, e1) in out {
                assert!(e1 < 0.05 * e0, "p={p}: e0={e0} e1={e1}");
            }
        }
    }

    #[test]
    fn l1_diagonal_dominates_plain_diagonal() {
        Comm::run(2, |rank| {
            let (a, b, _) = setup(rank, 10);
            let l1 = L1Jacobi::new(&a);
            // ℓ1 scaling must never exceed plain Jacobi scaling (the
            // off-rank |a_ij| mass only grows the diagonal).
            let inv_plain: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
            let mut z = ParVector::zeros(rank, b.dist().clone());
            l1.smooth(rank, &b, &mut z, 1);
            for (i, &zi) in z.local.iter().enumerate() {
                assert!(zi.abs() <= (inv_plain[i] * b.local[i]).abs() + 1e-14);
            }
        });
    }

    #[test]
    fn chebyshev_estimates_spectrum_and_converges() {
        for p in [1, 2] {
            let out = Comm::run(p, |rank| {
                let (a, b, x_true) = setup(rank, 16);
                let cheb = Chebyshev::new(rank, &a, 4);
                // For the 1-D Laplacian, λmax(D⁻¹A) ≈ 2.
                assert!(
                    (1.5..2.6).contains(&cheb.lambda_max()),
                    "λmax estimate {} off",
                    cheb.lambda_max()
                );
                let mut x = ParVector::zeros(rank, b.dist().clone());
                let e0 = error_norm(rank, &x, &x_true);
                cheb.smooth(rank, &b, &mut x, 25);
                (e0, error_norm(rank, &x, &x_true))
            });
            for (e0, e1) in out {
                // A *smoother* damps the upper spectrum; smooth error
                // components persist by design, so expectations are mild.
                assert!(e1 < 0.15 * e0, "p={p}: e0={e0} e1={e1}");
            }
        }
    }

    #[test]
    fn chebyshev_degree_improves_per_round_damping() {
        Comm::run(1, |rank| {
            let (a, b, x_true) = setup(rank, 16);
            let mut errs = Vec::new();
            for degree in [1usize, 3] {
                let cheb = Chebyshev::new(rank, &a, degree);
                let mut x = ParVector::zeros(rank, b.dist().clone());
                cheb.smooth(rank, &b, &mut x, 6);
                errs.push(error_norm(rank, &x, &x_true));
            }
            assert!(errs[1] < errs[0], "degree 3 must beat degree 1: {errs:?}");
        });
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn zero_diagonal_rejected() {
        Comm::run(1, |rank| {
            let a = Csr::from_dense(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
            let dist = RowDist::block(2, 1);
            let pa = ParCsr::from_serial(rank, dist.clone(), dist, &a);
            HybridGs::new(&pa);
        });
    }
}
