//! Krylov solvers and GPU-oriented smoothers/preconditioners.
//!
//! Implements §4.2 of the paper:
//!
//! - **GMRES** with two orthogonalization strategies: classical modified
//!   Gram-Schmidt (one global reduction per basis vector) and the
//!   **one-reduce** low-synchronization variant of Świrydowicz et al.
//!   that the Nalu-Wind time integrator uses ([`gmres`]).
//! - **Hybrid Gauss-Seidel**: neighbour halo exchange, then process-local
//!   relaxation sweeps ([`smoothers::HybridGs`]).
//! - **Two-stage Gauss-Seidel**: the sparse triangular solve replaced by
//!   Jacobi-Richardson inner iterations, Eqs. (4)–(7)
//!   ([`smoothers::TwoStageGs`]).
//! - **SGS2**: the compact two-stage *symmetric* Gauss-Seidel
//!   preconditioner of Eqs. (11)–(14) used for the momentum equation
//!   ([`smoothers::Sgs2`]).

pub mod gmres;
pub mod precond;
pub mod smoothers;

pub use gmres::{Gmres, GmresStats, OrthoStrategy};
pub use precond::{IdentityPrecond, JacobiPrecond, Preconditioner};
pub use smoothers::{Chebyshev, HybridGs, L1Jacobi, Sgs2, TwoStageGs};
