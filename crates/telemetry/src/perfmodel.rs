//! Analytic byte/flop models for the solver's hot kernels.
//!
//! Each model predicts, from matrix dimensions alone, the memory traffic
//! and floating-point work of one kernel invocation. Paired with a
//! measured wall-clock (see [`crate::Telemetry::kernel`]) this turns raw
//! timings into achieved GB/s / GFLOP/s / DOF/s — the paper's Figs. 6–9
//! currency — and, against a measured STREAM baseline (`machine` crate),
//! a "% of achievable bandwidth" roofline position per kernel.
//!
//! Modeling conventions (see DESIGN.md "Observability" for the full
//! derivation):
//!
//! - indices are 8 bytes (`usize`), values 8 bytes (`f64`);
//! - every array is assumed streamed from DRAM once per kernel — no
//!   cache-residency credit between kernels;
//! - stores are counted **once** (streaming/non-temporal store
//!   assumption). Under classic write-allocate semantics every store
//!   also reads its cache line, which would add one extra `VAL` per
//!   written element; we fold that uncertainty into the achieved-%
//!   interpretation rather than the model;
//! - sorts move `items × item_bytes` per pass with `ceil(log2 n)`
//!   passes (radix/merge behaviour), matching `sparse_kit::cost`.
//!
//! This module lives in `telemetry` (the bottom of the crate graph) so
//! every layer — `distmat`, `krylov`, `amg`, `nalu-core` — can price its
//! kernels without new dependencies; it therefore takes plain dimensions
//! rather than matrix types.

/// Bytes per index (row pointer / column id).
pub const IDX: u64 = std::mem::size_of::<usize>() as u64;
/// Bytes per matrix/vector value.
pub const VAL: u64 = std::mem::size_of::<f64>() as u64;
/// Bytes per compact (u32) index — SELL-C-σ columns/lengths/permutation.
pub const IDX32: u64 = std::mem::size_of::<u32>() as u64;

/// Predicted cost of one kernel invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelModel {
    /// Bytes moved to/from memory.
    pub bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Degrees of freedom processed (rows, vector elements, or COO
    /// items — whatever the kernel's throughput is naturally quoted in).
    pub dofs: u64,
}

impl KernelModel {
    /// Component-wise sum of two models (kernel fusion).
    pub fn plus(self, other: KernelModel) -> KernelModel {
        KernelModel {
            bytes: self.bytes + other.bytes,
            flops: self.flops + other.flops,
            dofs: self.dofs.max(other.dofs),
        }
    }

    /// The same work repeated `n` times inside one timed scope.
    pub fn times(self, n: u64) -> KernelModel {
        KernelModel {
            bytes: self.bytes * n,
            flops: self.flops * n,
            dofs: self.dofs,
        }
    }
}

/// y = A·x for a CSR matrix with `rows` rows and `nnz` stored entries:
/// stream the row pointers, indices, values and gathered x entries,
/// write y once.
pub fn csr_spmv(rows: usize, nnz: usize) -> KernelModel {
    let (rows, nnz) = (rows as u64, nnz as u64);
    KernelModel {
        bytes: (rows + 1) * IDX + nnz * (IDX + 2 * VAL) + rows * VAL,
        flops: 2 * nnz,
        dofs: rows,
    }
}

/// y = A·x in SELL-C-σ storage (`sparse_kit::sellcs`): chunk offsets
/// (`usize`), u32 per-slot row lengths and row permutation, one
/// (u32 col, val, gathered x) triple per **stored** slot — `stored`
/// includes the chunk padding, which is streamed whether used or not —
/// and the y write. `nnz` (real entries) sets the flop count. The win
/// over [`csr_spmv`] is the u32 index stream.
pub fn sellcs_spmv(rows: usize, chunks: usize, stored: usize, nnz: usize) -> KernelModel {
    let (rows, chunks, stored) = (rows as u64, chunks as u64, stored as u64);
    KernelModel {
        bytes: (chunks + 1) * IDX + rows * 2 * IDX32 + stored * (IDX32 + 2 * VAL) + rows * VAL,
        flops: 2 * nnz as u64,
        dofs: rows,
    }
}

/// One Jacobi-Richardson inner iteration of the two-stage smoothers
/// (Eqs. 5–7): a triangular SpMV (`tri_nnz` = nnz of the strict L or U
/// factor) followed by the element-wise Jacobi update
/// `g ← D⁻¹(r − T·g)`, which touches four vectors (r, T·g, D⁻¹, g).
pub fn jr_sweep(rows: usize, tri_nnz: usize) -> KernelModel {
    let spmv = csr_spmv(rows, tri_nnz);
    KernelModel {
        bytes: spmv.bytes + 4 * rows as u64 * VAL,
        flops: spmv.flops + 2 * rows as u64,
        dofs: rows as u64,
    }
}

/// One **fused** Jacobi-Richardson sweep (`Csr::jr_sweep_fused`):
/// `g_next ← D⁻¹(r − T·g)` in a single matrix pass. The SpMV's vector
/// write *is* the `g_next` store, and the `T·g` intermediate is never
/// materialized, so only r and D⁻¹ are extra streams — two fewer than
/// [`jr_sweep`]'s four (the intermediate's write + re-read are gone).
pub fn jr_sweep_fused(rows: usize, tri_nnz: usize) -> KernelModel {
    let spmv = csr_spmv(rows, tri_nnz);
    KernelModel {
        bytes: spmv.bytes + 2 * rows as u64 * VAL,
        flops: spmv.flops + 2 * rows as u64,
        dofs: rows as u64,
    }
}

/// One SGS2 triangular stage (forward L or backward U solve of
/// Eqs. 11–14): the initial diagonal scale (3 vector streams, one
/// multiply per element) plus `inner` Jacobi-Richardson sweeps.
pub fn sgs2_stage(rows: usize, tri_nnz: usize, inner: usize) -> KernelModel {
    let scale = KernelModel {
        bytes: 3 * rows as u64 * VAL,
        flops: rows as u64,
        dofs: rows as u64,
    };
    scale.plus(jr_sweep(rows, tri_nnz).times(inner as u64))
}

/// One SGS2 triangular stage built from **fused** sweeps: the diagonal
/// scale plus `inner` fused Jacobi-Richardson passes.
pub fn sgs2_stage_fused(rows: usize, tri_nnz: usize, inner: usize) -> KernelModel {
    let scale = KernelModel {
        bytes: 3 * rows as u64 * VAL,
        flops: rows as u64,
        dofs: rows as u64,
    };
    scale.plus(jr_sweep_fused(rows, tri_nnz).times(inner as u64))
}

/// Algorithm 1/2 global-assembly `stable_sort_by_key` + `reduce_by_key`
/// over `items` records of `item_bytes` each: `ceil(log2 n)` sort
/// passes plus one read+write reduce pass, with one add per item.
pub fn assembly_sort_reduce(items: usize, item_bytes: u64) -> KernelModel {
    if items == 0 {
        return KernelModel::default();
    }
    let passes = (usize::BITS - (items - 1).leading_zeros()).max(1) as u64;
    KernelModel {
        bytes: items as u64 * item_bytes * (passes + 2),
        flops: items as u64,
        dofs: items as u64,
    }
}

/// Hash SpGEMM C = A·B (one leg of the Galerkin triple product):
/// stream A once, read a B entry and update a hash slot per expansion
/// product, stream the C output once.
pub fn spgemm(rows: usize, a_nnz: usize, expansion: u64, c_nnz: usize) -> KernelModel {
    KernelModel {
        bytes: a_nnz as u64 * (IDX + VAL)
            + expansion * (IDX + 2 * VAL)
            + c_nnz as u64 * (IDX + VAL),
        flops: 2 * expansion,
        dofs: rows as u64,
    }
}

/// Numeric-only SpGEMM replay through a recorded plan
/// (`sparse_kit::spgemm::SpgemmPlan::execute`): A streamed with its
/// structure, one (slot index, B value) pair per expansion product, C
/// written once (values only — the structure is already in the plan).
/// No hash probing, no per-row sort, no assembly — the per-call saving
/// versus [`spgemm`] is `expansion·VAL + c_nnz·IDX`.
pub fn spgemm_numeric(rows: usize, a_nnz: usize, expansion: u64, c_nnz: usize) -> KernelModel {
    KernelModel {
        bytes: a_nnz as u64 * (IDX + VAL) + expansion * (IDX + VAL) + c_nnz as u64 * VAL,
        flops: 2 * expansion,
        dofs: rows as u64,
    }
}

/// Halo-exchange pack: gather `n` boundary values through an index list
/// into a contiguous send buffer (read ids, gather-read x, write buf).
pub fn halo_pack(n: usize) -> KernelModel {
    KernelModel {
        bytes: n as u64 * (IDX + 2 * VAL),
        flops: 0,
        dofs: n as u64,
    }
}

/// Halo-exchange unpack: contiguous copy of `n` received values into
/// the external-column vector.
pub fn halo_unpack(n: usize) -> KernelModel {
    KernelModel {
        bytes: 2 * n as u64 * VAL,
        flops: 0,
        dofs: n as u64,
    }
}

/// A BLAS-1-style sweep over `n` elements touching `streams` vector
/// operands with `flops_per_elem` operations each (axpy = 3 streams,
/// 2 flops).
pub fn blas1(n: usize, streams: u64, flops_per_elem: u64) -> KernelModel {
    KernelModel {
        bytes: n as u64 * streams * VAL,
        flops: n as u64 * flops_per_elem,
        dofs: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_spmv_hand_counted_3x3() {
        // Dense 3×3 stored as CSR: 9 entries, 3 rows.
        // bytes = (3+1)·8 indptr + 9·(8 idx + 8 val + 8 gathered x)
        //       + 3·8 write y = 32 + 216 + 24 = 272.
        let m = csr_spmv(3, 9);
        assert_eq!(m.bytes, 272);
        assert_eq!(m.flops, 18); // 2 per stored entry
        assert_eq!(m.dofs, 3);
    }

    #[test]
    fn jr_sweep_hand_counted_3x3_strict_lower() {
        // Strict lower triangle of dense 3×3 has 3 entries.
        // SpMV part: 4·8 + 3·24 + 3·8 = 128 bytes, 6 flops.
        // Jacobi update: 4 vectors × 3 rows × 8 = 96 bytes, 2·3 flops.
        let m = jr_sweep(3, 3);
        assert_eq!(m.bytes, 128 + 96);
        assert_eq!(m.flops, 6 + 6);
        assert_eq!(m.dofs, 3);
    }

    #[test]
    fn sgs2_stage_is_scale_plus_inner_sweeps() {
        let one = sgs2_stage(3, 3, 1);
        let two = sgs2_stage(3, 3, 2);
        let sweep = jr_sweep(3, 3);
        assert_eq!(two.bytes - one.bytes, sweep.bytes);
        assert_eq!(two.flops - one.flops, sweep.flops);
        // inner = 0 degenerates to the diagonal scale alone.
        let zero = sgs2_stage(3, 3, 0);
        assert_eq!(zero.bytes, 3 * 3 * 8);
        assert_eq!(zero.flops, 3);
    }

    #[test]
    fn sort_reduce_has_log2_passes() {
        // 1024 items of 24 bytes: 10 sort passes + 2 reduce passes.
        let m = assembly_sort_reduce(1024, 24);
        assert_eq!(m.bytes, 1024 * 24 * 12);
        assert_eq!(m.flops, 1024);
        assert_eq!(assembly_sort_reduce(0, 24), KernelModel::default());
        // A single item still pays one pass + the reduce.
        assert_eq!(assembly_sort_reduce(1, 24).bytes, 24 * 3);
    }

    #[test]
    fn halo_and_blas1_models() {
        assert_eq!(halo_pack(10).bytes, 10 * 24);
        assert_eq!(halo_unpack(10).bytes, 10 * 16);
        let axpy = blas1(100, 3, 2);
        assert_eq!(axpy.bytes, 2400);
        assert_eq!(axpy.flops, 200);
    }

    #[test]
    fn spgemm_counts_expansion() {
        let m = spgemm(4, 4, 4, 4);
        assert_eq!(m.flops, 8);
        assert_eq!(m.bytes, 4 * 16 + 4 * 24 + 4 * 16);
        assert_eq!(m.dofs, 4);
    }

    #[test]
    fn fused_sweep_saves_two_vector_streams() {
        // Fused drops the T·g intermediate: one write + one read of a
        // `rows`-long vector per sweep, flops unchanged.
        let (rows, nnz) = (100, 480);
        let unfused = jr_sweep(rows, nnz);
        let fused = jr_sweep_fused(rows, nnz);
        assert_eq!(unfused.bytes - fused.bytes, 2 * rows as u64 * VAL);
        assert_eq!(unfused.flops, fused.flops);
        let s2 = sgs2_stage(rows, nnz, 2);
        let s2f = sgs2_stage_fused(rows, nnz, 2);
        assert_eq!(s2.bytes - s2f.bytes, 2 * 2 * rows as u64 * VAL);
        assert_eq!(s2.flops, s2f.flops);
    }

    #[test]
    fn sellcs_spmv_hand_counted() {
        // 8 rows in 2 chunks, 24 real entries padded to 32 stored slots:
        // bytes = 3·8 chunk_ptr + 8·(4+4) len+perm + 32·(4 + 16) + 8·8 y
        //       = 24 + 64 + 640 + 64 = 792.
        let m = sellcs_spmv(8, 2, 32, 24);
        assert_eq!(m.bytes, 792);
        assert_eq!(m.flops, 48);
        assert_eq!(m.dofs, 8);
        // Beats CSR on the same logical matrix once padding is modest:
        // csr_spmv(8, 24) = 9·8 + 24·24 + 8·8 = 712... close; with nnz
        // at scale the u32 stream wins (see the agreement test below).
        let csr = csr_spmv(1000, 7000);
        let sell = sellcs_spmv(1000, 250, 7200, 7000);
        assert!(sell.bytes < csr.bytes);
    }

    #[test]
    fn spgemm_numeric_is_cheaper_than_symbolic() {
        let (rows, a_nnz, expansion, c_nnz) = (100, 700, 3000u64, 900);
        let full = spgemm(rows, a_nnz, expansion, c_nnz);
        let numeric = spgemm_numeric(rows, a_nnz, expansion, c_nnz);
        assert_eq!(
            full.bytes - numeric.bytes,
            expansion * VAL + c_nnz as u64 * IDX
        );
        assert_eq!(full.flops, numeric.flops);
    }

    #[test]
    fn combinators_compose() {
        let a = csr_spmv(3, 9);
        assert_eq!(a.plus(a).bytes, 2 * a.bytes);
        assert_eq!(a.times(3).flops, 3 * a.flops);
        assert_eq!(a.times(3).dofs, a.dofs);
    }
}
