//! Minimal JSON value, writer, and recursive-descent parser.
//!
//! The build container has no serde, so the telemetry event schema is
//! (de)serialized through this self-contained module. Integers are kept
//! exact through an `i128` variant (large enough for any `u64` counter),
//! and floats are written with Rust's shortest round-trip `Display`
//! formatting, so `parse(write(v)) == v` bit-for-bit for every finite
//! value — the property the event round-trip tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are held in a `BTreeMap` so serialization
/// order is deterministic regardless of construction order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience object builder.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view (floats with integral values are not coerced: the
    /// writer always emits counters as integers).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|i| usize::try_from(i).ok())
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; force a marker
                    // so the parser keeps the value a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // non-finite is unrepresentable
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

/// Compact single-line serialization (`Json::to_string()` via `Display`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if tok.is_empty() {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        tok.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad float {tok:?}: {e}"))
    } else {
        tok.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer {tok:?}: {e}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in [
            Json::Null,
            Json::Bool(true),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(0.1),
            Json::Float(1.0),
            Json::Float(3.0e-11),
            Json::Str("a\"b\\c\nd".into()),
        ] {
            let s = src.to_string();
            assert_eq!(Json::parse(&s).unwrap(), src, "{s}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.007, 6.02e23] {
            let s = Json::Float(f).to_string();
            match Json::parse(&s).unwrap() {
                Json::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{s}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn parses_nested_structures() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":false}}"#;
        let v = Json::parse(src).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_arr().unwrap().len(), 3);
        assert_eq!(obj["b"].as_obj().unwrap()["c"], Json::Null);
        // Determinstic re-serialization.
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
