//! Cross-rank timeline: Chrome/Perfetto trace export and critical-path
//! attribution over schema-v5 timestamps.
//!
//! Every rank stamps its spans, comm edges and collectives against its
//! own monotonic epoch; the startup clock handshake (recorded in the
//! `run` event) maps each rank's epoch onto rank 0's timeline
//! (`t_global = t_rank + clock_offsets[rank]`). With all ranks on one
//! axis, two things become possible that per-rank durations alone can
//! never answer:
//!
//! - [`chrome_trace`] renders the merged stream as Chrome
//!   trace-event JSON — one track per rank, spans as complete (`"X"`)
//!   duration events, send→recv comm edges as flow arrows, collectives
//!   and checkpoints as instants — loadable in `ui.perfetto.dev`
//!   unmodified. [`validate_chrome`] checks the output structurally
//!   (balanced begin/end, monotone per-track timestamps, matched flow
//!   ids) so CI can gate on it without a browser.
//! - [`critical_paths`] walks each timestep's merged timeline backward
//!   from the last rank to finish, decomposing the step's makespan into
//!   compute-on-rank-r leaf segments and wait-on-rank-s hops. The
//!   segments partition the makespan by construction, so per-phase and
//!   per-rank blame totals sum to what the step actually cost.

use crate::json::Json;
use crate::Event;
use std::collections::BTreeMap;

/// Timestamp comparisons tolerate this much float dust (seconds).
const EPS: f64 = 1e-9;

/// (src, dst, class) → per-endpoint activity windows `[sender, receiver]`,
/// each `(t_first, t_last)` when that endpoint reported the edge.
type EdgeWindows = BTreeMap<(usize, usize, String), [Option<(f64, f64)>; 2]>;

/// Clock-alignment table extracted from the stream's `run` event:
/// aligned time for rank `r` is `t + offsets[r]`. Identity when the
/// stream predates schema v5 or the handshake did not run.
#[derive(Clone, Debug, Default)]
pub struct ClockTable {
    pub offsets: Vec<f64>,
    pub rtts: Vec<f64>,
}

impl ClockTable {
    pub fn from_events(events: &[Event]) -> ClockTable {
        for ev in events {
            if let Event::Run { clock_offsets, clock_rtts, .. } = ev {
                return ClockTable {
                    offsets: clock_offsets.clone().unwrap_or_default(),
                    rtts: clock_rtts.clone().unwrap_or_default(),
                };
            }
        }
        ClockTable::default()
    }

    /// Rank `r`'s timestamp mapped onto rank 0's timeline.
    pub fn align(&self, rank: usize, t: f64) -> f64 {
        t + self.offsets.get(rank).copied().unwrap_or(0.0)
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

fn micros(secs: f64) -> Json {
    Json::Float(secs * 1e6)
}

/// Render a merged, schema-v5 event stream as a Chrome trace-event /
/// Perfetto JSON document (`{"traceEvents": [...]}`). Ranks become
/// named threads of one process; only timestamped events appear, so a
/// pre-v5 stream yields an empty (but valid) trace.
pub fn chrome_trace(events: &[Event]) -> Json {
    let clock = ClockTable::from_events(events);
    // (sort key: ts, -dur) → event; metadata rows lead with ts = -inf.
    let mut rows: Vec<(f64, f64, Json)> = Vec::new();
    let mut ranks: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    // (src, dst, class) → [sender (t_first, t_last), receiver ditto].
    let mut edges: EdgeWindows = BTreeMap::new();
    for ev in events {
        match ev {
            Event::Span { rank, path, depth, secs, t0: Some(t0) } => {
                ranks.insert(*rank);
                let ts = clock.align(*rank, *t0);
                let name = path.rsplit('/').next().unwrap_or(path).to_string();
                rows.push((
                    ts,
                    *secs,
                    Json::obj(vec![
                        ("ph", Json::Str("X".into())),
                        ("pid", Json::Int(1)),
                        ("tid", Json::Int(*rank as i128)),
                        ("ts", micros(ts)),
                        ("dur", micros(*secs)),
                        ("name", Json::Str(name)),
                        ("cat", Json::Str("span".into())),
                        (
                            "args",
                            Json::obj(vec![
                                ("path", Json::Str(path.clone())),
                                ("depth", Json::Int(*depth as i128)),
                            ]),
                        ),
                    ]),
                ));
            }
            Event::CommEdge {
                rank,
                src,
                dst,
                class,
                t_first: Some(tf),
                t_last: Some(tl),
                ..
            } => {
                ranks.insert(*rank);
                let view = usize::from(rank != src);
                let slot = edges.entry((*src, *dst, class.clone())).or_default();
                let t = slot[view].get_or_insert((f64::INFINITY, f64::NEG_INFINITY));
                t.0 = t.0.min(*tf);
                t.1 = t.1.max(*tl);
            }
            Event::Collective { rank, kind, count, bytes, t_last: Some(tl), .. } => {
                ranks.insert(*rank);
                let ts = clock.align(*rank, *tl);
                rows.push((
                    ts,
                    0.0,
                    Json::obj(vec![
                        ("ph", Json::Str("i".into())),
                        ("s", Json::Str("t".into())),
                        ("pid", Json::Int(1)),
                        ("tid", Json::Int(*rank as i128)),
                        ("ts", micros(ts)),
                        ("name", Json::Str(kind.clone())),
                        ("cat", Json::Str("collective".into())),
                        (
                            "args",
                            Json::obj(vec![
                                ("count", Json::Int(*count as i128)),
                                ("bytes", Json::Int(*bytes as i128)),
                            ]),
                        ),
                    ]),
                ));
            }
            Event::Checkpoint { rank, generation, t: Some(t), .. } => {
                ranks.insert(*rank);
                let ts = clock.align(*rank, *t);
                rows.push((
                    ts,
                    0.0,
                    instant(*rank, ts, format!("checkpoint g{generation}"), "checkpoint"),
                ));
            }
            Event::Restore { rank, generation, t: Some(t), .. } => {
                ranks.insert(*rank);
                let ts = clock.align(*rank, *t);
                rows.push((
                    ts,
                    0.0,
                    instant(*rank, ts, format!("restore g{generation}"), "checkpoint"),
                ));
            }
            _ => {}
        }
    }
    // Send→recv flow arrows, one per edge that both endpoints stamped:
    // start on the sender track at its first send, finish on the
    // receiver track at its last completed receive.
    for (id, ((src, dst, class), views)) in edges.iter().enumerate() {
        let (Some(send), Some(recv)) = (views[0], views[1]) else { continue };
        let name = format!("{class} {src}->{dst}");
        let ts_s = clock.align(*src, send.0);
        let ts_f = clock.align(*dst, recv.1).max(ts_s);
        for (ph, tid, ts) in [("s", *src, ts_s), ("f", *dst, ts_f)] {
            let mut pairs = vec![
                ("ph", Json::Str(ph.into())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(tid as i128)),
                ("ts", micros(ts)),
                ("id", Json::Int(id as i128)),
                ("name", Json::Str(name.clone())),
                ("cat", Json::Str("comm".into())),
            ];
            if ph == "f" {
                pairs.push(("bp", Json::Str("e".into())));
            }
            rows.push((ts, 0.0, Json::obj(pairs)));
        }
    }
    // Perfetto renders tracks nicely when events arrive time-sorted;
    // ties break longest-duration-first so nested X slices stay nested.
    rows.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut out: Vec<Json> = ranks
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(*r as i128)),
                ("name", Json::Str("thread_name".into())),
                ("args", Json::obj(vec![("name", Json::Str(format!("rank {r}")))])),
            ])
        })
        .collect();
    out.extend(rows.into_iter().map(|(_, _, j)| j));
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

fn instant(rank: usize, ts: f64, name: String, cat: &str) -> Json {
    Json::obj(vec![
        ("ph", Json::Str("i".into())),
        ("s", Json::Str("t".into())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(rank as i128)),
        ("ts", micros(ts)),
        ("name", Json::Str(name)),
        ("cat", Json::Str(cat.into())),
    ])
}

/// Structural validation of a Chrome trace-event document: the shape
/// Perfetto's importer needs, checkable without a browser. Returns all
/// violations.
///
/// - top level is an object with a `traceEvents` array of objects, each
///   carrying a string `ph`;
/// - complete (`"X"`) events have finite `ts` and non-negative finite
///   `dur`, and appear in non-decreasing `ts` order per `(pid, tid)`
///   track;
/// - begin/end (`"B"`/`"E"`) events balance per track;
/// - every flow start (`"s"`) id has a finish (`"f"`) and vice versa.
pub fn validate_chrome(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(events) = doc.as_obj().and_then(|o| o.get("traceEvents")).and_then(Json::as_arr)
    else {
        return vec!["top level is not an object with a traceEvents array".into()];
    };
    let mut last_ts: BTreeMap<(i128, i128), f64> = BTreeMap::new();
    let mut be_depth: BTreeMap<(i128, i128), i64> = BTreeMap::new();
    let mut flow: BTreeMap<i128, (u64, u64)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let Some(obj) = ev.as_obj() else {
            errors.push(format!("traceEvents[{i}]: not an object"));
            continue;
        };
        let Some(ph) = obj.get("ph").and_then(Json::as_str) else {
            errors.push(format!("traceEvents[{i}]: missing ph"));
            continue;
        };
        let track = (
            obj.get("pid").and_then(Json::as_i128).unwrap_or(0),
            obj.get("tid").and_then(Json::as_i128).unwrap_or(0),
        );
        let ts = obj.get("ts").and_then(Json::as_f64);
        if ph != "M" && ts.is_none() {
            errors.push(format!("traceEvents[{i}] ph {ph:?}: missing ts"));
            continue;
        }
        match ph {
            "X" => {
                let ts = ts.unwrap();
                let dur = obj.get("dur").and_then(Json::as_f64);
                if !ts.is_finite() {
                    errors.push(format!("traceEvents[{i}]: non-finite ts"));
                }
                match dur {
                    Some(d) if d.is_finite() && d >= 0.0 => {}
                    _ => errors.push(format!(
                        "traceEvents[{i}]: X event without finite non-negative dur"
                    )),
                }
                if obj.get("name").and_then(Json::as_str).is_none() {
                    errors.push(format!("traceEvents[{i}]: X event without name"));
                }
                let last = last_ts.entry(track).or_insert(f64::NEG_INFINITY);
                if ts < *last {
                    errors.push(format!(
                        "traceEvents[{i}]: track {track:?} timestamps regress \
                         ({ts} after {last})"
                    ));
                }
                *last = ts;
            }
            "B" => *be_depth.entry(track).or_insert(0) += 1,
            "E" => {
                let d = be_depth.entry(track).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    errors.push(format!(
                        "traceEvents[{i}]: E without matching B on track {track:?}"
                    ));
                }
            }
            "s" | "f" => {
                let Some(id) = obj.get("id").and_then(Json::as_i128) else {
                    errors.push(format!("traceEvents[{i}]: flow event without id"));
                    continue;
                };
                let slot = flow.entry(id).or_insert((0, 0));
                if ph == "s" {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
            _ => {}
        }
    }
    for (track, depth) in &be_depth {
        if *depth > 0 {
            errors.push(format!("track {track:?}: {depth} unclosed B event(s)"));
        }
    }
    for (id, (s, f)) in &flow {
        if s == &0 || f == &0 {
            errors.push(format!("flow id {id}: {s} start(s) vs {f} finish(es)"));
        }
    }
    errors
}

// ---------------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------------

/// One attributed interval of a step's critical path, on rank 0's
/// timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSegment {
    /// The rank the path runs on during this interval.
    pub rank: usize,
    /// Deepest covering span (path with the `timestep/` prefix
    /// stripped) for compute intervals; `"wait"` / `"start"` for hops.
    pub label: String,
    /// `Some(s)`: the interval is time spent waiting on rank `s` (the
    /// rank whose activity ends where the hop lands). `None`: compute.
    pub wait_on: Option<usize>,
    pub start: f64,
    pub end: f64,
}

impl PathSegment {
    pub fn secs(&self) -> f64 {
        self.end - self.start
    }
}

/// One timestep's decomposed makespan.
#[derive(Clone, Debug)]
pub struct StepPath {
    pub step: usize,
    /// Earliest aligned step start over ranks.
    pub start: f64,
    /// Latest aligned step end minus earliest aligned start.
    pub makespan: f64,
    /// Path segments in chronological order; they partition
    /// `[start, start + makespan]`, so compute + wait sums to the
    /// makespan by construction.
    pub segments: Vec<PathSegment>,
}

impl StepPath {
    /// Fraction of the makespan the segments cover (≈ 1.0 always; the
    /// acceptance gate asserts ≥ 0.95).
    pub fn coverage(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.segments.iter().map(PathSegment::secs).sum::<f64>() / self.makespan
    }
}

/// Per-rank span window with leaf labels, reconstructed per step.
struct RankStep {
    rank: usize,
    start: f64,
    end: f64,
    /// Chronological, contiguous leaf segments `(start, end, label)`.
    leaves: Vec<(f64, f64, String)>,
}

/// Decompose every timestep's makespan into critical-path segments.
///
/// The k-th depth-0 `timestep` span on each rank is step k. The walk
/// starts at the latest aligned end over ranks and runs backward: on a
/// rank it consumes that rank's deepest-covering (leaf) spans as
/// *compute* segments; when it falls off the front of the rank's
/// window it hops to the rank whose activity ends latest before the
/// cursor, attributing the gap as *wait on* that rank. Streams without
/// v5 timestamps yield an empty vector.
pub fn critical_paths(events: &[Event]) -> Vec<StepPath> {
    let clock = ClockTable::from_events(events);
    // Per rank: timestep windows (in stream order) and all timestamped
    // spans as (t0, end, depth, path), aligned.
    let mut steps: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    let mut spans: BTreeMap<usize, Vec<(f64, f64, usize, &str)>> = BTreeMap::new();
    for ev in events {
        let Event::Span { rank, path, depth, secs, t0: Some(t0) } = ev else { continue };
        let t0 = clock.align(*rank, *t0);
        let end = t0 + secs;
        if *depth == 0 && (path == "timestep" || path.starts_with("timestep")) {
            steps.entry(*rank).or_default().push((t0, end));
        }
        spans.entry(*rank).or_default().push((t0, end, *depth, path.as_str()));
    }
    let nsteps = steps.values().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    for k in 0..nsteps {
        let mut rank_steps: Vec<RankStep> = Vec::new();
        for (rank, windows) in &steps {
            let Some(&(start, end)) = windows.get(k) else { continue };
            let leaves = leaf_segments(start, end, &spans[rank]);
            rank_steps.push(RankStep { rank: *rank, start, end, leaves });
        }
        if rank_steps.is_empty() {
            continue;
        }
        let t_start = rank_steps.iter().map(|r| r.start).fold(f64::INFINITY, f64::min);
        let t_end = rank_steps.iter().map(|r| r.end).fold(f64::NEG_INFINITY, f64::max);
        out.push(StepPath {
            step: k,
            start: t_start,
            makespan: t_end - t_start,
            segments: walk(&rank_steps, t_start, t_end),
        });
    }
    out
}

/// Contiguous deepest-covering-span segmentation of one rank's step
/// window.
fn leaf_segments(start: f64, end: f64, spans: &[(f64, f64, usize, &str)]) -> Vec<(f64, f64, String)> {
    let inside: Vec<&(f64, f64, usize, &str)> = spans
        .iter()
        .filter(|(s, e, _, _)| *s >= start - EPS && *e <= end + EPS)
        .collect();
    let mut bounds: Vec<f64> = inside.iter().flat_map(|(s, e, _, _)| [*s, *e]).collect();
    bounds.push(start);
    bounds.push(end);
    bounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    bounds.dedup_by(|a, b| (*a - *b).abs() < EPS);
    let mut segs: Vec<(f64, f64, String)> = Vec::new();
    for w in bounds.windows(2) {
        let (a, b) = (w[0].max(start), w[1].min(end));
        if b - a < EPS {
            continue;
        }
        let mid = 0.5 * (a + b);
        let label = inside
            .iter()
            .filter(|(s, e, _, _)| *s <= mid && mid <= *e)
            .max_by_key(|(_, _, depth, _)| *depth)
            .map(|(_, _, _, path)| {
                path.strip_prefix("timestep/").unwrap_or(path).to_string()
            })
            .unwrap_or_else(|| "timestep".to_string());
        match segs.last_mut() {
            Some(last) if last.2 == label && (last.1 - a).abs() < EPS => last.1 = b,
            _ => segs.push((a, b, label)),
        }
    }
    segs
}

/// Greedy backward walk over the per-rank segmentations.
fn walk(ranks: &[RankStep], t_start: f64, t_end: f64) -> Vec<PathSegment> {
    let mut segments: Vec<PathSegment> = Vec::new();
    // Anchor on the last rank to finish.
    let mut cur = ranks
        .iter()
        .max_by(|a, b| a.end.partial_cmp(&b.end).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty rank set");
    let mut t = t_end;
    // Cap: each iteration either consumes a leaf or hops; identical
    // timestamps on two ranks could otherwise ping-pong forever.
    let max_iters = 4 * ranks.iter().map(|r| r.leaves.len() + 1).sum::<usize>().max(16);
    let mut iters = 0;
    while t > t_start + EPS {
        iters += 1;
        if iters > max_iters {
            segments.push(PathSegment {
                rank: cur.rank,
                label: "start".to_string(),
                wait_on: None,
                start: t_start,
                end: t,
            });
            break;
        }
        // Deepest leaf covering just before the cursor on the current rank.
        let covering = cur
            .leaves
            .iter()
            .rev()
            .find(|(s, e, _)| *s < t - EPS && t <= *e + EPS);
        if let Some((s, _, label)) = covering {
            let lo = s.max(t_start);
            segments.push(PathSegment {
                rank: cur.rank,
                label: label.clone(),
                wait_on: None,
                start: lo,
                end: t,
            });
            t = lo;
            continue;
        }
        // Fell off the front of this rank's window: hop to whichever
        // rank was last active before the cursor — the cursor rank was
        // (transitively) waiting on it to reach this point.
        let hop = ranks
            .iter()
            .filter(|r| r.rank != cur.rank)
            .filter_map(|r| {
                r.leaves
                    .iter()
                    .rev()
                    .find(|(s, e, _)| *s < t - EPS && *e <= t + EPS)
                    .map(|(_, e, _)| (r, e.min(t)))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match hop {
            Some((r, hop_t)) if hop_t > t_start + EPS => {
                if t - hop_t > EPS {
                    segments.push(PathSegment {
                        rank: cur.rank,
                        label: "wait".to_string(),
                        wait_on: Some(r.rank),
                        start: hop_t,
                        end: t,
                    });
                }
                cur = r;
                t = hop_t;
            }
            _ => {
                // Nothing ends before the cursor anywhere: start skew.
                segments.push(PathSegment {
                    rank: cur.rank,
                    label: "start".to_string(),
                    wait_on: None,
                    start: t_start,
                    end: t,
                });
                t = t_start;
            }
        }
    }
    segments.reverse();
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, path: &str, depth: usize, t0: f64, secs: f64) -> Event {
        Event::Span {
            rank,
            path: path.into(),
            depth,
            secs,
            t0: Some(t0),
        }
    }

    fn two_rank_step() -> Vec<Event> {
        vec![
            // Rank 0: a fast step — done at t=1.0.
            span(0, "timestep/picard/continuity/solve", 3, 0.1, 0.7),
            span(0, "timestep/picard/continuity", 2, 0.1, 0.8),
            span(0, "timestep/picard", 1, 0.0, 0.9),
            span(0, "timestep", 0, 0.0, 1.0),
            // Rank 1: the straggler — done at t=2.0.
            span(1, "timestep/picard/continuity/solve", 3, 0.2, 1.6),
            span(1, "timestep/picard/continuity", 2, 0.1, 1.8),
            span(1, "timestep/picard", 1, 0.05, 1.9),
            span(1, "timestep", 0, 0.0, 2.0),
        ]
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let mut events = two_rank_step();
        events.push(Event::CommEdge {
            rank: 0,
            src: 0,
            dst: 1,
            class: "halo".into(),
            msgs: 4,
            bytes: 256,
            t_first: Some(0.3),
            t_last: Some(0.9),
        });
        events.push(Event::CommEdge {
            rank: 1,
            src: 0,
            dst: 1,
            class: "halo".into(),
            msgs: 4,
            bytes: 256,
            t_first: Some(0.35),
            t_last: Some(0.95),
        });
        events.push(Event::Collective {
            rank: 0,
            kind: "allreduce".into(),
            count: 3,
            bytes: 24,
            secs: 0.01,
            buckets: Vec::new(),
            t_first: Some(0.4),
            t_last: Some(0.97),
        });
        events.push(Event::Checkpoint {
            rank: 0,
            step: 1,
            generation: 1,
            bytes: 4096,
            secs: 0.01,
            t: Some(0.99),
        });
        let doc = chrome_trace(&events);
        let errs = validate_chrome(&doc);
        assert!(errs.is_empty(), "{errs:?}");
        let text = doc.to_string();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("rank 0") && text.contains("rank 1"));
        assert!(text.contains("\"ph\":\"s\"") && text.contains("\"ph\":\"f\""));
        // Spans named by their leaf segment, full path in args.
        assert!(text.contains("\"name\":\"solve\""));
        // Round-trips through the parser (the validator's input path).
        let errs = validate_chrome(&Json::parse(&text).unwrap());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn chrome_trace_applies_clock_offsets() {
        let mut events = vec![Event::Run {
            ranks: 2,
            threads: 1,
            transport: "socket".into(),
            kernel_policy: "auto".into(),
            git_commit: None,
            clock_offsets: Some(vec![0.0, 10.0]),
            clock_rtts: Some(vec![0.0, 0.001]),
        }];
        events.extend(two_rank_step());
        let doc = chrome_trace(&events);
        assert!(validate_chrome(&doc).is_empty());
        // Rank 1's timestep lands at 10s = 1e7 µs on the shared axis.
        assert!(doc.to_string().contains("1e7") || doc.to_string().contains("10000000"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(!validate_chrome(&Json::Null).is_empty());
        let bad = |evs: Vec<Json>| {
            validate_chrome(&Json::obj(vec![("traceEvents", Json::Arr(evs))]))
        };
        // X without dur.
        let errs = bad(vec![Json::obj(vec![
            ("ph", Json::Str("X".into())),
            ("ts", Json::Float(0.0)),
            ("name", Json::Str("x".into())),
        ])]);
        assert!(errs.iter().any(|e| e.contains("dur")), "{errs:?}");
        // Per-track timestamp regression.
        let x = |ts: f64| {
            Json::obj(vec![
                ("ph", Json::Str("X".into())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(0)),
                ("ts", Json::Float(ts)),
                ("dur", Json::Float(1.0)),
                ("name", Json::Str("x".into())),
            ])
        };
        let errs = bad(vec![x(5.0), x(1.0)]);
        assert!(errs.iter().any(|e| e.contains("regress")), "{errs:?}");
        // Unbalanced B/E.
        let errs = bad(vec![Json::obj(vec![
            ("ph", Json::Str("B".into())),
            ("ts", Json::Float(0.0)),
        ])]);
        assert!(errs.iter().any(|e| e.contains("unclosed")), "{errs:?}");
        // Dangling flow start.
        let errs = bad(vec![Json::obj(vec![
            ("ph", Json::Str("s".into())),
            ("ts", Json::Float(0.0)),
            ("id", Json::Int(7)),
        ])]);
        assert!(errs.iter().any(|e| e.contains("flow id 7")), "{errs:?}");
    }

    #[test]
    fn critical_path_partitions_the_makespan() {
        let paths = critical_paths(&two_rank_step());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.step, 0);
        assert!((p.makespan - 2.0).abs() < 1e-9, "{p:?}");
        assert!(p.coverage() >= 0.95, "coverage {}", p.coverage());
        // Chronological, contiguous partition.
        let mut t = p.start;
        for seg in &p.segments {
            assert!((seg.start - t).abs() < 1e-6, "{p:?}");
            assert!(seg.end > seg.start - 1e-9);
            t = seg.end;
        }
        assert!((t - (p.start + p.makespan)).abs() < 1e-6);
        // The straggler dominates the path.
        let on_rank1: f64 = p
            .segments
            .iter()
            .filter(|s| s.rank == 1 && s.wait_on.is_none())
            .map(PathSegment::secs)
            .sum();
        assert!(on_rank1 > 1.5, "{p:?}");
        // Deepest spans supply the labels.
        assert!(
            p.segments.iter().any(|s| s.label == "picard/continuity/solve"),
            "{p:?}"
        );
    }

    #[test]
    fn critical_path_hops_to_the_blocking_rank() {
        // Rank 0 finishes last but idled first: its step window starts
        // only after rank 1's long step ends — a pipeline stall.
        let events = vec![
            span(1, "timestep/picard", 1, 0.0, 1.0),
            span(1, "timestep", 0, 0.0, 1.0),
            span(0, "timestep/picard", 1, 1.0, 0.5),
            span(0, "timestep", 0, 1.0, 0.5),
        ];
        let paths = critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!((p.makespan - 1.5).abs() < 1e-9, "{p:?}");
        assert!(p.coverage() >= 0.95);
        // The walk crosses from rank 0 back onto rank 1.
        assert!(p.segments.iter().any(|s| s.rank == 1 && s.wait_on.is_none()), "{p:?}");
    }

    #[test]
    fn streams_without_timestamps_yield_no_paths() {
        let untimed = Event::Span {
            rank: 0,
            path: "timestep".into(),
            depth: 0,
            secs: 1.0,
            t0: None,
        };
        assert!(critical_paths(std::slice::from_ref(&untimed)).is_empty());
        let doc = chrome_trace(&[untimed]);
        assert!(validate_chrome(&doc).is_empty());
    }
}
