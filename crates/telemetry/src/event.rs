//! The telemetry event schema (see [`SCHEMA_VERSION`]).
//!
//! One event per JSONL line, tagged by `"type"`. The stream carries the
//! three solver telemetry islands in one format:
//!
//! | type         | source                    | paper artifact            |
//! |--------------|---------------------------|---------------------------|
//! | `run`        | export harness            | run metadata              |
//! | `span`       | hierarchical span guards  | phase wall-clock tree     |
//! | `phase_time` | `nalu_core::Timings`      | Figs. 6/7 stacked bars    |
//! | `phase_perf` | `parcomm::PhaseTrace`     | machine-model inputs, wait-vs-compute imbalance |
//! | `comm_edge`  | `parcomm::Rank` edge accounting | Figs. 8–10 rank×rank comm matrix |
//! | `collective` | `parcomm` collective scopes | collective latency histograms |
//! | `amg`        | `amg::AmgHierarchy::setup`| Tables 2–4 per-level rows |
//! | `gmres`      | `krylov::Gmres::solve`    | convergence trajectories  |
//! | `recovery`   | `nalu_core` Picard driver | solver-fault escalations  |
//! | `checkpoint` | `nalu_core` periodic trigger | restart-file writes    |
//! | `restore`    | `nalu_core` resume path   | restart provenance        |
//! | `kernel_perf`| [`crate::Telemetry::kernel`] scopes | achieved GB/s / GFLOP/s roofline rows |
//! | `counter`    | subsystem counters        | —                         |
//! | `hist`       | log₂ histograms           | —                         |
//! | `bench`      | criterion-shim + `exawind-perf record` | `results/trajectory.jsonl` baselines |
//!
//! Every event type round-trips exactly through [`Event::to_line`] /
//! [`Event::parse_line`] (integers exact, floats bit-identical).

use crate::json::Json;

/// Schema version stamped into `run` events. Version 2 added the
/// `kernel_perf` event type; version 3 added `comm_edge` and
/// `collective` plus the `wait_secs`/`transfer_secs` fields on
/// `phase_perf`; version 4 added `checkpoint` and `restore`; version 5
/// added rank-aligned timestamps (`t0` on `span`, `t_first`/`t_last` on
/// `comm_edge`/`collective`, `t` on `checkpoint`/`restore`), the per-rank
/// `clock_offsets`/`clock_rtts` tables on `run`, and the `step_health` /
/// `health_verdict` event types (all purely additive; older streams
/// still parse, with the new fields absent/defaulted).
pub const SCHEMA_VERSION: u64 = 5;

/// One row of an AMG hierarchy: global rows and nonzeros of a level
/// operator.
#[derive(Clone, Debug, PartialEq)]
pub struct AmgLevelRow {
    pub level: usize,
    pub rows: u64,
    pub nnz: u64,
}

/// Per-equation convergence summary inside a `step_health` event.
#[derive(Clone, Debug, PartialEq)]
pub struct EqHealthRow {
    pub eq: String,
    /// GMRES iterations spent on this equation during the step (summed
    /// over Picard sweeps and meshes).
    pub iters: u64,
    /// Final relative residual of the last solve.
    pub final_rel: f64,
    /// Residual reduction rate: orders of magnitude gained per GMRES
    /// iteration, `-log10(final_rel) / iters` (0 when `iters == 0`).
    pub rate: f64,
}

/// A telemetry event. See the module docs for the type ↔ source map.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Run metadata, emitted once per exported stream.
    Run {
        ranks: usize,
        threads: usize,
        /// Transport backend label (`inproc` | `socket`).
        transport: String,
        /// Active kernel policy label (`auto` | `csr` | `sellcs`).
        kernel_policy: String,
        git_commit: Option<String>,
        /// Per-rank clock offsets (seconds) mapping each rank's telemetry
        /// epoch onto rank 0's timeline: `t_global = t_rank + offset[rank]`.
        /// Estimated by the startup NTP-style handshake; absent in pre-v5
        /// streams or when telemetry was off.
        clock_offsets: Option<Vec<f64>>,
        /// Per-rank minimum round-trip times (seconds) of the handshake —
        /// the offset uncertainty is bounded by `rtt/2`.
        clock_rtts: Option<Vec<f64>>,
    },
    /// A closed span: `path` is the `/`-joined stack of open span names.
    Span {
        rank: usize,
        path: String,
        depth: usize,
        secs: f64,
        /// Span start, seconds since the recording rank's telemetry epoch
        /// (absent in pre-v5 streams).
        t0: Option<f64>,
    },
    /// Per-step, per-equation, per-phase wall-clock (from `Timings`).
    PhaseTime {
        rank: usize,
        step: usize,
        eq: String,
        phase: String,
        secs: f64,
    },
    /// Per-phase operation counts (from `parcomm::PhaseTrace`), plus the
    /// phase's wait/transfer split when comm timing was enabled.
    PhasePerf {
        rank: usize,
        label: String,
        kernel_launches: u64,
        kernel_bytes: u64,
        kernel_flops: u64,
        msgs: u64,
        msg_bytes: u64,
        collectives: u64,
        collective_bytes: u64,
        /// Seconds blocked in receives/collectives/barriers (0 when comm
        /// timing was disabled or in pre-v3 streams).
        wait_secs: f64,
        /// Seconds spent encoding/decoding/enqueuing payloads (0 when
        /// comm timing was disabled or in pre-v3 streams).
        transfer_secs: f64,
    },
    /// Traffic totals of one directed (src → dst) communication edge in
    /// one tag class, as observed by `rank` (which is one of the two
    /// endpoints — both endpoints report, and a healthy run's reports
    /// agree; `validate_stream` checks this).
    CommEdge {
        rank: usize,
        src: usize,
        dst: usize,
        /// Tag class label: `p2p` | `halo` | `coll`.
        class: String,
        msgs: u64,
        bytes: u64,
        /// Timestamp of the first message this endpoint observed on the
        /// edge, seconds since the recording rank's telemetry epoch
        /// (send initiation on the sender, receive completion on the
        /// receiver; absent in pre-v5 streams).
        t_first: Option<f64>,
        /// Timestamp of the last observed message (same convention).
        t_last: Option<f64>,
    },
    /// One rank's participation in one collective kind: entry count,
    /// contributed bytes, and a log₂ latency histogram over per-entry
    /// seconds (empty when comm timing was disabled).
    Collective {
        rank: usize,
        /// Collective kind: `allreduce` | `allgather` | `broadcast` |
        /// `sparse_exchange` | `barrier`.
        kind: String,
        count: u64,
        bytes: u64,
        /// Total latency seconds across sampled entries.
        secs: f64,
        /// Log₂ buckets of per-entry latency, as in `hist`.
        buckets: Vec<(i32, u64)>,
        /// Entry timestamp of this rank's first participation, seconds
        /// since the recording rank's telemetry epoch (absent pre-v5).
        t_first: Option<f64>,
        /// Entry timestamp of the last participation (same convention).
        t_last: Option<f64>,
    },
    /// One AMG setup: per-level rows/nnz plus the paper's grid and
    /// operator complexities.
    AmgSetup {
        rank: usize,
        path: String,
        levels: Vec<AmgLevelRow>,
        grid_complexity: f64,
        operator_complexity: f64,
    },
    /// One GMRES solve: iteration count and the relative-residual
    /// trajectory.
    Gmres {
        rank: usize,
        path: String,
        iters: usize,
        final_rel: f64,
        converged: bool,
        history: Vec<f64>,
    },
    /// One recovery attempt: a solve failed with a typed fault and the
    /// Picard driver walked the escalation ladder.
    Recovery {
        rank: usize,
        eq: String,
        step: usize,
        fault: String,
        action: String,
        attempt: usize,
        outcome: String,
    },
    /// One completed checkpoint write on one rank: the generation it
    /// contributes to, the step it captures, the file size, and the
    /// wall-clock spent serializing + fsyncing.
    Checkpoint {
        rank: usize,
        step: usize,
        generation: u64,
        bytes: u64,
        secs: f64,
        /// Write completion, seconds since the recording rank's telemetry
        /// epoch (absent in pre-v5 streams).
        t: Option<f64>,
    },
    /// One restore: this rank resumed from `generation`, continuing
    /// after `step` completed steps.
    Restore {
        rank: usize,
        step: usize,
        generation: u64,
        /// Restore completion, seconds since the recording rank's
        /// telemetry epoch (absent in pre-v5 streams).
        t: Option<f64>,
    },
    /// Per-timestep solver-health sample: per-equation convergence, AMG
    /// hierarchy complexity, and resilience activity. Deterministic
    /// (carries no wall-clock), emitted once per completed step per rank;
    /// the input of the `telemetry::health` degradation detector.
    StepHealth {
        rank: usize,
        step: usize,
        eqs: Vec<EqHealthRow>,
        /// Levels in the pressure AMG hierarchy after the step's last
        /// setup (0 when no AMG setup ran).
        amg_levels: u64,
        grid_complexity: f64,
        operator_complexity: f64,
        /// Recovery-ladder attempts during the step.
        recoveries: u64,
        /// Checkpoint generation published by this step, if any.
        checkpoint: Option<u64>,
    },
    /// A typed degradation verdict from the `telemetry::health` detector:
    /// `value` left the EWMA `baseline` envelope for a full detection
    /// window ending at `step`.
    HealthVerdict {
        rank: usize,
        step: usize,
        /// Degradation kind label: `gmres-iters` | `residual-rate` |
        /// `amg-complexity` | `recovery-storm`.
        kind: String,
        /// Offending equation, for per-equation kinds.
        eq: Option<String>,
        value: f64,
        baseline: f64,
    },
    /// Aggregate of one hot kernel on one rank: call count, wall-clock,
    /// modeled bytes/flops/DOFs (see [`crate::perfmodel`]) and the
    /// achieved throughputs they imply. Flushed per rank at
    /// [`crate::Telemetry::finish`], sorted by kernel name.
    KernelPerf {
        rank: usize,
        kernel: String,
        calls: u64,
        secs: f64,
        bytes: u64,
        flops: u64,
        dofs: u64,
        gb_per_s: f64,
        gflop_per_s: f64,
        mdof_per_s: f64,
    },
    /// A named monotonic counter (aggregated per rank at finish).
    Counter { rank: usize, name: String, value: u64 },
    /// A named log₂ histogram (aggregated per rank at finish).
    Hist {
        rank: usize,
        name: String,
        count: u64,
        total: f64,
        buckets: Vec<(i32, u64)>,
    },
    /// A benchmark record (the criterion-shim `BENCH_*.json` line format,
    /// unified into this schema).
    Bench {
        bench: String,
        mean_ns: u64,
        median_ns: u64,
        min_ns: u64,
        samples: u64,
        threads: Option<u64>,
        git_commit: Option<String>,
    },
}

impl Event {
    /// The schema type tag.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::Run { .. } => "run",
            Event::Span { .. } => "span",
            Event::PhaseTime { .. } => "phase_time",
            Event::PhasePerf { .. } => "phase_perf",
            Event::CommEdge { .. } => "comm_edge",
            Event::Collective { .. } => "collective",
            Event::AmgSetup { .. } => "amg",
            Event::Gmres { .. } => "gmres",
            Event::Recovery { .. } => "recovery",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Restore { .. } => "restore",
            Event::StepHealth { .. } => "step_health",
            Event::HealthVerdict { .. } => "health_verdict",
            Event::KernelPerf { .. } => "kernel_perf",
            Event::Counter { .. } => "counter",
            Event::Hist { .. } => "hist",
            Event::Bench { .. } => "bench",
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let tag = Json::Str(self.type_tag().to_string());
        match self {
            Event::Run {
                ranks,
                threads,
                transport,
                kernel_policy,
                git_commit,
                clock_offsets,
                clock_rtts,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("schema", Json::Int(SCHEMA_VERSION as i128)),
                    ("ranks", Json::Int(*ranks as i128)),
                    ("threads", Json::Int(*threads as i128)),
                    ("transport", Json::Str(transport.clone())),
                    ("kernel_policy", Json::Str(kernel_policy.clone())),
                ];
                if let Some(c) = git_commit {
                    pairs.push(("git_commit", Json::Str(c.clone())));
                }
                if let Some(offs) = clock_offsets {
                    pairs.push((
                        "clock_offsets",
                        Json::Arr(offs.iter().map(|&o| Json::Float(o)).collect()),
                    ));
                }
                if let Some(rtts) = clock_rtts {
                    pairs.push((
                        "clock_rtts",
                        Json::Arr(rtts.iter().map(|&r| Json::Float(r)).collect()),
                    ));
                }
                Json::obj(pairs)
            }
            Event::Span {
                rank,
                path,
                depth,
                secs,
                t0,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("path", Json::Str(path.clone())),
                    ("depth", Json::Int(*depth as i128)),
                    ("secs", Json::Float(*secs)),
                ];
                if let Some(t0) = t0 {
                    pairs.push(("t0", Json::Float(*t0)));
                }
                Json::obj(pairs)
            }
            Event::PhaseTime {
                rank,
                step,
                eq,
                phase,
                secs,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("step", Json::Int(*step as i128)),
                ("eq", Json::Str(eq.clone())),
                ("phase", Json::Str(phase.clone())),
                ("secs", Json::Float(*secs)),
            ]),
            Event::PhasePerf {
                rank,
                label,
                kernel_launches,
                kernel_bytes,
                kernel_flops,
                msgs,
                msg_bytes,
                collectives,
                collective_bytes,
                wait_secs,
                transfer_secs,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("label", Json::Str(label.clone())),
                ("kernel_launches", Json::Int(*kernel_launches as i128)),
                ("kernel_bytes", Json::Int(*kernel_bytes as i128)),
                ("kernel_flops", Json::Int(*kernel_flops as i128)),
                ("msgs", Json::Int(*msgs as i128)),
                ("msg_bytes", Json::Int(*msg_bytes as i128)),
                ("collectives", Json::Int(*collectives as i128)),
                ("collective_bytes", Json::Int(*collective_bytes as i128)),
                ("wait_secs", Json::Float(*wait_secs)),
                ("transfer_secs", Json::Float(*transfer_secs)),
            ]),
            Event::CommEdge {
                rank,
                src,
                dst,
                class,
                msgs,
                bytes,
                t_first,
                t_last,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("src", Json::Int(*src as i128)),
                    ("dst", Json::Int(*dst as i128)),
                    ("class", Json::Str(class.clone())),
                    ("msgs", Json::Int(*msgs as i128)),
                    ("bytes", Json::Int(*bytes as i128)),
                ];
                if let Some(t) = t_first {
                    pairs.push(("t_first", Json::Float(*t)));
                }
                if let Some(t) = t_last {
                    pairs.push(("t_last", Json::Float(*t)));
                }
                Json::obj(pairs)
            }
            Event::Collective {
                rank,
                kind,
                count,
                bytes,
                secs,
                buckets,
                t_first,
                t_last,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("kind", Json::Str(kind.clone())),
                    ("count", Json::Int(*count as i128)),
                    ("bytes", Json::Int(*bytes as i128)),
                    ("secs", Json::Float(*secs)),
                    (
                        "buckets",
                        Json::Arr(
                            buckets
                                .iter()
                                .map(|&(e, c)| {
                                    Json::Arr(vec![Json::Int(e as i128), Json::Int(c as i128)])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if let Some(t) = t_first {
                    pairs.push(("t_first", Json::Float(*t)));
                }
                if let Some(t) = t_last {
                    pairs.push(("t_last", Json::Float(*t)));
                }
                Json::obj(pairs)
            }
            Event::AmgSetup {
                rank,
                path,
                levels,
                grid_complexity,
                operator_complexity,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("path", Json::Str(path.clone())),
                (
                    "levels",
                    Json::Arr(
                        levels
                            .iter()
                            .map(|l| {
                                Json::obj(vec![
                                    ("level", Json::Int(l.level as i128)),
                                    ("rows", Json::Int(l.rows as i128)),
                                    ("nnz", Json::Int(l.nnz as i128)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("grid_complexity", Json::Float(*grid_complexity)),
                ("operator_complexity", Json::Float(*operator_complexity)),
            ]),
            Event::Gmres {
                rank,
                path,
                iters,
                final_rel,
                converged,
                history,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("path", Json::Str(path.clone())),
                ("iters", Json::Int(*iters as i128)),
                ("final_rel", Json::Float(*final_rel)),
                ("converged", Json::Bool(*converged)),
                (
                    "history",
                    Json::Arr(history.iter().map(|&r| Json::Float(r)).collect()),
                ),
            ]),
            Event::Recovery {
                rank,
                eq,
                step,
                fault,
                action,
                attempt,
                outcome,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("eq", Json::Str(eq.clone())),
                ("step", Json::Int(*step as i128)),
                ("fault", Json::Str(fault.clone())),
                ("action", Json::Str(action.clone())),
                ("attempt", Json::Int(*attempt as i128)),
                ("outcome", Json::Str(outcome.clone())),
            ]),
            Event::Checkpoint {
                rank,
                step,
                generation,
                bytes,
                secs,
                t,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("step", Json::Int(*step as i128)),
                    ("generation", Json::Int(*generation as i128)),
                    ("bytes", Json::Int(*bytes as i128)),
                    ("secs", Json::Float(*secs)),
                ];
                if let Some(t) = t {
                    pairs.push(("t", Json::Float(*t)));
                }
                Json::obj(pairs)
            }
            Event::Restore {
                rank,
                step,
                generation,
                t,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("step", Json::Int(*step as i128)),
                    ("generation", Json::Int(*generation as i128)),
                ];
                if let Some(t) = t {
                    pairs.push(("t", Json::Float(*t)));
                }
                Json::obj(pairs)
            }
            Event::StepHealth {
                rank,
                step,
                eqs,
                amg_levels,
                grid_complexity,
                operator_complexity,
                recoveries,
                checkpoint,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("step", Json::Int(*step as i128)),
                    (
                        "eqs",
                        Json::Arr(
                            eqs.iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("eq", Json::Str(e.eq.clone())),
                                        ("iters", Json::Int(e.iters as i128)),
                                        ("final_rel", Json::Float(e.final_rel)),
                                        ("rate", Json::Float(e.rate)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("amg_levels", Json::Int(*amg_levels as i128)),
                    ("grid_complexity", Json::Float(*grid_complexity)),
                    ("operator_complexity", Json::Float(*operator_complexity)),
                    ("recoveries", Json::Int(*recoveries as i128)),
                ];
                if let Some(g) = checkpoint {
                    pairs.push(("checkpoint", Json::Int(*g as i128)));
                }
                Json::obj(pairs)
            }
            Event::HealthVerdict {
                rank,
                step,
                kind,
                eq,
                value,
                baseline,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("rank", Json::Int(*rank as i128)),
                    ("step", Json::Int(*step as i128)),
                    ("kind", Json::Str(kind.clone())),
                    ("value", Json::Float(*value)),
                    ("baseline", Json::Float(*baseline)),
                ];
                if let Some(eq) = eq {
                    pairs.push(("eq", Json::Str(eq.clone())));
                }
                Json::obj(pairs)
            }
            Event::KernelPerf {
                rank,
                kernel,
                calls,
                secs,
                bytes,
                flops,
                dofs,
                gb_per_s,
                gflop_per_s,
                mdof_per_s,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("kernel", Json::Str(kernel.clone())),
                ("calls", Json::Int(*calls as i128)),
                ("secs", Json::Float(*secs)),
                ("bytes", Json::Int(*bytes as i128)),
                ("flops", Json::Int(*flops as i128)),
                ("dofs", Json::Int(*dofs as i128)),
                ("gb_per_s", Json::Float(*gb_per_s)),
                ("gflop_per_s", Json::Float(*gflop_per_s)),
                ("mdof_per_s", Json::Float(*mdof_per_s)),
            ]),
            Event::Counter { rank, name, value } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("name", Json::Str(name.clone())),
                ("value", Json::Int(*value as i128)),
            ]),
            Event::Hist {
                rank,
                name,
                count,
                total,
                buckets,
            } => Json::obj(vec![
                ("type", tag),
                ("rank", Json::Int(*rank as i128)),
                ("name", Json::Str(name.clone())),
                ("count", Json::Int(*count as i128)),
                ("total", Json::Float(*total)),
                (
                    "buckets",
                    Json::Arr(
                        buckets
                            .iter()
                            .map(|&(e, c)| {
                                Json::Arr(vec![Json::Int(e as i128), Json::Int(c as i128)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Event::Bench {
                bench,
                mean_ns,
                median_ns,
                min_ns,
                samples,
                threads,
                git_commit,
            } => {
                let mut pairs = vec![
                    ("type", tag),
                    ("bench", Json::Str(bench.clone())),
                    ("mean_ns", Json::Int(*mean_ns as i128)),
                    ("median_ns", Json::Int(*median_ns as i128)),
                    ("min_ns", Json::Int(*min_ns as i128)),
                    ("samples", Json::Int(*samples as i128)),
                ];
                if let Some(t) = threads {
                    pairs.push(("threads", Json::Int(*t as i128)));
                }
                if let Some(c) = git_commit {
                    pairs.push(("git_commit", Json::Str(c.clone())));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse and validate one JSONL line.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let v = Json::parse(line)?;
        Event::from_json(&v)
    }

    /// Validate a parsed JSON value against the schema.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let obj = v.as_obj().ok_or("event is not a JSON object")?;
        // Legacy BENCH_*.json lines predate the "type" tag; anything that
        // carries a "bench" key is a bench record.
        let tag = match obj.get("type") {
            Some(t) => t.as_str().ok_or("\"type\" is not a string")?,
            None if obj.contains_key("bench") => "bench",
            None => return Err("missing \"type\" field".into()),
        };

        let str_field = |k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{tag}: missing/invalid string field \"{k}\""))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("{tag}: missing/invalid integer field \"{k}\""))
        };
        let usize_field = |k: &str| -> Result<usize, String> {
            obj.get(k)
                .and_then(Json::as_usize)
                .ok_or(format!("{tag}: missing/invalid integer field \"{k}\""))
        };
        let f64_field = |k: &str| -> Result<f64, String> {
            obj.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("{tag}: missing/invalid number field \"{k}\""))
        };

        // Optional float-array field (absent in pre-v5 streams).
        let f64_arr = |k: &str| -> Result<Option<Vec<f64>>, String> {
            match obj.get(k) {
                None => Ok(None),
                Some(v) => v
                    .as_arr()
                    .ok_or(format!("{tag}: \"{k}\" is not an array"))?
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or(format!("{tag}: non-numeric \"{k}\" entry"))
                    })
                    .collect::<Result<Vec<_>, String>>()
                    .map(Some),
            }
        };
        let opt_f64 = |k: &str| obj.get(k).and_then(Json::as_f64);

        match tag {
            "run" => Ok(Event::Run {
                ranks: usize_field("ranks")?,
                threads: usize_field("threads")?,
                // Absent in pre-transport streams: those were inproc runs.
                transport: obj
                    .get("transport")
                    .and_then(Json::as_str)
                    .unwrap_or("inproc")
                    .to_string(),
                // Absent in pre-kernel-policy streams: those ran the CSR
                // auto default.
                kernel_policy: obj
                    .get("kernel_policy")
                    .and_then(Json::as_str)
                    .unwrap_or("auto")
                    .to_string(),
                git_commit: obj.get("git_commit").and_then(Json::as_str).map(str::to_string),
                clock_offsets: f64_arr("clock_offsets")?,
                clock_rtts: f64_arr("clock_rtts")?,
            }),
            "span" => Ok(Event::Span {
                rank: usize_field("rank")?,
                path: str_field("path")?,
                depth: usize_field("depth")?,
                secs: f64_field("secs")?,
                t0: opt_f64("t0"),
            }),
            "phase_time" => Ok(Event::PhaseTime {
                rank: usize_field("rank")?,
                step: usize_field("step")?,
                eq: str_field("eq")?,
                phase: str_field("phase")?,
                secs: f64_field("secs")?,
            }),
            "phase_perf" => Ok(Event::PhasePerf {
                rank: usize_field("rank")?,
                label: str_field("label")?,
                kernel_launches: u64_field("kernel_launches")?,
                kernel_bytes: u64_field("kernel_bytes")?,
                kernel_flops: u64_field("kernel_flops")?,
                msgs: u64_field("msgs")?,
                msg_bytes: u64_field("msg_bytes")?,
                collectives: u64_field("collectives")?,
                collective_bytes: u64_field("collective_bytes")?,
                // Absent in pre-v3 streams.
                wait_secs: obj.get("wait_secs").and_then(Json::as_f64).unwrap_or(0.0),
                transfer_secs: obj.get("transfer_secs").and_then(Json::as_f64).unwrap_or(0.0),
            }),
            "comm_edge" => Ok(Event::CommEdge {
                rank: usize_field("rank")?,
                src: usize_field("src")?,
                dst: usize_field("dst")?,
                class: str_field("class")?,
                msgs: u64_field("msgs")?,
                bytes: u64_field("bytes")?,
                t_first: opt_f64("t_first"),
                t_last: opt_f64("t_last"),
            }),
            "collective" => {
                let buckets = obj
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or("collective: missing \"buckets\" array")?
                    .iter()
                    .map(|b| {
                        let pair = b.as_arr().ok_or("collective: bucket is not a pair")?;
                        if pair.len() != 2 {
                            return Err("collective: bucket is not a pair".to_string());
                        }
                        let e = pair[0]
                            .as_i128()
                            .and_then(|i| i32::try_from(i).ok())
                            .ok_or("collective: bad bucket exponent")?;
                        let c = pair[1].as_u64().ok_or("collective: bad bucket count")?;
                        Ok((e, c))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::Collective {
                    rank: usize_field("rank")?,
                    kind: str_field("kind")?,
                    count: u64_field("count")?,
                    bytes: u64_field("bytes")?,
                    secs: f64_field("secs")?,
                    buckets,
                    t_first: opt_f64("t_first"),
                    t_last: opt_f64("t_last"),
                })
            }
            "amg" => {
                let levels = obj
                    .get("levels")
                    .and_then(Json::as_arr)
                    .ok_or("amg: missing \"levels\" array")?
                    .iter()
                    .map(|l| {
                        let lo = l.as_obj().ok_or("amg: level is not an object")?;
                        Ok(AmgLevelRow {
                            level: lo
                                .get("level")
                                .and_then(Json::as_usize)
                                .ok_or("amg: bad level index")?,
                            rows: lo
                                .get("rows")
                                .and_then(Json::as_u64)
                                .ok_or("amg: bad level rows")?,
                            nnz: lo
                                .get("nnz")
                                .and_then(Json::as_u64)
                                .ok_or("amg: bad level nnz")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::AmgSetup {
                    rank: usize_field("rank")?,
                    path: str_field("path")?,
                    levels,
                    grid_complexity: f64_field("grid_complexity")?,
                    operator_complexity: f64_field("operator_complexity")?,
                })
            }
            "gmres" => {
                let history = obj
                    .get("history")
                    .and_then(Json::as_arr)
                    .ok_or("gmres: missing \"history\" array")?
                    .iter()
                    .map(|x| x.as_f64().ok_or("gmres: non-numeric history entry".to_string()))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::Gmres {
                    rank: usize_field("rank")?,
                    path: str_field("path")?,
                    iters: usize_field("iters")?,
                    final_rel: f64_field("final_rel")?,
                    converged: obj
                        .get("converged")
                        .and_then(Json::as_bool)
                        .ok_or("gmres: missing \"converged\"")?,
                    history,
                })
            }
            "recovery" => Ok(Event::Recovery {
                rank: usize_field("rank")?,
                eq: str_field("eq")?,
                step: usize_field("step")?,
                fault: str_field("fault")?,
                action: str_field("action")?,
                attempt: usize_field("attempt")?,
                outcome: str_field("outcome")?,
            }),
            "checkpoint" => Ok(Event::Checkpoint {
                rank: usize_field("rank")?,
                step: usize_field("step")?,
                generation: u64_field("generation")?,
                bytes: u64_field("bytes")?,
                secs: f64_field("secs")?,
                t: opt_f64("t"),
            }),
            "restore" => Ok(Event::Restore {
                rank: usize_field("rank")?,
                step: usize_field("step")?,
                generation: u64_field("generation")?,
                t: opt_f64("t"),
            }),
            "step_health" => {
                let eqs = obj
                    .get("eqs")
                    .and_then(Json::as_arr)
                    .ok_or("step_health: missing \"eqs\" array")?
                    .iter()
                    .map(|e| {
                        let eo = e.as_obj().ok_or("step_health: eq is not an object")?;
                        Ok(EqHealthRow {
                            eq: eo
                                .get("eq")
                                .and_then(Json::as_str)
                                .ok_or("step_health: bad eq name")?
                                .to_string(),
                            iters: eo
                                .get("iters")
                                .and_then(Json::as_u64)
                                .ok_or("step_health: bad eq iters")?,
                            final_rel: eo
                                .get("final_rel")
                                .and_then(Json::as_f64)
                                .ok_or("step_health: bad eq final_rel")?,
                            rate: eo
                                .get("rate")
                                .and_then(Json::as_f64)
                                .ok_or("step_health: bad eq rate")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::StepHealth {
                    rank: usize_field("rank")?,
                    step: usize_field("step")?,
                    eqs,
                    amg_levels: u64_field("amg_levels")?,
                    grid_complexity: f64_field("grid_complexity")?,
                    operator_complexity: f64_field("operator_complexity")?,
                    recoveries: u64_field("recoveries")?,
                    checkpoint: obj.get("checkpoint").and_then(Json::as_u64),
                })
            }
            "health_verdict" => Ok(Event::HealthVerdict {
                rank: usize_field("rank")?,
                step: usize_field("step")?,
                kind: str_field("kind")?,
                eq: obj.get("eq").and_then(Json::as_str).map(str::to_string),
                value: f64_field("value")?,
                baseline: f64_field("baseline")?,
            }),
            "kernel_perf" => Ok(Event::KernelPerf {
                rank: usize_field("rank")?,
                kernel: str_field("kernel")?,
                calls: u64_field("calls")?,
                secs: f64_field("secs")?,
                bytes: u64_field("bytes")?,
                flops: u64_field("flops")?,
                dofs: u64_field("dofs")?,
                gb_per_s: f64_field("gb_per_s")?,
                gflop_per_s: f64_field("gflop_per_s")?,
                mdof_per_s: f64_field("mdof_per_s")?,
            }),
            "counter" => Ok(Event::Counter {
                rank: usize_field("rank")?,
                name: str_field("name")?,
                value: u64_field("value")?,
            }),
            "hist" => {
                let buckets = obj
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or("hist: missing \"buckets\" array")?
                    .iter()
                    .map(|b| {
                        let pair = b.as_arr().ok_or("hist: bucket is not a pair")?;
                        if pair.len() != 2 {
                            return Err("hist: bucket is not a pair".to_string());
                        }
                        let e = pair[0]
                            .as_i128()
                            .and_then(|i| i32::try_from(i).ok())
                            .ok_or("hist: bad bucket exponent")?;
                        let c = pair[1].as_u64().ok_or("hist: bad bucket count")?;
                        Ok((e, c))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Event::Hist {
                    rank: usize_field("rank")?,
                    name: str_field("name")?,
                    count: u64_field("count")?,
                    total: f64_field("total")?,
                    buckets,
                })
            }
            "bench" => Ok(Event::Bench {
                bench: str_field("bench")?,
                mean_ns: u64_field("mean_ns")?,
                median_ns: u64_field("median_ns")?,
                min_ns: u64_field("min_ns")?,
                samples: u64_field("samples")?,
                threads: obj.get("threads").and_then(Json::as_u64),
                git_commit: obj.get("git_commit").and_then(Json::as_str).map(str::to_string),
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }

    /// Example of every event variant (schema documentation + round-trip
    /// test fixture).
    pub fn examples() -> Vec<Event> {
        vec![
            Event::Run {
                ranks: 4,
                threads: 8,
                transport: "inproc".into(),
                kernel_policy: "auto".into(),
                git_commit: Some("deadbeef".into()),
                clock_offsets: Some(vec![0.0, 1.25e-4, -3.0e-5, 7.5e-5]),
                clock_rtts: Some(vec![0.0, 4.0e-5, 3.5e-5, 6.0e-5]),
            },
            Event::Span {
                rank: 0,
                path: "timestep/picard/continuity/solve".into(),
                depth: 3,
                secs: 0.0123,
                t0: Some(0.875),
            },
            Event::PhaseTime {
                rank: 1,
                step: 2,
                eq: "momentum".into(),
                phase: "local assembly".into(),
                secs: 1.0 / 3.0,
            },
            Event::PhasePerf {
                rank: 2,
                label: "continuity/solve".into(),
                kernel_launches: 120,
                kernel_bytes: u64::MAX / 2,
                kernel_flops: 9_999,
                msgs: 14,
                msg_bytes: 2048,
                collectives: 7,
                collective_bytes: 56,
                wait_secs: 0.0625,
                transfer_secs: 0.0078125,
            },
            Event::CommEdge {
                rank: 0,
                src: 0,
                dst: 3,
                class: "halo".into(),
                msgs: 96,
                bytes: 786_432,
                t_first: Some(0.125),
                t_last: Some(2.5),
            },
            Event::Collective {
                rank: 1,
                kind: "allreduce".into(),
                count: 64,
                bytes: 512,
                secs: 0.004,
                buckets: vec![(-15, 60), (-14, 4)],
                t_first: Some(0.0625),
                t_last: Some(2.75),
            },
            Event::AmgSetup {
                rank: 0,
                path: "timestep/picard/continuity/precond setup".into(),
                levels: vec![
                    AmgLevelRow { level: 0, rows: 1000, nnz: 6800 },
                    AmgLevelRow { level: 1, rows: 210, nnz: 1900 },
                ],
                grid_complexity: 1.21,
                operator_complexity: 1.2794117647058822,
            },
            Event::Gmres {
                rank: 3,
                path: "timestep/picard/continuity/solve".into(),
                iters: 3,
                final_rel: 3.2e-7,
                converged: true,
                history: vec![1.0, 0.25, 1e-3, 3.2e-7],
            },
            Event::Recovery {
                rank: 0,
                eq: "continuity".into(),
                step: 4,
                fault: "non_finite_residual".into(),
                action: "rebuild".into(),
                attempt: 1,
                outcome: "recovered".into(),
            },
            Event::Checkpoint {
                rank: 0,
                step: 4,
                generation: 4,
                bytes: 183_472,
                secs: 0.0021,
                t: Some(3.125),
            },
            Event::Restore {
                rank: 1,
                step: 4,
                generation: 4,
                t: Some(0.03125),
            },
            Event::StepHealth {
                rank: 0,
                step: 4,
                eqs: vec![
                    EqHealthRow {
                        eq: "continuity".into(),
                        iters: 12,
                        final_rel: 3.2e-7,
                        rate: 0.5413941073971938,
                    },
                    EqHealthRow {
                        eq: "momentum".into(),
                        iters: 5,
                        final_rel: 1.0e-9,
                        rate: 1.8,
                    },
                ],
                amg_levels: 3,
                grid_complexity: 1.21,
                operator_complexity: 1.2794117647058822,
                recoveries: 0,
                checkpoint: Some(4),
            },
            Event::HealthVerdict {
                rank: 0,
                step: 9,
                kind: "gmres-iters".into(),
                eq: Some("continuity".into()),
                value: 24.0,
                baseline: 12.5,
            },
            Event::KernelPerf {
                rank: 1,
                kernel: "spmv_csr".into(),
                calls: 240,
                secs: 0.0125,
                bytes: 1_200_000_000,
                flops: 96_000_000,
                dofs: 4_000_000,
                gb_per_s: 96.0,
                gflop_per_s: 7.68,
                mdof_per_s: 320.0,
            },
            Event::Counter {
                rank: 0,
                name: "assembly.matrix_entries".into(),
                value: 123_456,
            },
            Event::Hist {
                rank: 1,
                name: "gmres.iters".into(),
                count: 3,
                total: 21.0,
                buckets: vec![(-1071, 1), (2, 1), (3, 1)],
            },
            Event::Bench {
                bench: "amg_setup/mm_ext".into(),
                mean_ns: 15135352,
                median_ns: 14956112,
                min_ns: 13776211,
                samples: 10,
                threads: Some(4),
                git_commit: None,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_type_round_trips() {
        for ev in Event::examples() {
            let line = ev.to_line();
            let back = Event::parse_line(&line)
                .unwrap_or_else(|e| panic!("{}: {e}\n{line}", ev.type_tag()));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn legacy_bench_lines_without_type_tag_parse() {
        let line = r#"{"bench":"amg_setup/direct","mean_ns":13722057,"median_ns":11849471,"min_ns":11141866,"samples":10}"#;
        match Event::parse_line(line).unwrap() {
            Event::Bench { bench, samples, threads, .. } => {
                assert_eq!(bench, "amg_setup/direct");
                assert_eq!(samples, 10);
                assert_eq!(threads, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_v3_phase_perf_lines_parse_with_zero_comm_secs() {
        let line = r#"{"type":"phase_perf","rank":0,"label":"continuity/solve","kernel_launches":1,"kernel_bytes":2,"kernel_flops":3,"msgs":4,"msg_bytes":5,"collectives":6,"collective_bytes":7}"#;
        match Event::parse_line(line).unwrap() {
            Event::PhasePerf { wait_secs, transfer_secs, msgs, .. } => {
                assert_eq!(wait_secs, 0.0);
                assert_eq!(transfer_secs, 0.0);
                assert_eq!(msgs, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_v5_lines_parse_without_timestamps() {
        let span = r#"{"type":"span","rank":0,"path":"timestep","depth":0,"secs":0.5}"#;
        match Event::parse_line(span).unwrap() {
            Event::Span { t0, .. } => assert_eq!(t0, None),
            other => panic!("{other:?}"),
        }
        let edge = r#"{"type":"comm_edge","rank":0,"src":0,"dst":1,"class":"halo","msgs":2,"bytes":64}"#;
        match Event::parse_line(edge).unwrap() {
            Event::CommEdge { t_first, t_last, .. } => {
                assert_eq!(t_first, None);
                assert_eq!(t_last, None);
            }
            other => panic!("{other:?}"),
        }
        let run = r#"{"type":"run","ranks":2,"threads":1}"#;
        match Event::parse_line(run).unwrap() {
            Event::Run { clock_offsets, clock_rtts, .. } => {
                assert_eq!(clock_offsets, None);
                assert_eq!(clock_rtts, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_fields_are_rejected() {
        assert!(Event::parse_line(r#"{"type":"span","rank":0}"#).is_err());
        assert!(Event::parse_line(r#"{"type":"nope"}"#).is_err());
        assert!(Event::parse_line(r#"{"rank":0}"#).is_err());
        assert!(Event::parse_line("[1,2]").is_err());
    }
}
