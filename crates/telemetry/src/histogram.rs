//! Log-scale (power-of-two) histograms.
//!
//! Values are bucketed by their binary exponent: bucket `e` covers the
//! half-open range `[2^e, 2^(e+1))`. The exponent is read directly from
//! the IEEE-754 bit pattern, so bucket edges are exact: `record(4.0)`
//! lands in bucket 2, `record(3.999…)` in bucket 1 — no floating `log2`
//! rounding at the boundaries. Non-positive and non-finite values land in
//! a dedicated underflow bucket.

use std::collections::BTreeMap;

/// Bucket index reserved for values that have no binary exponent
/// (zero, negatives, NaN, infinities).
pub const UNDERFLOW_BUCKET: i32 = i32::MIN;

/// Exact binary exponent of a positive finite value: `floor(log2(v))`.
fn bucket_of(v: f64) -> i32 {
    if !v.is_finite() || v <= 0.0 {
        return UNDERFLOW_BUCKET;
    }
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: exponent of the leading significand bit.
        let sig = bits & 0x000f_ffff_ffff_ffff;
        -1023 - (sig.leading_zeros() as i32 - 11)
    } else {
        biased - 1023
    }
}

/// A mergeable log₂ histogram with count/total/min/max summary stats.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogHistogram {
    count: u64,
    total: f64,
    min: Option<f64>,
    max: Option<f64>,
    buckets: BTreeMap<i32, u64>,
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.total += v;
            self.min = Some(self.min.map_or(v, |m| m.min(v)));
            self.max = Some(self.max.map_or(v, |m| m.max(v)));
        }
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn min(&self) -> Option<f64> {
        self.min
    }

    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Nearest-rank `q`-quantile (`0.0 ..= 1.0`) resolved at bucket
    /// granularity: the **exclusive upper edge** `2^(e+1)` of the bucket
    /// holding the `⌈q·count⌉`-th observation — an upper bound on the
    /// true quantile, exact to within one power of two. Observations in
    /// the underflow bucket (non-positive / non-finite) bound to `0.0`.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&e, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                if e == UNDERFLOW_BUCKET {
                    return Some(0.0);
                }
                return Some((e as f64 + 1.0).exp2());
            }
        }
        None
    }

    /// `(bucket_exponent, count)` pairs in ascending exponent order.
    /// Bucket `e` covers `[2^e, 2^(e+1))`; [`UNDERFLOW_BUCKET`] collects
    /// non-positive values.
    pub fn buckets(&self) -> Vec<(i32, u64)> {
        self.buckets.iter().map(|(&e, &c)| (e, c)).collect()
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, exponent: i32) -> u64 {
        self.buckets.get(&exponent).copied().unwrap_or(0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.total += other.total;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
        for (&e, &c) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += c;
        }
    }

    /// Rebuild from exported parts (JSONL import path).
    pub fn from_parts(count: u64, total: f64, buckets: Vec<(i32, u64)>) -> LogHistogram {
        LogHistogram {
            count,
            total,
            min: None,
            max: None,
            buckets: buckets.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // Exact powers of two open a new bucket; the value just below
        // stays in the previous one.
        assert_eq!(bucket_of(1.0), 0);
        assert_eq!(bucket_of(1.999_999_999), 0);
        assert_eq!(bucket_of(2.0), 1);
        assert_eq!(bucket_of(4.0), 2);
        assert_eq!(bucket_of(f64::from_bits(4.0f64.to_bits() - 1)), 1);
        assert_eq!(bucket_of(0.5), -1);
        assert_eq!(bucket_of(0.25), -2);
        assert_eq!(bucket_of(3.0), 1);
        assert_eq!(bucket_of(1024.0), 10);
    }

    #[test]
    fn non_positive_values_underflow() {
        assert_eq!(bucket_of(0.0), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(-1.0), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::NAN), UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::INFINITY), UNDERFLOW_BUCKET);
    }

    #[test]
    fn subnormals_get_negative_exponents() {
        let e = bucket_of(f64::MIN_POSITIVE / 4.0);
        assert!(e < -1023, "subnormal exponent {e}");
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_edges() {
        let mut h = LogHistogram::new();
        // 100 observations: 50 in bucket 0 ([1,2)), 45 in bucket 3
        // ([8,16)), 5 in bucket 10 ([1024,2048)).
        for _ in 0..50 {
            h.record(1.5);
        }
        for _ in 0..45 {
            h.record(9.0);
        }
        for _ in 0..5 {
            h.record(1500.0);
        }
        // p50: 50th observation is the last of bucket 0 → upper edge 2.
        assert_eq!(h.quantile(0.50), Some(2.0));
        // p95: 95th observation is the last of bucket 3 → upper edge 16.
        assert_eq!(h.quantile(0.95), Some(16.0));
        // p99: 99th observation lands in bucket 10 → upper edge 2048.
        assert_eq!(h.quantile(0.99), Some(2048.0));
        // Extremes clamp to the first/last occupied bucket.
        assert_eq!(h.quantile(0.0), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(2048.0));
    }

    #[test]
    fn quantile_handles_underflow_and_empty() {
        assert_eq!(LogHistogram::new().quantile(0.5), None);
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(4.0);
        // Two of three observations are non-positive: p50 is bounded by 0.
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        // Quantiles survive an export/import round trip (buckets only).
        let back = LogHistogram::from_parts(h.count(), h.total(), h.buckets());
        assert_eq!(back.quantile(0.5), Some(0.0));
        assert_eq!(back.quantile(1.0), Some(8.0));
    }

    #[test]
    fn records_and_merges() {
        let mut h = LogHistogram::new();
        for v in [1.0, 1.5, 2.0, 3.0, 4.0, 0.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_count(0), 2); // 1.0, 1.5
        assert_eq!(h.bucket_count(1), 2); // 2.0, 3.0
        assert_eq!(h.bucket_count(2), 1); // 4.0
        assert_eq!(h.bucket_count(UNDERFLOW_BUCKET), 1);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(4.0));

        let mut other = LogHistogram::new();
        other.record(4.5);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.max(), Some(4.5));
    }
}
