//! Unified telemetry layer: hierarchical spans, solver metrics, and
//! Fig. 6/7-style phase reports.
//!
//! One [`Telemetry`] handle per simulated MPI rank records into a
//! per-rank [event](Event) stream:
//!
//! - **spans** — a `timestep → picard → equation → phase` hierarchy with
//!   per-span wall clock, closed by RAII guards;
//! - **counters** and log-scale [histograms](LogHistogram), aggregated
//!   per rank and flushed at [`Telemetry::finish`];
//! - **structured solver events** — GMRES convergence trajectories, AMG
//!   hierarchy tables, per-phase `Timings`/`PhaseTrace` rollups.
//!
//! The handle is installed as a thread-local *current* dispatcher
//! ([`Telemetry::install`]), so deep solver layers (`krylov::gmres`,
//! `amg::hierarchy`, smoothers, assembly) emit through the free functions
//! [`span`], [`counter`], [`observe`], [`record`] without threading a
//! handle through every signature — the same pattern as the `tracing`
//! crate's dispatcher. Each simulated rank is one OS thread and rayon
//! worker threads never touch the dispatcher, so recording is
//! single-threaded per rank and merging per-rank streams in rank order
//! ([`merge_ranks`]) is deterministic and thread-count independent.
//!
//! **Disabled is (near) free**: a disabled handle is `inner: None`; every
//! hook is one thread-local read and an `Option` check, no allocation, no
//! clock read. Enabling telemetry only *observes* the solver — it is
//! proven by `tests/determinism.rs` not to perturb converged results by a
//! single bit.
//!
//! Enable via the `EXAWIND_TELEMETRY=<path>` environment variable (the
//! path also names the JSONL export file) or the `SolverConfig::telemetry`
//! flag.

pub mod event;
pub mod histogram;
pub mod json;
pub mod report;

pub use event::{AmgLevelRow, Event, SCHEMA_VERSION};
pub use histogram::{LogHistogram, UNDERFLOW_BUCKET};
pub use json::Json;
pub use report::Report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Environment variable that enables telemetry and names the JSONL
/// export path.
pub const ENV_VAR: &str = "EXAWIND_TELEMETRY";

/// The export path from [`ENV_VAR`], if set and non-empty.
pub fn env_path() -> Option<String> {
    match std::env::var(ENV_VAR) {
        Ok(v) if !v.is_empty() => Some(v),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

struct OpenSpan {
    name: String,
    start: Instant,
}

struct Recorder {
    rank: usize,
    stack: Vec<OpenSpan>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Recorder {
    fn path(&self) -> String {
        let names: Vec<&str> = self.stack.iter().map(|s| s.name.as_str()).collect();
        names.join("/")
    }
}

/// Per-rank telemetry handle. Cheap to clone (shared recorder); a
/// disabled handle is a no-op on every operation.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Telemetry {
    /// A handle that records nothing, at near-zero cost.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle recording for `rank`.
    pub fn enabled(rank: usize) -> Telemetry {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Recorder {
                rank,
                stack: Vec::new(),
                events: Vec::new(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
            }))),
        }
    }

    /// Enabled iff [`ENV_VAR`] is set (to the export path).
    pub fn from_env(rank: usize) -> Telemetry {
        if env_path().is_some() {
            Telemetry::enabled(rank)
        } else {
            Telemetry::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Recording rank (0 for a disabled handle).
    pub fn rank(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.borrow().rank)
    }

    /// `/`-joined names of the currently open spans.
    pub fn current_path(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |r| r.borrow().path())
    }

    /// Install as the thread-local current dispatcher; restored (to the
    /// previous dispatcher) when the guard drops.
    pub fn install(&self) -> InstallGuard {
        let prev = CURRENT.with(|c| c.replace(self.clone()));
        InstallGuard { prev: Some(prev) }
    }

    /// Open a span; it closes (recording an [`Event::Span`]) when the
    /// guard drops. Guards must drop in LIFO order (scopes do this).
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().stack.push(OpenSpan {
                name: name.to_string(),
                start: Instant::now(),
            });
        }
        SpanGuard {
            inner: self.inner.clone(),
        }
    }

    /// Add to a named counter.
    pub fn counter(&self, name: &str, add: u64) {
        if let Some(rec) = &self.inner {
            *rec.borrow_mut().counters.entry(name.to_string()).or_insert(0) += add;
        }
    }

    /// Record one observation into a named log₂ histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut()
                .hists
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Append a structured event.
    pub fn record(&self, ev: Event) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().events.push(ev);
        }
    }

    /// Drain the recorder: flush counters and histograms (sorted by
    /// name, so the tail of the stream is deterministic) and return all
    /// events. Errors if any span is still open — the span-nesting
    /// invariant.
    pub fn try_finish(&self) -> Result<Vec<Event>, String> {
        let Some(rec) = &self.inner else {
            return Ok(Vec::new());
        };
        let mut rec = rec.borrow_mut();
        if !rec.stack.is_empty() {
            let open: Vec<String> = rec.stack.iter().map(|s| s.name.clone()).collect();
            return Err(format!("unclosed spans at finish: {}", open.join("/")));
        }
        let rank = rec.rank;
        let mut events = std::mem::take(&mut rec.events);
        for (name, value) in std::mem::take(&mut rec.counters) {
            events.push(Event::Counter { rank, name, value });
        }
        for (name, h) in std::mem::take(&mut rec.hists) {
            events.push(Event::Hist {
                rank,
                name,
                count: h.count(),
                total: h.total(),
                buckets: h.buckets(),
            });
        }
        Ok(events)
    }

    /// [`Telemetry::try_finish`], panicking on unclosed spans.
    pub fn finish(&self) -> Vec<Event> {
        self.try_finish().expect("telemetry finish")
    }
}

/// Restores the previously installed dispatcher on drop.
pub struct InstallGuard {
    prev: Option<Telemetry>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.replace(prev));
        }
    }
}

/// Closes its span on drop.
pub struct SpanGuard {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(rec) = self.inner.take() {
            let mut rec = rec.borrow_mut();
            let Some(top) = rec.stack.pop() else {
                debug_assert!(false, "span guard dropped with empty span stack");
                return;
            };
            let secs = top.start.elapsed().as_secs_f64();
            let depth = rec.stack.len();
            let path = if depth == 0 {
                top.name
            } else {
                format!("{}/{}", rec.path(), top.name)
            };
            let rank = rec.rank;
            rec.events.push(Event::Span {
                rank,
                path,
                depth,
                secs,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local current dispatcher
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Telemetry> = RefCell::new(Telemetry::disabled());
}

/// Clone of the thread-local current handle.
pub fn current() -> Telemetry {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the current dispatcher records (cheap pre-check before
/// building expensive event payloads).
pub fn is_enabled() -> bool {
    CURRENT.with(|c| c.borrow().inner.is_some())
}

/// Open a span on the current dispatcher.
pub fn span(name: &str) -> SpanGuard {
    CURRENT.with(|c| c.borrow().span(name))
}

/// Add to a counter on the current dispatcher.
pub fn counter(name: &str, add: u64) {
    CURRENT.with(|c| c.borrow().counter(name, add));
}

/// Observe into a histogram on the current dispatcher.
pub fn observe(name: &str, value: f64) {
    CURRENT.with(|c| c.borrow().observe(name, value));
}

/// Record a structured event on the current dispatcher.
pub fn record(ev: Event) {
    CURRENT.with(|c| c.borrow().record(ev));
}

// ---------------------------------------------------------------------------
// Merge + export
// ---------------------------------------------------------------------------

/// Merge per-rank event streams into one deterministic stream: ranks in
/// index order, each rank's events in recorded order. The result is
/// independent of the thread count the ranks ran under (recording is
/// per-rank-thread), which `tests/telemetry.rs` asserts.
pub fn merge_ranks(logs: Vec<Vec<Event>>) -> Vec<Event> {
    logs.into_iter().flatten().collect()
}

/// Run metadata for an exported stream: rank count, worker thread count
/// (`RAYON_NUM_THREADS` or hardware parallelism), and the git commit if
/// discoverable (`GIT_COMMIT` env or `.git/HEAD`).
pub fn run_info(ranks: usize) -> Event {
    Event::Run {
        ranks,
        threads: configured_threads(),
        git_commit: git_commit(),
    }
}

/// Worker-thread count the process runs with.
pub fn configured_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// Current git commit: `GIT_COMMIT` env var, else resolved from
/// `.git/HEAD` (walking one symbolic ref). Offline, no subprocess.
/// `cargo test`/`cargo bench` set cwd to the package dir, so the `.git`
/// directory is searched for in every ancestor of the current dir.
pub fn git_commit() -> Option<String> {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return Some(c);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let cand = dir.join(".git");
        if cand.is_dir() {
            break cand;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let direct = std::fs::read_to_string(git.join(refname)).ok();
        if let Some(c) = direct {
            return Some(c.trim().to_string());
        }
        // Packed refs fallback.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return Some(hash.trim().to_string());
            }
        }
        None
    } else if head.len() >= 7 {
        Some(head.to_string())
    } else {
        None
    }
}

/// Write events as JSONL (one event per line), replacing `path`.
pub fn write_jsonl(path: &str, events: &[Event]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for ev in events {
        writeln!(f, "{}", ev.to_line())?;
    }
    f.flush()
}

/// Parse a JSONL string, validating every line against the schema.
pub fn read_jsonl_str(s: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(
            Event::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    Ok(events)
}

/// Read + validate a JSONL file.
pub fn read_jsonl(path: &str) -> Result<Vec<Event>, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    read_jsonl_str(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("x");
            t.counter("c", 1);
            t.observe("h", 2.0);
            t.record(Event::Counter { rank: 0, name: "n".into(), value: 1 });
        }
        assert!(t.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_record_paths() {
        let t = Telemetry::enabled(3);
        {
            let _a = t.span("timestep");
            assert_eq!(t.current_path(), "timestep");
            {
                let _b = t.span("picard");
                let _c = t.span("continuity");
                assert_eq!(t.current_path(), "timestep/picard/continuity");
            }
        }
        let events = t.finish();
        let paths: Vec<(String, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { path, depth, rank, .. } => {
                    assert_eq!(*rank, 3);
                    Some((path.clone(), *depth))
                }
                _ => None,
            })
            .collect();
        // Closed innermost-first.
        assert_eq!(
            paths,
            vec![
                ("timestep/picard/continuity".to_string(), 2),
                ("timestep/picard".to_string(), 1),
                ("timestep".to_string(), 0),
            ]
        );
    }

    #[test]
    fn unclosed_span_fails_finish() {
        let t = Telemetry::enabled(0);
        let g = t.span("leaked");
        let err = t.try_finish().unwrap_err();
        assert!(err.contains("leaked"), "{err}");
        drop(g);
        assert_eq!(t.finish().len(), 1); // now closes cleanly
    }

    #[test]
    fn counters_and_hists_flush_sorted() {
        let t = Telemetry::enabled(0);
        t.counter("b", 2);
        t.counter("a", 1);
        t.counter("b", 3);
        t.observe("h", 4.0);
        let events = t.finish();
        match &events[0] {
            Event::Counter { name, value, .. } => {
                assert_eq!(name, "a");
                assert_eq!(*value, 1);
            }
            other => panic!("{other:?}"),
        }
        match &events[1] {
            Event::Counter { name, value, .. } => {
                assert_eq!(name, "b");
                assert_eq!(*value, 5);
            }
            other => panic!("{other:?}"),
        }
        match &events[2] {
            Event::Hist { name, count, buckets, .. } => {
                assert_eq!(name, "h");
                assert_eq!(*count, 1);
                assert_eq!(buckets, &vec![(2, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn install_scopes_the_current_dispatcher() {
        assert!(!is_enabled());
        let t = Telemetry::enabled(1);
        {
            let _g = t.install();
            assert!(is_enabled());
            counter("via_free_fn", 7);
            let _s = span("s");
        }
        assert!(!is_enabled());
        let events = t.finish();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counter { name, value: 7, .. } if name == "via_free_fn"
        )));
    }

    #[test]
    fn jsonl_round_trip() {
        let events = Event::examples();
        let s: String = events.iter().map(|e| e.to_line() + "\n").collect();
        let back = read_jsonl_str(&s).unwrap();
        assert_eq!(back, events);
        assert!(read_jsonl_str("{\"type\":\"span\"}\n").is_err());
    }
}
