//! Unified telemetry layer: hierarchical spans, solver metrics, and
//! Fig. 6/7-style phase reports.
//!
//! One [`Telemetry`] handle per simulated MPI rank records into a
//! per-rank [event](Event) stream:
//!
//! - **spans** — a `timestep → picard → equation → phase` hierarchy with
//!   per-span wall clock, closed by RAII guards;
//! - **counters** and log-scale [histograms](LogHistogram), aggregated
//!   per rank and flushed at [`Telemetry::finish`];
//! - **structured solver events** — GMRES convergence trajectories, AMG
//!   hierarchy tables, per-phase `Timings`/`PhaseTrace` rollups.
//!
//! The handle is installed as a thread-local *current* dispatcher
//! ([`Telemetry::install`]), so deep solver layers (`krylov::gmres`,
//! `amg::hierarchy`, smoothers, assembly) emit through the free functions
//! [`span`], [`counter`], [`observe`], [`record`] without threading a
//! handle through every signature — the same pattern as the `tracing`
//! crate's dispatcher. Each simulated rank is one OS thread and rayon
//! worker threads never touch the dispatcher, so recording is
//! single-threaded per rank and merging per-rank streams in rank order
//! ([`merge_ranks`]) is deterministic and thread-count independent.
//!
//! **Disabled is (near) free**: a disabled handle is `inner: None`; every
//! hook is one thread-local read and an `Option` check, no allocation, no
//! clock read. Enabling telemetry only *observes* the solver — it is
//! proven by `tests/determinism.rs` not to perturb converged results by a
//! single bit.
//!
//! Enable via the `EXAWIND_TELEMETRY=<path>` environment variable (the
//! path also names the JSONL export file) or the `SolverConfig::telemetry`
//! flag.

pub mod event;
pub mod health;
pub mod histogram;
pub mod json;
pub mod perfmodel;
pub mod report;
pub mod trace;

pub use event::{AmgLevelRow, EqHealthRow, Event, SCHEMA_VERSION};
pub use histogram::{LogHistogram, UNDERFLOW_BUCKET};
pub use json::Json;
pub use perfmodel::KernelModel;
pub use report::Report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Environment variable that enables telemetry and names the JSONL
/// export path.
pub const ENV_VAR: &str = "EXAWIND_TELEMETRY";

/// The export path from [`ENV_VAR`], if set and non-empty.
pub fn env_path() -> Option<String> {
    match std::env::var(ENV_VAR) {
        Ok(v) if !v.is_empty() => Some(v),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

struct OpenSpan {
    name: String,
    /// Seconds since the recorder's epoch at span open (schema v5 `t0`).
    /// The closing timestamp comes from the same epoch, so recorded
    /// windows nest exactly: a child's open/close clock reads are
    /// ordered between its parent's even if the OS preempts the thread
    /// between them.
    t0: f64,
}

/// Accumulated cost of one hot kernel on one rank.
#[derive(Clone, Copy, Debug, Default)]
struct KernelStats {
    calls: u64,
    secs: f64,
    bytes: u64,
    flops: u64,
    dofs: u64,
}

struct Recorder {
    rank: usize,
    /// Per-rank monotonic epoch; every v5 timestamp (`t0`, `t_first`,
    /// `t_last`, `t`) is seconds since this instant. Only enabled
    /// handles own an epoch, so disabled runs never read the clock.
    epoch: Instant,
    stack: Vec<OpenSpan>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHistogram>,
    kernels: BTreeMap<&'static str, KernelStats>,
}

impl Recorder {
    fn path(&self) -> String {
        let names: Vec<&str> = self.stack.iter().map(|s| s.name.as_str()).collect();
        names.join("/")
    }
}

/// Per-rank telemetry handle. Cheap to clone (shared recorder); a
/// disabled handle is a no-op on every operation.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Telemetry {
    /// A handle that records nothing, at near-zero cost.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle recording for `rank`.
    pub fn enabled(rank: usize) -> Telemetry {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Recorder {
                rank,
                epoch: Instant::now(),
                stack: Vec::new(),
                events: Vec::new(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
                kernels: BTreeMap::new(),
            }))),
        }
    }

    /// Enabled iff [`ENV_VAR`] is set (to the export path).
    pub fn from_env(rank: usize) -> Telemetry {
        if env_path().is_some() {
            Telemetry::enabled(rank)
        } else {
            Telemetry::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Recording rank (0 for a disabled handle).
    pub fn rank(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.borrow().rank)
    }

    /// Seconds since this handle's epoch, `None` for a disabled handle
    /// (which never reads the clock).
    pub fn elapsed_secs(&self) -> Option<f64> {
        self.inner.as_ref().map(|r| r.borrow().epoch.elapsed().as_secs_f64())
    }

    /// `/`-joined names of the currently open spans.
    pub fn current_path(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |r| r.borrow().path())
    }

    /// Install as the thread-local current dispatcher; restored (to the
    /// previous dispatcher) when the guard drops.
    pub fn install(&self) -> InstallGuard {
        let prev = CURRENT.with(|c| c.replace(self.clone()));
        InstallGuard { prev: Some(prev) }
    }

    /// Open a span; it closes (recording an [`Event::Span`]) when the
    /// guard drops. Guards must drop in LIFO order (scopes do this).
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(rec) = &self.inner {
            let mut rec = rec.borrow_mut();
            let t0 = rec.epoch.elapsed().as_secs_f64();
            rec.stack.push(OpenSpan { name: name.to_string(), t0 });
        }
        SpanGuard {
            inner: self.inner.clone(),
        }
    }

    /// Add to a named counter.
    pub fn counter(&self, name: &str, add: u64) {
        if let Some(rec) = &self.inner {
            *rec.borrow_mut().counters.entry(name.to_string()).or_insert(0) += add;
        }
    }

    /// Record one observation into a named log₂ histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut()
                .hists
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Append a structured event.
    pub fn record(&self, ev: Event) {
        if let Some(rec) = &self.inner {
            rec.borrow_mut().events.push(ev);
        }
    }

    /// Time one invocation of a hot kernel priced by `model` (see
    /// [`perfmodel`]). The wall clock runs until the guard drops;
    /// invocations aggregate per kernel name and flush as one
    /// [`Event::KernelPerf`] per kernel at [`Telemetry::finish`], with
    /// achieved GB/s, GFLOP/s and MDOF/s computed from the accumulated
    /// model. Disabled handles never read the clock.
    pub fn kernel(&self, name: &'static str, model: KernelModel) -> KernelGuard {
        KernelGuard {
            inner: self.inner.clone(),
            name,
            start: self.inner.as_ref().map(|_| Instant::now()),
            model,
        }
    }

    /// Drain the recorder: flush counters and histograms (sorted by
    /// name, so the tail of the stream is deterministic) and return all
    /// events. Errors if any span is still open — the span-nesting
    /// invariant.
    pub fn try_finish(&self) -> Result<Vec<Event>, String> {
        let Some(rec) = &self.inner else {
            return Ok(Vec::new());
        };
        let mut rec = rec.borrow_mut();
        if !rec.stack.is_empty() {
            let open: Vec<String> = rec.stack.iter().map(|s| s.name.clone()).collect();
            return Err(format!("unclosed spans at finish: {}", open.join("/")));
        }
        let rank = rec.rank;
        let mut events = std::mem::take(&mut rec.events);
        for (name, value) in std::mem::take(&mut rec.counters) {
            events.push(Event::Counter { rank, name, value });
        }
        for (name, h) in std::mem::take(&mut rec.hists) {
            events.push(Event::Hist {
                rank,
                name,
                count: h.count(),
                total: h.total(),
                buckets: h.buckets(),
            });
        }
        for (name, k) in std::mem::take(&mut rec.kernels) {
            let rate = |units: f64| if k.secs > 0.0 { units / k.secs } else { 0.0 };
            events.push(Event::KernelPerf {
                rank,
                kernel: name.to_string(),
                calls: k.calls,
                secs: k.secs,
                bytes: k.bytes,
                flops: k.flops,
                dofs: k.dofs,
                gb_per_s: rate(k.bytes as f64 / 1e9),
                gflop_per_s: rate(k.flops as f64 / 1e9),
                mdof_per_s: rate(k.dofs as f64 / 1e6),
            });
        }
        Ok(events)
    }

    /// [`Telemetry::try_finish`], panicking on unclosed spans.
    pub fn finish(&self) -> Vec<Event> {
        self.try_finish().expect("telemetry finish")
    }
}

/// Restores the previously installed dispatcher on drop.
pub struct InstallGuard {
    prev: Option<Telemetry>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| c.replace(prev));
        }
    }
}

/// Times one kernel invocation; accumulates into the recorder's
/// per-kernel stats on drop. Created by [`Telemetry::kernel`] / the free
/// fn [`kernel`].
pub struct KernelGuard {
    inner: Option<Rc<RefCell<Recorder>>>,
    name: &'static str,
    start: Option<Instant>,
    model: KernelModel,
}

impl KernelGuard {
    /// Replace the cost model — for kernels whose output size (and hence
    /// traffic) is only known after they run, e.g. SpGEMM's `nnz(C)`.
    pub fn set_model(&mut self, model: KernelModel) {
        self.model = model;
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.inner.take(), self.start.take()) {
            let secs = start.elapsed().as_secs_f64();
            let mut rec = rec.borrow_mut();
            let k = rec.kernels.entry(self.name).or_default();
            k.calls += 1;
            k.secs += secs;
            k.bytes += self.model.bytes;
            k.flops += self.model.flops;
            k.dofs += self.model.dofs;
        }
    }
}

/// Closes its span on drop.
pub struct SpanGuard {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(rec) = self.inner.take() {
            let mut rec = rec.borrow_mut();
            let Some(top) = rec.stack.pop() else {
                debug_assert!(false, "span guard dropped with empty span stack");
                return;
            };
            let secs = (rec.epoch.elapsed().as_secs_f64() - top.t0).max(0.0);
            let depth = rec.stack.len();
            let path = if depth == 0 {
                top.name
            } else {
                format!("{}/{}", rec.path(), top.name)
            };
            let rank = rec.rank;
            rec.events.push(Event::Span {
                rank,
                path,
                depth,
                secs,
                t0: Some(top.t0),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local current dispatcher
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Telemetry> = RefCell::new(Telemetry::disabled());
}

/// Clone of the thread-local current handle.
pub fn current() -> Telemetry {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the current dispatcher records (cheap pre-check before
/// building expensive event payloads).
pub fn is_enabled() -> bool {
    CURRENT.with(|c| c.borrow().inner.is_some())
}

/// Seconds since the current dispatcher's epoch — the schema-v5
/// timestamp base. `None` when telemetry is disabled, so callers can
/// gate every clock read on it and keep telemetry-off runs bitwise
/// identical.
pub fn now_secs() -> Option<f64> {
    CURRENT.with(|c| c.borrow().elapsed_secs())
}

/// Open a span on the current dispatcher.
pub fn span(name: &str) -> SpanGuard {
    CURRENT.with(|c| c.borrow().span(name))
}

/// Add to a counter on the current dispatcher.
pub fn counter(name: &str, add: u64) {
    CURRENT.with(|c| c.borrow().counter(name, add));
}

/// Observe into a histogram on the current dispatcher.
pub fn observe(name: &str, value: f64) {
    CURRENT.with(|c| c.borrow().observe(name, value));
}

/// Record a structured event on the current dispatcher.
pub fn record(ev: Event) {
    CURRENT.with(|c| c.borrow().record(ev));
}

/// Time a kernel invocation on the current dispatcher.
pub fn kernel(name: &'static str, model: KernelModel) -> KernelGuard {
    CURRENT.with(|c| c.borrow().kernel(name, model))
}

// ---------------------------------------------------------------------------
// Merge + export
// ---------------------------------------------------------------------------

/// Merge per-rank event streams into one deterministic stream: ranks in
/// index order, each rank's events in recorded order. The result is
/// independent of the thread count the ranks ran under (recording is
/// per-rank-thread), which `tests/telemetry.rs` asserts.
pub fn merge_ranks(logs: Vec<Vec<Event>>) -> Vec<Event> {
    logs.into_iter().flatten().collect()
}

/// Run metadata for an exported stream: rank count, worker thread count
/// (`RAYON_NUM_THREADS` or hardware parallelism), the transport backend
/// (`EXAWIND_TRANSPORT`, read as a string so this crate stays below
/// `parcomm` in the dependency graph), the kernel policy label
/// (`EXAWIND_KERNELS`, same string treatment so we stay below
/// `sparse-kit`), and the git commit if discoverable (`GIT_COMMIT` env
/// or `.git/HEAD`).
pub fn run_info(ranks: usize) -> Event {
    run_info_with_clock(ranks, None)
}

/// [`run_info`] carrying the per-rank clock-alignment table from the
/// startup handshake (schema v5): `offsets[r]` maps rank `r`'s epoch
/// timestamps onto rank 0's timeline (`t_global = t_rank + offsets[r]`),
/// and `rtts[r]` is the minimum round-trip observed while estimating it
/// (offset uncertainty ≤ rtt/2).
pub fn run_info_with_clock(ranks: usize, clock: Option<(Vec<f64>, Vec<f64>)>) -> Event {
    let (clock_offsets, clock_rtts) = match clock {
        Some((o, r)) => (Some(o), Some(r)),
        None => (None, None),
    };
    Event::Run {
        ranks,
        threads: configured_threads(),
        transport: std::env::var("EXAWIND_TRANSPORT")
            .ok()
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| "inproc".to_string()),
        kernel_policy: std::env::var("EXAWIND_KERNELS")
            .ok()
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| "auto".to_string()),
        git_commit: git_commit(),
        clock_offsets,
        clock_rtts,
    }
}

/// Worker-thread count the process runs with.
pub fn configured_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// Current git commit: `GIT_COMMIT` env var, else resolved from
/// `.git/HEAD` (walking one symbolic ref). Offline, no subprocess.
/// `cargo test`/`cargo bench` set cwd to the package dir, so the `.git`
/// directory is searched for in every ancestor of the current dir.
pub fn git_commit() -> Option<String> {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return Some(c);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let cand = dir.join(".git");
        if cand.is_dir() {
            break cand;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let direct = std::fs::read_to_string(git.join(refname)).ok();
        if let Some(c) = direct {
            return Some(c.trim().to_string());
        }
        // Packed refs fallback.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return Some(hash.trim().to_string());
            }
        }
        None
    } else if head.len() >= 7 {
        Some(head.to_string())
    } else {
        None
    }
}

/// Write events as JSONL (one event per line), replacing `path`.
pub fn write_jsonl(path: &str, events: &[Event]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for ev in events {
        writeln!(f, "{}", ev.to_line())?;
    }
    f.flush()
}

/// Parse a JSONL string, validating every line against the schema.
pub fn read_jsonl_str(s: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(
            Event::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    Ok(events)
}

/// Read + validate a JSONL file.
pub fn read_jsonl(path: &str) -> Result<Vec<Event>, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    read_jsonl_str(&s)
}

/// Semantic (cross-event) validation of a parsed stream, beyond the
/// per-line schema check of [`read_jsonl_str`]:
///
/// - every `phase_perf` whose label names a span (contains `/`, i.e. a
///   `Phase::trace_label` like `continuity/solve`) must reference a span
///   that the *same rank* actually opened and closed — the label must
///   equal a recorded span path or be a `/`-suffix of one. Bare labels
///   (parcomm's default `other` phase) carry no span reference and pass.
/// - every `kernel_perf` must be sane: at least one call, finite
///   non-negative seconds and rates.
/// - every `comm_edge` must be reported by one of its two endpoints,
///   must not be a self-edge, and (when a `run` event names the rank
///   count) must stay in rank range; where *both* endpoints of an edge
///   report it, their msg/byte totals must agree.
/// - collective participation must be consistent: every rank that
///   reports any `collective` event must report every kind seen in the
///   stream, with identical per-rank counts (collectives are
///   bulk-synchronous). Partial per-rank streams — where only some ranks
///   report at all — still validate; only *inconsistent* participation
///   is an error.
/// - schema-v5 timestamps, where present, must be consistent: span
///   windows nest (a child span's `[t0, t0+secs]` lies inside some
///   same-rank parent instance's window), and a `comm_edge`'s receiver
///   timestamps are ≥ the sender's after clock-offset correction, with
///   slack for the handshake's rtt/2 uncertainty. The `run` clock table
///   itself must be finite, non-negative-rtt, and rank-count sized.
///
/// Returns all violations, not just the first.
pub fn validate_stream(events: &[Event]) -> Result<(), Vec<String>> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut span_paths: BTreeSet<(usize, &str)> = BTreeSet::new();
    let mut run_ranks: Option<usize> = None;
    let mut run_offsets: Option<&Vec<f64>> = None;
    let mut run_rtts: Option<&Vec<f64>> = None;
    for ev in events {
        match ev {
            Event::Span { rank, path, .. } => {
                span_paths.insert((*rank, path.as_str()));
            }
            Event::Run { ranks, clock_offsets, clock_rtts, .. } => {
                run_ranks = run_ranks.or(Some(*ranks));
                run_offsets = run_offsets.or(clock_offsets.as_ref());
                run_rtts = run_rtts.or(clock_rtts.as_ref());
            }
            _ => {}
        }
    }
    let mut errors = Vec::new();
    // Clock table sanity (schema v5).
    for (name, table) in [("clock_offsets", run_offsets), ("clock_rtts", run_rtts)] {
        let Some(table) = table else { continue };
        if let Some(n) = run_ranks {
            if table.len() != n {
                errors.push(format!(
                    "run {name}: {} entries for a {n}-rank run",
                    table.len()
                ));
            }
        }
        for (r, v) in table.iter().enumerate() {
            if !v.is_finite() {
                errors.push(format!("run {name}[{r}]: non-finite"));
            } else if name == "clock_rtts" && *v < 0.0 {
                errors.push(format!("run {name}[{r}]: negative round-trip"));
            }
        }
    }
    // Offset-corrected time for rank r; identity when no table was recorded.
    let offset = |r: usize| run_offsets.and_then(|o| o.get(r)).copied().unwrap_or(0.0);
    let rtt = |r: usize| run_rtts.and_then(|o| o.get(r)).copied().unwrap_or(0.0);
    // (src, dst, class) → [sender view, receiver view] as (msgs, bytes).
    type EdgeViews<'a> = BTreeMap<(usize, usize, &'a str), [Option<(u64, u64)>; 2]>;
    let mut edge_views: EdgeViews = BTreeMap::new();
    // Same key → [sender view, receiver view] as (min t_first, max t_last).
    type EdgeTimes<'a> = BTreeMap<(usize, usize, &'a str), [Option<(f64, f64)>; 2]>;
    let mut edge_times: EdgeTimes = BTreeMap::new();
    // rank → timestamped span windows as (path, depth, t0, end).
    let mut span_windows: BTreeMap<usize, Vec<(&str, usize, f64, f64)>> = BTreeMap::new();
    // kind → rank → total count; plus the set of ranks reporting anything.
    let mut coll_counts: BTreeMap<&str, BTreeMap<usize, u64>> = BTreeMap::new();
    let mut coll_ranks: BTreeSet<usize> = BTreeSet::new();
    for ev in events {
        match ev {
            Event::Span { rank, path, depth, secs, t0: Some(t0) } => {
                if !t0.is_finite() || *t0 < 0.0 {
                    errors.push(format!(
                        "span rank {rank} path {path:?}: non-finite or negative t0"
                    ));
                } else {
                    span_windows.entry(*rank).or_default().push((
                        path.as_str(),
                        *depth,
                        *t0,
                        t0 + secs,
                    ));
                }
            }
            Event::PhasePerf { rank, label, .. } if label.contains('/') => {
                let suffix = format!("/{label}");
                let known = span_paths.iter().any(|&(r, p)| {
                    r == *rank && (p == label || p.ends_with(&suffix))
                });
                if !known {
                    errors.push(format!(
                        "phase_perf rank {rank} label {label:?} references a span \
                         never opened (or never closed) on that rank"
                    ));
                }
            }
            Event::KernelPerf {
                rank,
                kernel,
                calls,
                secs,
                gb_per_s,
                gflop_per_s,
                mdof_per_s,
                ..
            } => {
                let mut bad = |what: &str| {
                    errors.push(format!("kernel_perf rank {rank} kernel {kernel:?}: {what}"))
                };
                if *calls == 0 {
                    bad("zero calls");
                }
                if !secs.is_finite() || *secs < 0.0 {
                    bad("non-finite or negative secs");
                }
                for (name, r) in
                    [("gb_per_s", gb_per_s), ("gflop_per_s", gflop_per_s), ("mdof_per_s", mdof_per_s)]
                {
                    if !r.is_finite() || *r < 0.0 {
                        bad(&format!("non-finite or negative {name}"));
                    }
                }
            }
            Event::Checkpoint { rank, step, generation, bytes, secs, .. } => {
                if *bytes == 0 {
                    errors.push(format!(
                        "checkpoint rank {rank} generation {generation}: zero bytes written"
                    ));
                }
                if !secs.is_finite() || *secs < 0.0 {
                    errors.push(format!(
                        "checkpoint rank {rank} generation {generation}: non-finite or \
                         negative secs"
                    ));
                }
                if (*generation as usize) > *step {
                    errors.push(format!(
                        "checkpoint rank {rank}: generation {generation} captured after \
                         only {step} steps"
                    ));
                }
                if let Some(n) = run_ranks {
                    if *rank >= n {
                        errors.push(format!(
                            "checkpoint rank {rank} out of range for run with {n} ranks"
                        ));
                    }
                }
            }
            Event::Restore { rank, step, generation, .. } => {
                if (*generation as usize) > *step {
                    errors.push(format!(
                        "restore rank {rank}: resumed generation {generation} is newer \
                         than its own step cursor {step}"
                    ));
                }
                if let Some(n) = run_ranks {
                    if *rank >= n {
                        errors.push(format!(
                            "restore rank {rank} out of range for run with {n} ranks"
                        ));
                    }
                }
            }
            Event::CommEdge { rank, src, dst, class, msgs, bytes, t_first, t_last } => {
                if src == dst {
                    errors.push(format!("comm_edge rank {rank}: self-edge {src}->{dst}"));
                }
                if rank != src && rank != dst {
                    errors.push(format!(
                        "comm_edge rank {rank} is neither src {src} nor dst {dst}"
                    ));
                }
                if let Some(n) = run_ranks {
                    for (name, v) in [("rank", rank), ("src", src), ("dst", dst)] {
                        if *v >= n {
                            errors.push(format!(
                                "comm_edge {name} {v} out of range for run with {n} ranks"
                            ));
                        }
                    }
                }
                if *msgs == 0 && *bytes > 0 {
                    errors.push(format!(
                        "comm_edge {src}->{dst} [{class}]: {bytes} bytes but zero messages"
                    ));
                }
                let view = usize::from(rank != src); // 0 = sender view, 1 = receiver
                let slot =
                    edge_views.entry((*src, *dst, class.as_str())).or_default();
                let totals = slot[view].get_or_insert((0, 0));
                totals.0 += msgs;
                totals.1 += bytes;
                if let (Some(tf), Some(tl)) = (t_first, t_last) {
                    if tl < tf {
                        errors.push(format!(
                            "comm_edge {src}->{dst} [{class}] rank {rank}: \
                             t_last {tl} before t_first {tf}"
                        ));
                    }
                    let slot =
                        edge_times.entry((*src, *dst, class.as_str())).or_default();
                    let t = slot[view].get_or_insert((f64::INFINITY, f64::NEG_INFINITY));
                    t.0 = t.0.min(*tf);
                    t.1 = t.1.max(*tl);
                }
            }
            Event::Collective { rank, kind, count, .. } => {
                if let Some(n) = run_ranks {
                    if *rank >= n {
                        errors.push(format!(
                            "collective rank {rank} out of range for run with {n} ranks"
                        ));
                    }
                }
                coll_ranks.insert(*rank);
                *coll_counts.entry(kind.as_str()).or_default().entry(*rank).or_insert(0) +=
                    count;
            }
            _ => {}
        }
    }
    for ((src, dst, class), views) in &edge_views {
        if let (Some(s), Some(r)) = (views[0], views[1]) {
            if s != r {
                errors.push(format!(
                    "comm_edge {src}->{dst} [{class}]: sender recorded {} msgs / {} bytes \
                     but receiver recorded {} msgs / {} bytes",
                    s.0, s.1, r.0, r.1
                ));
            }
        }
    }
    // Causality: once both endpoints put their timestamps on one
    // timeline, a message cannot complete receipt before it started
    // sending. The offset table carries rtt/2 of uncertainty per rank,
    // so that much slack (plus float dust) is allowed.
    for ((src, dst, class), views) in &edge_times {
        let (Some(send), Some(recv)) = (views[0], views[1]) else { continue };
        let slack = rtt(*src) / 2.0 + rtt(*dst) / 2.0 + 1e-6;
        let send = (send.0 + offset(*src), send.1 + offset(*src));
        let recv = (recv.0 + offset(*dst), recv.1 + offset(*dst));
        for (what, s, r) in [("first", send.0, recv.0), ("last", send.1, recv.1)] {
            if r + slack < s {
                errors.push(format!(
                    "comm_edge {src}->{dst} [{class}]: {what} receive at aligned \
                     t={r:.9} precedes {what} send at t={s:.9} (slack {slack:.3e})"
                ));
            }
        }
    }
    // Span nesting: a child's window must lie inside a same-rank parent
    // instance's window. Paths repeat across timesteps, so any enclosing
    // instance of the parent path qualifies; a missing-but-expected
    // parent (none recorded with timestamps) is skipped — per-rank
    // partial streams stay valid.
    for (rank, spans) in &span_windows {
        for &(path, depth, t0, end) in spans {
            if depth == 0 {
                continue;
            }
            let Some(parent_path) = path.rsplit_once('/').map(|(p, _)| p) else {
                errors.push(format!(
                    "span rank {rank} path {path:?}: depth {depth} but no parent in path"
                ));
                continue;
            };
            let parents: Vec<&(&str, usize, f64, f64)> = spans
                .iter()
                .filter(|(p, d, _, _)| *p == parent_path && *d == depth - 1)
                .collect();
            if parents.is_empty() {
                continue;
            }
            let eps = 1e-6;
            let nested = parents
                .iter()
                .any(|(_, _, pt0, pend)| *pt0 <= t0 + eps && end <= pend + eps);
            if !nested {
                errors.push(format!(
                    "span rank {rank} path {path:?}: window [{t0:.9}, {end:.9}] not \
                     nested in any {parent_path:?} instance"
                ));
            }
        }
    }
    for (kind, by_rank) in &coll_counts {
        for rank in &coll_ranks {
            if !by_rank.contains_key(rank) {
                errors.push(format!(
                    "collective {kind:?}: rank {rank} reports other collectives but is a \
                     missing participant in this kind"
                ));
            }
        }
        let distinct: BTreeSet<u64> = by_rank.values().copied().collect();
        if distinct.len() > 1 {
            errors.push(format!(
                "collective {kind:?}: per-rank counts disagree: {by_rank:?}"
            ));
        }
    }
    if errors.is_empty() { Ok(()) } else { Err(errors) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("x");
            t.counter("c", 1);
            t.observe("h", 2.0);
            t.record(Event::Counter { rank: 0, name: "n".into(), value: 1 });
        }
        assert!(t.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_record_paths() {
        let t = Telemetry::enabled(3);
        {
            let _a = t.span("timestep");
            assert_eq!(t.current_path(), "timestep");
            {
                let _b = t.span("picard");
                let _c = t.span("continuity");
                assert_eq!(t.current_path(), "timestep/picard/continuity");
            }
        }
        let events = t.finish();
        let paths: Vec<(String, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { path, depth, rank, .. } => {
                    assert_eq!(*rank, 3);
                    Some((path.clone(), *depth))
                }
                _ => None,
            })
            .collect();
        // Closed innermost-first.
        assert_eq!(
            paths,
            vec![
                ("timestep/picard/continuity".to_string(), 2),
                ("timestep/picard".to_string(), 1),
                ("timestep".to_string(), 0),
            ]
        );
    }

    #[test]
    fn unclosed_span_fails_finish() {
        let t = Telemetry::enabled(0);
        let g = t.span("leaked");
        let err = t.try_finish().unwrap_err();
        assert!(err.contains("leaked"), "{err}");
        drop(g);
        assert_eq!(t.finish().len(), 1); // now closes cleanly
    }

    #[test]
    fn counters_and_hists_flush_sorted() {
        let t = Telemetry::enabled(0);
        t.counter("b", 2);
        t.counter("a", 1);
        t.counter("b", 3);
        t.observe("h", 4.0);
        let events = t.finish();
        match &events[0] {
            Event::Counter { name, value, .. } => {
                assert_eq!(name, "a");
                assert_eq!(*value, 1);
            }
            other => panic!("{other:?}"),
        }
        match &events[1] {
            Event::Counter { name, value, .. } => {
                assert_eq!(name, "b");
                assert_eq!(*value, 5);
            }
            other => panic!("{other:?}"),
        }
        match &events[2] {
            Event::Hist { name, count, buckets, .. } => {
                assert_eq!(name, "h");
                assert_eq!(*count, 1);
                assert_eq!(buckets, &vec![(2, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn install_scopes_the_current_dispatcher() {
        assert!(!is_enabled());
        let t = Telemetry::enabled(1);
        {
            let _g = t.install();
            assert!(is_enabled());
            counter("via_free_fn", 7);
            let _s = span("s");
        }
        assert!(!is_enabled());
        let events = t.finish();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counter { name, value: 7, .. } if name == "via_free_fn"
        )));
    }

    #[test]
    fn kernel_guards_aggregate_per_name() {
        let t = Telemetry::enabled(2);
        for _ in 0..3 {
            let _g = t.kernel("spmv_csr", perfmodel::csr_spmv(3, 9));
        }
        {
            // Late-bound model (SpGEMM pattern): the guard records what
            // set_model last installed, not the construction-time model.
            let mut g = t.kernel("spgemm", KernelModel::default());
            g.set_model(KernelModel { bytes: 100, flops: 10, dofs: 4 });
        }
        let events = t.finish();
        let kernels: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::KernelPerf { .. }))
            .collect();
        assert_eq!(kernels.len(), 2);
        // BTreeMap flush order: spgemm < spmv_csr.
        match kernels[0] {
            Event::KernelPerf { kernel, calls, bytes, flops, dofs, .. } => {
                assert_eq!(kernel, "spgemm");
                assert_eq!((*calls, *bytes, *flops, *dofs), (1, 100, 10, 4));
            }
            other => panic!("{other:?}"),
        }
        match kernels[1] {
            Event::KernelPerf { rank, kernel, calls, bytes, flops, dofs, secs, gb_per_s, .. } => {
                assert_eq!(*rank, 2);
                assert_eq!(kernel, "spmv_csr");
                assert_eq!(*calls, 3);
                let one = perfmodel::csr_spmv(3, 9);
                assert_eq!(*bytes, 3 * one.bytes);
                assert_eq!(*flops, 3 * one.flops);
                assert_eq!(*dofs, 3 * one.dofs);
                assert!(*secs >= 0.0 && secs.is_finite());
                assert!(*gb_per_s >= 0.0 && gb_per_s.is_finite());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disabled_kernel_guard_records_nothing() {
        let t = Telemetry::disabled();
        {
            let _g = t.kernel("spmv_csr", perfmodel::csr_spmv(10, 50));
        }
        assert!(t.finish().is_empty());
    }

    #[test]
    fn validate_stream_checks_phase_perf_span_references() {
        let span = Event::Span {
            rank: 0,
            path: "timestep/picard/continuity/solve".into(),
            depth: 3,
            secs: 0.1,
            t0: None,
        };
        let perf = |rank: usize, label: &str| Event::PhasePerf {
            rank,
            label: label.into(),
            kernel_launches: 1,
            kernel_bytes: 8,
            kernel_flops: 2,
            msgs: 0,
            msg_bytes: 0,
            collectives: 0,
            collective_bytes: 0,
            wait_secs: 0.0,
            transfer_secs: 0.0,
        };
        // Suffix match against the recorded span path: ok.
        assert!(validate_stream(&[span.clone(), perf(0, "continuity/solve")]).is_ok());
        // Bare label (parcomm's default "other" phase): no span reference.
        assert!(validate_stream(&[perf(0, "other")]).is_ok());
        // Unknown span: rejected.
        let errs = validate_stream(&[span.clone(), perf(0, "momentum/solve")]).unwrap_err();
        assert!(errs[0].contains("momentum/solve"), "{errs:?}");
        // Right label, wrong rank: the span was never closed on rank 1.
        assert!(validate_stream(&[span, perf(1, "continuity/solve")]).is_err());
    }

    #[test]
    fn validate_stream_checks_kernel_perf_sanity() {
        let mut ev = Event::examples()
            .into_iter()
            .find(|e| matches!(e, Event::KernelPerf { .. }))
            .expect("examples include kernel_perf");
        assert!(validate_stream(std::slice::from_ref(&ev)).is_ok());
        if let Event::KernelPerf { calls, gb_per_s, .. } = &mut ev {
            *calls = 0;
            *gb_per_s = f64::NAN;
        }
        let errs = validate_stream(&[ev]).unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn validate_stream_checks_comm_edges() {
        let run = Event::Run {
            ranks: 3,
            threads: 1,
            transport: "inproc".into(),
            kernel_policy: "auto".into(),
            git_commit: None,
            clock_offsets: None,
            clock_rtts: None,
        };
        let edge = |rank: usize, src: usize, dst: usize, bytes: u64| Event::CommEdge {
            rank,
            src,
            dst,
            class: "p2p".into(),
            msgs: 1,
            bytes,
            t_first: None,
            t_last: None,
        };
        // Symmetric sender/receiver pair: ok.
        assert!(
            validate_stream(&[run.clone(), edge(0, 0, 1, 64), edge(1, 0, 1, 64)]).is_ok()
        );
        // Single-endpoint view (per-rank stream before merging): ok.
        assert!(validate_stream(&[run.clone(), edge(0, 0, 1, 64)]).is_ok());
        // Destination rank out of range for the run.
        let errs = validate_stream(&[run.clone(), edge(0, 0, 7, 64)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("out of range")), "{errs:?}");
        // Byte totals disagree between the two endpoints of the edge.
        let errs =
            validate_stream(&[run.clone(), edge(0, 0, 1, 64), edge(1, 0, 1, 32)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("receiver recorded")), "{errs:?}");
        // The reporting rank must be one of the edge's endpoints.
        let errs = validate_stream(&[run.clone(), edge(2, 0, 1, 8)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("neither src")), "{errs:?}");
        // Self-edges never happen: local moves are not communication.
        assert!(validate_stream(&[run, edge(1, 1, 1, 8)]).is_err());
        // Bytes without messages is inconsistent.
        let bad = Event::CommEdge {
            rank: 0,
            src: 0,
            dst: 1,
            class: "halo".into(),
            msgs: 0,
            bytes: 10,
            t_first: None,
            t_last: None,
        };
        let errs = validate_stream(&[bad]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("zero messages")), "{errs:?}");
    }

    #[test]
    fn validate_stream_checks_collective_participants() {
        let coll = |rank: usize, kind: &str, count: u64| Event::Collective {
            rank,
            kind: kind.into(),
            count,
            bytes: 0,
            secs: 0.0,
            buckets: Vec::new(),
            t_first: None,
            t_last: None,
        };
        // All participating ranks report the kind with equal counts: ok.
        assert!(
            validate_stream(&[coll(0, "allreduce", 3), coll(1, "allreduce", 3)]).is_ok()
        );
        // A single rank's stream in isolation: ok.
        assert!(validate_stream(&[coll(0, "allreduce", 3)]).is_ok());
        // Rank 1 reports barriers but is missing from the allreduce kind.
        let errs = validate_stream(&[
            coll(0, "allreduce", 3),
            coll(0, "barrier", 1),
            coll(1, "barrier", 1),
        ])
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing participant")), "{errs:?}");
        // Bulk-synchronous collectives must have identical per-rank counts.
        let errs =
            validate_stream(&[coll(0, "allreduce", 3), coll(1, "allreduce", 2)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("counts disagree")), "{errs:?}");
    }

    #[test]
    fn validate_stream_checks_span_nesting_windows() {
        let span = |path: &str, depth: usize, t0: f64, secs: f64| Event::Span {
            rank: 0,
            path: path.into(),
            depth,
            secs,
            t0: Some(t0),
        };
        // Child window inside the parent instance: ok. Paths repeat
        // across timesteps, so a second parent instance also counts.
        assert!(validate_stream(&[
            span("timestep", 0, 0.0, 1.0),
            span("timestep/picard", 1, 0.25, 0.5),
            span("timestep", 0, 2.0, 1.0),
            span("timestep/picard", 1, 2.25, 0.5),
        ])
        .is_ok());
        // Child extends past every parent instance: rejected.
        let errs = validate_stream(&[
            span("timestep", 0, 0.0, 1.0),
            span("timestep/picard", 1, 0.5, 2.0),
        ])
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not nested")), "{errs:?}");
        // No timestamped parent recorded at all (partial stream): ok.
        assert!(validate_stream(&[span("timestep/picard", 1, 0.5, 2.0)]).is_ok());
        // Pre-v5 spans without t0 are never window-checked.
        let untimed = Event::Span {
            rank: 0,
            path: "timestep/picard".into(),
            depth: 1,
            secs: 9.0,
            t0: None,
        };
        assert!(validate_stream(&[span("timestep", 0, 0.0, 1.0), untimed]).is_ok());
    }

    #[test]
    fn validate_stream_checks_comm_edge_causality() {
        let run = |offsets: Option<Vec<f64>>, rtts: Option<Vec<f64>>| Event::Run {
            ranks: 2,
            threads: 1,
            transport: "socket".into(),
            kernel_policy: "auto".into(),
            git_commit: None,
            clock_offsets: offsets,
            clock_rtts: rtts,
        };
        let edge = |rank: usize, tf: f64, tl: f64| Event::CommEdge {
            rank,
            src: 0,
            dst: 1,
            class: "halo".into(),
            msgs: 2,
            bytes: 64,
            t_first: Some(tf),
            t_last: Some(tl),
        };
        // Receives after sends on the shared timeline: ok.
        let ok = run(Some(vec![0.0, 0.0]), Some(vec![0.0, 0.0]));
        assert!(validate_stream(&[ok.clone(), edge(0, 1.0, 2.0), edge(1, 1.1, 2.1)]).is_ok());
        // First receive precedes first send: rejected.
        let errs =
            validate_stream(&[ok.clone(), edge(0, 1.0, 2.0), edge(1, 0.5, 2.1)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("precedes")), "{errs:?}");
        // The same raw timestamps pass once the receiver's clock offset
        // explains the skew…
        let skewed = run(Some(vec![0.0, 0.6]), Some(vec![0.0, 0.0]));
        assert!(
            validate_stream(&[skewed, edge(0, 1.0, 2.0), edge(1, 0.5, 2.1)]).is_ok()
        );
        // …or once the handshake admits that much rtt uncertainty.
        let fuzzy = run(Some(vec![0.0, 0.0]), Some(vec![0.0, 1.2]));
        assert!(validate_stream(&[fuzzy, edge(0, 1.0, 2.0), edge(1, 0.5, 2.1)]).is_ok());
        // A single view reversing its own interval is always wrong.
        let errs = validate_stream(&[ok, edge(0, 2.0, 1.0)]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("t_last")), "{errs:?}");
        // Clock table must be sized to the run and finite.
        let bad_table = run(Some(vec![0.0]), Some(vec![f64::NAN, -1.0]));
        let errs = validate_stream(&[bad_table]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("entries for a 2-rank run")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("non-finite")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("negative round-trip")), "{errs:?}");
    }

    #[test]
    fn enabled_spans_carry_epoch_timestamps() {
        let t = Telemetry::enabled(0);
        {
            let _a = t.span("timestep");
            let _b = t.span("picard");
        }
        let events = t.finish();
        for ev in &events {
            let Event::Span { t0, secs, .. } = ev else { continue };
            let t0 = t0.expect("enabled spans are timestamped");
            assert!(t0.is_finite() && t0 >= 0.0);
            assert!(*secs >= 0.0);
        }
        assert!(validate_stream(&events).is_ok());
        assert!(t.elapsed_secs().is_some());
        assert!(Telemetry::disabled().elapsed_secs().is_none());
    }

    #[test]
    fn jsonl_round_trip() {
        let events = Event::examples();
        let s: String = events.iter().map(|e| e.to_line() + "\n").collect();
        let back = read_jsonl_str(&s).unwrap();
        assert_eq!(back, events);
        assert!(read_jsonl_str("{\"type\":\"span\"}\n").is_err());
    }
}
