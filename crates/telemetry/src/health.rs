//! Solver-health degradation detector (ROADMAP item 2's trigger).
//!
//! [`crate::Event::StepHealth`] gives every timestep a compact health
//! row: per-equation GMRES iteration counts and residual-reduction
//! rates, AMG grid/operator complexity, and recovery-ladder activity.
//! [`HealthDetector`] consumes those rows in step order and emits typed
//! [`Verdict`]s when a metric degrades against its own EWMA baseline:
//!
//! - the baseline is an exponentially-weighted moving average (α =
//!   [`EWMA_ALPHA`]) learned over a [`WARMUP`]-step warmup;
//! - after warmup the baseline only absorbs *non-exceeding* samples, so
//!   a genuine degradation cannot drag its own reference up;
//! - a verdict fires when a metric exceeds its threshold [`WINDOW`]
//!   steps in a row, once per streak — a single noisy step is ignored,
//!   and a sustained plateau does not re-alarm every step.
//!
//! The detector is a pure function of its (deterministic) inputs: it
//! reads no clock and allocates nothing observable to the solver, so
//! `core::sim` runs it unconditionally without perturbing the
//! telemetry-off bitwise determinism guarantee. This is the API the
//! future lagged-AMG-hierarchy-reuse policy consumes: "re-coarsen only
//! when convergence telemetry degrades" is exactly a
//! [`DegradationKind::GmresIters`] / [`DegradationKind::ResidualRate`]
//! verdict on the pressure equation.

use crate::event::EqHealthRow;
use crate::Event;
use std::collections::BTreeMap;

/// EWMA smoothing factor for the per-metric baseline.
pub const EWMA_ALPHA: f64 = 0.3;
/// Samples absorbed into the baseline before any exceed judgment.
pub const WARMUP: u64 = 3;
/// Consecutive exceeding samples required before a verdict fires.
pub const WINDOW: u64 = 2;

/// What kind of degradation a [`Verdict`] reports. Wire-stable: the
/// label round-trips through JSONL and the code through the launcher's
/// fixed-width heartbeat frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationKind {
    /// GMRES iterations grew well past baseline (preconditioner going
    /// stale, mesh/flow change, …).
    GmresIters,
    /// Residual-reduction rate per iteration dropped — the solver works
    /// harder for each decade of convergence.
    ResidualRate,
    /// AMG grid/operator complexity shifted either direction — the
    /// hierarchy being built no longer resembles the baseline one.
    AmgComplexity,
    /// The recovery ladder fired after a clean warmup.
    RecoveryStorm,
}

impl DegradationKind {
    pub const ALL: [DegradationKind; 4] = [
        DegradationKind::GmresIters,
        DegradationKind::ResidualRate,
        DegradationKind::AmgComplexity,
        DegradationKind::RecoveryStorm,
    ];

    /// Stable wire label (the `kind` field of a `health_verdict` event).
    pub fn label(self) -> &'static str {
        match self {
            DegradationKind::GmresIters => "gmres-iters",
            DegradationKind::ResidualRate => "residual-rate",
            DegradationKind::AmgComplexity => "amg-complexity",
            DegradationKind::RecoveryStorm => "recovery-storm",
        }
    }

    pub fn parse(s: &str) -> Option<DegradationKind> {
        DegradationKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Small nonzero code for fixed-width heartbeat frames (0 is
    /// reserved for "no verdict").
    pub fn code(self) -> u64 {
        match self {
            DegradationKind::GmresIters => 1,
            DegradationKind::ResidualRate => 2,
            DegradationKind::AmgComplexity => 3,
            DegradationKind::RecoveryStorm => 4,
        }
    }

    pub fn from_code(code: u64) -> Option<DegradationKind> {
        DegradationKind::ALL.into_iter().find(|k| k.code() == code)
    }
}

/// One step's health inputs, as `core::sim` measures them.
#[derive(Clone, Debug, Default)]
pub struct HealthSample {
    /// Per-equation GMRES iterations and residual reduction.
    pub eqs: Vec<EqHealthRow>,
    /// AMG hierarchy depth for the pressure preconditioner.
    pub amg_levels: u64,
    /// Σ level rows / fine rows.
    pub grid_complexity: f64,
    /// Σ level nnz / fine nnz.
    pub operator_complexity: f64,
    /// Recovery-ladder activations during this step.
    pub recoveries: u64,
    /// Checkpoint generation published this step, if any.
    pub checkpoint: Option<u64>,
}

impl HealthSample {
    /// Residual-reduction rate: decades of relative-residual reduction
    /// per iteration. Higher is healthier; 0 when the solve did not
    /// converge at all.
    pub fn rate(iters: u64, final_rel: f64) -> f64 {
        if iters == 0 || final_rel.is_nan() || final_rel <= 0.0 || final_rel >= 1.0 {
            return 0.0;
        }
        -final_rel.log10() / iters as f64
    }

    /// The corresponding wire event.
    pub fn to_event(&self, rank: usize, step: usize) -> Event {
        Event::StepHealth {
            rank,
            step,
            eqs: self.eqs.clone(),
            amg_levels: self.amg_levels,
            grid_complexity: self.grid_complexity,
            operator_complexity: self.operator_complexity,
            recoveries: self.recoveries,
            checkpoint: self.checkpoint,
        }
    }
}

/// A typed degradation finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    pub step: usize,
    pub kind: DegradationKind,
    /// The equation the metric belongs to (`None` for run-wide metrics
    /// like AMG complexity or recovery activity).
    pub eq: Option<String>,
    /// The offending sample value.
    pub value: f64,
    /// The EWMA baseline it was judged against.
    pub baseline: f64,
}

impl Verdict {
    pub fn to_event(&self, rank: usize) -> Event {
        Event::HealthVerdict {
            rank,
            step: self.step,
            kind: self.kind.label().to_string(),
            eq: self.eq.clone(),
            value: self.value,
            baseline: self.baseline,
        }
    }

    /// One-line human rendering, shared by the report and the launcher.
    pub fn describe(&self) -> String {
        let scope = self.eq.as_deref().unwrap_or("run");
        format!(
            "step {}: {} [{}] {:.3} vs baseline {:.3}",
            self.step,
            self.kind.label(),
            scope,
            self.value,
            self.baseline
        )
    }
}

/// One metric's EWMA baseline plus exceed-streak state.
#[derive(Clone, Debug, Default)]
struct Tracker {
    baseline: f64,
    samples: u64,
    streak: u64,
}

impl Tracker {
    /// Feed one sample; returns `Some(baseline)` exactly when the
    /// exceed streak crosses [`WINDOW`] (once per streak).
    fn observe(&mut self, value: f64, exceeds: impl Fn(f64, f64) -> bool) -> Option<f64> {
        if !value.is_finite() {
            return None;
        }
        if self.samples < WARMUP {
            self.baseline = if self.samples == 0 {
                value
            } else {
                EWMA_ALPHA * value + (1.0 - EWMA_ALPHA) * self.baseline
            };
            self.samples += 1;
            return None;
        }
        let base = self.baseline;
        if exceeds(value, base) {
            self.streak += 1;
            if self.streak == WINDOW {
                return Some(base);
            }
        } else {
            self.streak = 0;
            self.baseline = EWMA_ALPHA * value + (1.0 - EWMA_ALPHA) * self.baseline;
            self.samples += 1;
        }
        None
    }
}

/// Rolling EWMA-baseline degradation detector over [`HealthSample`]s.
#[derive(Clone, Debug, Default)]
pub struct HealthDetector {
    trackers: BTreeMap<(DegradationKind, String), Tracker>,
    last: Option<Verdict>,
}

impl HealthDetector {
    pub fn new() -> HealthDetector {
        HealthDetector::default()
    }

    /// Most recent verdict ever emitted, for status lines.
    pub fn last_verdict(&self) -> Option<&Verdict> {
        self.last.as_ref()
    }

    /// Feed one step's sample; returns the verdicts it triggers (in
    /// deterministic kind-then-equation order).
    pub fn observe(&mut self, step: usize, sample: &HealthSample) -> Vec<Verdict> {
        let mut out = Vec::new();
        let mut judge =
            |trackers: &mut BTreeMap<(DegradationKind, String), Tracker>,
             kind: DegradationKind,
             eq: Option<&str>,
             value: f64,
             exceeds: &dyn Fn(f64, f64) -> bool| {
                let key = (kind, eq.unwrap_or("").to_string());
                let tracker = trackers.entry(key).or_default();
                if let Some(baseline) = tracker.observe(value, exceeds) {
                    out.push(Verdict {
                        step,
                        kind,
                        eq: eq.map(str::to_string),
                        value,
                        baseline,
                    });
                }
            };
        for row in &sample.eqs {
            judge(
                &mut self.trackers,
                DegradationKind::GmresIters,
                Some(&row.eq),
                row.iters as f64,
                &|v, b| v > 1.5 * b && v >= b + 2.0,
            );
            judge(
                &mut self.trackers,
                DegradationKind::ResidualRate,
                Some(&row.eq),
                row.rate,
                &|v, b| v < 0.5 * b,
            );
        }
        judge(
            &mut self.trackers,
            DegradationKind::AmgComplexity,
            None,
            sample.operator_complexity,
            &|v, b| (v - b).abs() > 0.2 * b.abs().max(1e-12),
        );
        // Recovery activity is judged against an always-zero healthy
        // baseline: any ladder activation after a clean warmup alarms
        // (WINDOW does not apply — one recovered fault is already news).
        let recov = self
            .trackers
            .entry((DegradationKind::RecoveryStorm, String::new()))
            .or_default();
        if recov.samples < WARMUP {
            if sample.recoveries == 0 {
                recov.samples += 1;
            }
        } else if sample.recoveries > 0 && recov.streak == 0 {
            recov.streak = 1;
            out.push(Verdict {
                step,
                kind: DegradationKind::RecoveryStorm,
                eq: None,
                value: sample.recoveries as f64,
                baseline: 0.0,
            });
        } else if sample.recoveries == 0 {
            recov.streak = 0;
        }
        out.sort_by(|a, b| (a.kind, &a.eq).cmp(&(b.kind, &b.eq)));
        if let Some(v) = out.last() {
            self.last = Some(v.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_row(eq: &str, iters: u64, final_rel: f64) -> EqHealthRow {
        EqHealthRow {
            eq: eq.to_string(),
            iters,
            final_rel,
            rate: HealthSample::rate(iters, final_rel),
        }
    }

    fn steady_sample() -> HealthSample {
        HealthSample {
            eqs: vec![eq_row("continuity", 10, 1e-8), eq_row("momentum", 5, 1e-8)],
            amg_levels: 3,
            grid_complexity: 1.3,
            operator_complexity: 1.5,
            recoveries: 0,
            checkpoint: None,
        }
    }

    #[test]
    fn silent_on_steady_series() {
        let mut det = HealthDetector::new();
        for step in 0..50 {
            assert!(det.observe(step, &steady_sample()).is_empty(), "step {step}");
        }
        assert!(det.last_verdict().is_none());
    }

    #[test]
    fn tolerates_small_noise() {
        let mut det = HealthDetector::new();
        for step in 0..50 {
            let mut s = steady_sample();
            // ±1 iteration of jitter around the baseline.
            s.eqs[0].iters = 10 + (step as u64 % 2);
            assert!(det.observe(step, &s).is_empty(), "step {step}");
        }
    }

    #[test]
    fn fires_once_per_streak_on_iteration_growth() {
        let mut det = HealthDetector::new();
        for step in 0..10 {
            assert!(det.observe(step, &steady_sample()).is_empty());
        }
        let mut degraded = steady_sample();
        degraded.eqs[0].iters = 25; // > 1.5× and ≥ +2 over the ~10 baseline
        assert!(det.observe(10, &degraded).is_empty(), "needs WINDOW in a row");
        let verdicts = det.observe(11, &degraded);
        assert_eq!(verdicts.len(), 1, "{verdicts:?}");
        let v = &verdicts[0];
        assert_eq!(v.kind, DegradationKind::GmresIters);
        assert_eq!(v.eq.as_deref(), Some("continuity"));
        assert_eq!(v.value, 25.0);
        assert!(v.baseline > 5.0 && v.baseline < 15.0, "{v:?}");
        // Sustained plateau: no re-alarm.
        for step in 12..20 {
            assert!(det.observe(step, &degraded).is_empty(), "step {step}");
        }
        // Recovery then a second degradation: a fresh streak re-fires.
        for step in 20..30 {
            assert!(det.observe(step, &steady_sample()).is_empty());
        }
        assert!(det.observe(30, &degraded).is_empty());
        assert_eq!(det.observe(31, &degraded).len(), 1);
        assert_eq!(det.last_verdict().unwrap().step, 31);
    }

    #[test]
    fn fires_on_residual_rate_collapse() {
        let mut det = HealthDetector::new();
        for step in 0..10 {
            assert!(det.observe(step, &steady_sample()).is_empty());
        }
        let mut slow = steady_sample();
        // Same iterations, far shallower reduction: rate collapses.
        slow.eqs[1] = eq_row("momentum", 5, 1e-2);
        det.observe(10, &slow);
        let verdicts = det.observe(11, &slow);
        assert_eq!(verdicts.len(), 1, "{verdicts:?}");
        assert_eq!(verdicts[0].kind, DegradationKind::ResidualRate);
        assert_eq!(verdicts[0].eq.as_deref(), Some("momentum"));
    }

    #[test]
    fn fires_on_complexity_shift_either_direction() {
        for target in [2.2, 0.9] {
            let mut det = HealthDetector::new();
            for step in 0..10 {
                assert!(det.observe(step, &steady_sample()).is_empty());
            }
            let mut shifted = steady_sample();
            shifted.operator_complexity = target;
            det.observe(10, &shifted);
            let verdicts = det.observe(11, &shifted);
            assert_eq!(verdicts.len(), 1, "target {target}: {verdicts:?}");
            assert_eq!(verdicts[0].kind, DegradationKind::AmgComplexity);
            assert_eq!(verdicts[0].eq, None);
        }
    }

    #[test]
    fn recovery_storm_fires_immediately_after_clean_warmup() {
        let mut det = HealthDetector::new();
        for step in 0..5 {
            assert!(det.observe(step, &steady_sample()).is_empty());
        }
        let mut stormy = steady_sample();
        stormy.recoveries = 1;
        let verdicts = det.observe(5, &stormy);
        assert_eq!(verdicts.len(), 1, "{verdicts:?}");
        assert_eq!(verdicts[0].kind, DegradationKind::RecoveryStorm);
        // Ongoing storm: one alarm, not one per step.
        assert!(det.observe(6, &stormy).is_empty());
        // Clean gap then another fault: re-fires.
        assert!(det.observe(7, &steady_sample()).is_empty());
        assert_eq!(det.observe(8, &stormy).len(), 1);
    }

    #[test]
    fn recoveries_during_warmup_do_not_poison_the_baseline() {
        let mut det = HealthDetector::new();
        let mut stormy = steady_sample();
        stormy.recoveries = 2;
        // Faults from step 0: warmup never completes cleanly, so the
        // detector stays quiet rather than normalizing the storm…
        for step in 0..3 {
            assert!(det
                .observe(step, &stormy)
                .iter()
                .all(|v| v.kind != DegradationKind::RecoveryStorm));
        }
        // …and alarms once a clean baseline finally exists.
        for step in 3..6 {
            assert!(det.observe(step, &steady_sample()).is_empty());
        }
        assert_eq!(det.observe(6, &stormy).len(), 1);
    }

    #[test]
    fn kind_codes_and_labels_round_trip() {
        for kind in DegradationKind::ALL {
            assert_eq!(DegradationKind::parse(kind.label()), Some(kind));
            assert_eq!(DegradationKind::from_code(kind.code()), Some(kind));
            assert_ne!(kind.code(), 0, "0 is the no-verdict sentinel");
        }
        assert_eq!(DegradationKind::parse("nope"), None);
        assert_eq!(DegradationKind::from_code(0), None);
    }

    #[test]
    fn rate_is_decades_per_iteration() {
        assert_eq!(HealthSample::rate(4, 1e-8), 2.0);
        assert_eq!(HealthSample::rate(0, 1e-8), 0.0);
        assert_eq!(HealthSample::rate(5, 0.0), 0.0);
        assert_eq!(HealthSample::rate(5, f64::NAN), 0.0);
        assert_eq!(HealthSample::rate(5, 2.0), 0.0);
    }

    #[test]
    fn sample_and_verdict_round_trip_as_events() {
        let sample = steady_sample();
        let ev = sample.to_event(1, 7);
        let back = Event::parse_line(&ev.to_line()).unwrap();
        assert_eq!(back, ev);
        let verdict = Verdict {
            step: 9,
            kind: DegradationKind::ResidualRate,
            eq: Some("continuity".into()),
            value: 0.5,
            baseline: 2.0,
        };
        let ev = verdict.to_event(2);
        let back = Event::parse_line(&ev.to_line()).unwrap();
        assert_eq!(back, ev);
        assert!(verdict.describe().contains("residual-rate"));
    }
}
