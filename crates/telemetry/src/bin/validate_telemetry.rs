//! Offline validator for telemetry JSONL exports.
//!
//! Usage: `validate_telemetry <run.jsonl> [--report]`
//!
//! Parses every line against the event schema, then runs the semantic
//! cross-event checks of [`telemetry::validate_stream`] (`phase_perf`
//! labels must reference spans the same rank actually closed,
//! `kernel_perf` rates must be sane), prints a one-line summary (and
//! optionally the full ASCII report), and exits non-zero if any line is
//! malformed or any semantic check fails. `ci.sh` runs this against the
//! quickstart export.

use std::collections::BTreeMap;
use std::process::ExitCode;

use telemetry::{Event, Report};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: validate_telemetry <run.jsonl> [--report]");
        return ExitCode::from(2);
    };
    let want_report = args.any(|a| a == "--report");

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_telemetry: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut events = Vec::new();
    let mut errors = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                errors += 1;
            }
        }
    }

    if let Err(semantic) = telemetry::validate_stream(&events) {
        for e in &semantic {
            eprintln!("{path}: {e}");
        }
        errors += semantic.len();
    }

    let mut by_type: BTreeMap<&'static str, usize> = BTreeMap::new();
    for ev in &events {
        *by_type.entry(ev.type_tag()).or_insert(0) += 1;
    }
    let breakdown: Vec<String> = by_type.iter().map(|(t, n)| format!("{t}={n}")).collect();
    println!(
        "{path}: {} events ({}), {} error(s)",
        events.len(),
        breakdown.join(" "),
        errors
    );

    if want_report {
        print!("{}", Report::from_events(&events).render_ascii());
    }

    if errors > 0 || events.is_empty() {
        if events.is_empty() {
            eprintln!("{path}: no events found");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
